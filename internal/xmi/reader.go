package xmi

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"github.com/go-ccts/ccts/internal/uml"
)

// Import reads an XMI document produced by Export back into a UML model.
// References (association ends, dependency clients/suppliers) may point
// forward in the document; they are resolved in a second pass.
func Import(r io.Reader) (*uml.Model, error) {
	dec := xml.NewDecoder(r)
	p := &importer{
		byID: map[string]any{},
	}
	model, err := p.document(dec)
	if err != nil {
		return nil, err
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	return model, nil
}

// ImportString reads an XMI document from a string.
func ImportString(doc string) (*uml.Model, error) {
	return Import(strings.NewReader(doc))
}

// pendingAssociation defers end resolution until all classes are known.
type pendingAssociation struct {
	assoc          *uml.Association
	source, target string
}

type pendingDependency struct {
	dep              *uml.Dependency
	client, supplier string
}

type importer struct {
	byID         map[string]any
	associations []pendingAssociation
	dependencies []pendingDependency
}

func attr(se xml.StartElement, local string) string {
	for _, a := range se.Attr {
		if a.Name.Local == local {
			return a.Value
		}
	}
	return ""
}

func xmiType(se xml.StartElement) string {
	for _, a := range se.Attr {
		if a.Name.Local == "type" && (a.Name.Space == XMINamespace || a.Name.Space == "xmi") {
			return a.Value
		}
	}
	return attr(se, "type")
}

func parseMult(se xml.StartElement) (uml.Multiplicity, error) {
	lower, upper := attr(se, "lower"), attr(se, "upper")
	if lower == "" && upper == "" {
		return uml.One, nil
	}
	return uml.ParseMultiplicity(lower + ".." + upper)
}

func (p *importer) document(dec *xml.Decoder) (*uml.Model, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmi: no uml:Model element found")
		}
		if err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch {
		case se.Name.Local == "XMI":
			continue // descend
		case se.Name.Local == "Model" && se.Name.Space == UMLNamespace:
			return p.model(dec, se)
		default:
			return nil, fmt.Errorf("xmi: unexpected element <%s>", se.Name.Local)
		}
	}
}

func (p *importer) model(dec *xml.Decoder, se xml.StartElement) (*uml.Model, error) {
	m := uml.NewModel(attr(se, "name"))
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				m.Tags.Set(attr(t, "tag"), attr(t, "value"))
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "packagedElement":
				if xmiType(t) != "uml:Package" {
					return nil, fmt.Errorf("xmi: model children must be packages, got %q", xmiType(t))
				}
				pkg := m.AddPackage(attr(t, "name"), attr(t, "stereotype"))
				p.byID[attr(t, "id")] = pkg
				if err := p.packageBody(dec, pkg); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("xmi: unexpected model child <%s>", t.Name.Local)
			}
		case xml.EndElement:
			if t.Name.Local == "Model" {
				return m, nil
			}
		}
	}
}

func (p *importer) packageBody(dec *xml.Decoder, pkg *uml.Package) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmi: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				pkg.Tags.Set(attr(t, "tag"), attr(t, "value"))
				if err := dec.Skip(); err != nil {
					return err
				}
			case "packagedElement":
				if err := p.packagedElement(dec, pkg, t); err != nil {
					return err
				}
			default:
				return fmt.Errorf("xmi: unexpected package child <%s>", t.Name.Local)
			}
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) packagedElement(dec *xml.Decoder, pkg *uml.Package, se xml.StartElement) error {
	id := attr(se, "id")
	switch xmiType(se) {
	case "uml:Package":
		child := pkg.AddPackage(attr(se, "name"), attr(se, "stereotype"))
		p.byID[id] = child
		return p.packageBody(dec, child)
	case "uml:Class":
		c := pkg.AddClass(attr(se, "name"), attr(se, "stereotype"))
		p.byID[id] = c
		return p.classBody(dec, c)
	case "uml:Enumeration":
		e := pkg.AddEnumeration(attr(se, "name"), attr(se, "stereotype"))
		p.byID[id] = e
		return p.enumBody(dec, e)
	case "uml:Association":
		mult, err := parseMult(se)
		if err != nil {
			return err
		}
		kind, err := uml.ParseAggregationKind(attr(se, "aggregation"))
		if err != nil {
			return err
		}
		a := &uml.Association{
			Stereotype: attr(se, "stereotype"),
			TargetRole: attr(se, "role"),
			TargetMult: mult,
			Kind:       kind,
		}
		pkg.AddAssociation(a)
		p.associations = append(p.associations, pendingAssociation{
			assoc: a, source: attr(se, "source"), target: attr(se, "target"),
		})
		return p.tagsOnly(dec, &a.Tags)
	case "uml:Dependency":
		d := pkg.AddDependency(attr(se, "stereotype"), nil, nil)
		p.dependencies = append(p.dependencies, pendingDependency{
			dep: d, client: attr(se, "client"), supplier: attr(se, "supplier"),
		})
		return dec.Skip()
	default:
		return fmt.Errorf("xmi: unsupported packagedElement type %q", xmiType(se))
	}
}

func (p *importer) tagsOnly(dec *xml.Decoder, tags *uml.TaggedValues) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmi: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "taggedValue" {
				tags.Set(attr(t, "tag"), attr(t, "value"))
				if err := dec.Skip(); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("xmi: unexpected element <%s>", t.Name.Local)
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) classBody(dec *xml.Decoder, c *uml.Class) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmi: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				c.Tags.Set(attr(t, "tag"), attr(t, "value"))
				if err := dec.Skip(); err != nil {
					return err
				}
			case "ownedAttribute":
				mult, err := parseMult(t)
				if err != nil {
					return err
				}
				a := c.AddAttribute(attr(t, "name"), attr(t, "stereotype"), attr(t, "type"), mult)
				p.byID[attr(t, "id")] = a
				if err := p.tagsOnly(dec, &a.Tags); err != nil {
					return err
				}
			default:
				return fmt.Errorf("xmi: unexpected class child <%s>", t.Name.Local)
			}
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) enumBody(dec *xml.Decoder, e *uml.Enumeration) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xmi: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				e.Tags.Set(attr(t, "tag"), attr(t, "value"))
			case "ownedLiteral":
				e.AddLiteral(attr(t, "name"), attr(t, "value"))
			default:
				return fmt.Errorf("xmi: unexpected enumeration child <%s>", t.Name.Local)
			}
			if err := dec.Skip(); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

// resolve wires association ends and dependency participants.
func (p *importer) resolve() error {
	classByID := func(id, context string) (*uml.Class, error) {
		el, ok := p.byID[id]
		if !ok {
			return nil, fmt.Errorf("xmi: %s references unknown id %q", context, id)
		}
		c, ok := el.(*uml.Class)
		if !ok {
			return nil, fmt.Errorf("xmi: %s id %q is not a class", context, id)
		}
		return c, nil
	}
	classifierByID := func(id, context string) (uml.Classifier, error) {
		el, ok := p.byID[id]
		if !ok {
			return nil, fmt.Errorf("xmi: %s references unknown id %q", context, id)
		}
		c, ok := el.(uml.Classifier)
		if !ok {
			return nil, fmt.Errorf("xmi: %s id %q is not a classifier", context, id)
		}
		return c, nil
	}
	for _, pa := range p.associations {
		src, err := classByID(pa.source, "association source")
		if err != nil {
			return err
		}
		dst, err := classByID(pa.target, "association target")
		if err != nil {
			return err
		}
		pa.assoc.Source, pa.assoc.Target = src, dst
	}
	for _, pd := range p.dependencies {
		client, err := classifierByID(pd.client, "dependency client")
		if err != nil {
			return err
		}
		supplier, err := classifierByID(pd.supplier, "dependency supplier")
		if err != nil {
			return err
		}
		pd.dep.Client, pd.dep.Supplier = client, supplier
	}
	return nil
}
