package xmi

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"github.com/go-ccts/ccts/internal/limits"
	"github.com/go-ccts/ccts/internal/uml"
)

// ImportOptions steer the hardened importer.
type ImportOptions struct {
	// Limits bounds the resources the document may consume; the zero
	// value disables all limits (Import itself applies limits.Default).
	Limits limits.Limits
	// Lenient switches the importer from fail-fast to best-effort:
	// model-level defects (dangling ID references, malformed tagged
	// values or multiplicities, unsupported elements) are collected as
	// Diagnostics and the partial model is returned. Stream-level
	// failures (XML syntax, limit violations, I/O) still abort.
	Lenient bool
	// StereotypeKnown, when set, is consulted for every non-empty
	// stereotype encountered; unknown stereotypes become Diagnostics in
	// lenient mode (and are ignored otherwise). The element argument
	// names the UML element kind: "package", "class", "enumeration",
	// "attribute", "association", "dependency".
	StereotypeKnown func(element, stereotype string) bool
}

// Diagnostic is one best-effort import finding, positioned at the
// 1-based line:col where the defect appeared in the document.
type Diagnostic struct {
	// Rule is a stable identifier (XMI-REF, XMI-STEREO, XMI-TAG,
	// XMI-MULT, XMI-AGG, XMI-ELEM, XMI-TYPE).
	Rule string
	// Element names the model element the defect is attached to.
	Element string
	// Message describes the defect.
	Message string
	// Line and Col locate the defect in the XMI document.
	Line, Col int
}

// String renders the diagnostic for reports.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d [%s] %s: %s", d.Line, d.Col, d.Rule, d.Element, d.Message)
}

// Import reads an XMI document produced by Export back into a UML model,
// enforcing the default ingestion limits. References (association ends,
// dependency clients/suppliers) may point forward in the document; they
// are resolved in a second pass.
func Import(r io.Reader) (*uml.Model, error) {
	m, _, err := ImportWithOptions(r, ImportOptions{Limits: limits.Default()})
	return m, err
}

// ImportString reads an XMI document from a string.
func ImportString(doc string) (*uml.Model, error) {
	return Import(strings.NewReader(doc))
}

// ImportWithOptions reads an XMI document under explicit options. In
// lenient mode the returned model may be partial and the diagnostics
// describe every defect that was skipped over; in strict mode
// diagnostics are always nil and the first defect aborts with a
// positional error.
func ImportWithOptions(r io.Reader, opts ImportOptions) (*uml.Model, []Diagnostic, error) {
	dec := limits.NewDecoder(r, opts.Limits)
	p := &importer{
		byID:            map[string]any{},
		dec:             dec,
		lenient:         opts.Lenient,
		stereotypeKnown: opts.StereotypeKnown,
	}
	model, err := p.document()
	if err != nil {
		return nil, p.diags, err
	}
	if err := p.resolve(); err != nil {
		return nil, p.diags, err
	}
	return model, p.diags, nil
}

// pendingAssociation defers end resolution until all classes are known.
type pendingAssociation struct {
	assoc          *uml.Association
	owner          *uml.Package
	source, target string
	line, col      int
}

type pendingDependency struct {
	dep              *uml.Dependency
	owner            *uml.Package
	client, supplier string
	line, col        int
}

type importer struct {
	byID         map[string]any
	associations []pendingAssociation
	dependencies []pendingDependency

	dec             *limits.Decoder
	lenient         bool
	stereotypeKnown func(element, stereotype string) bool
	diags           []Diagnostic
}

// failf aborts in strict mode and records a diagnostic in lenient mode
// (returning nil so the caller can recover and continue).
func (p *importer) failf(rule, element, format string, args ...any) error {
	if !p.lenient {
		return p.dec.Wrap("xmi", fmt.Errorf(format, args...))
	}
	line, col := p.dec.Pos()
	p.diags = append(p.diags, Diagnostic{
		Rule: rule, Element: element,
		Message: fmt.Sprintf(format, args...),
		Line:    line, Col: col,
	})
	return nil
}

// checkStereotype records a diagnostic for stereotypes the configured
// profile checker does not know.
func (p *importer) checkStereotype(element, name, st string) {
	if st == "" || p.stereotypeKnown == nil || p.stereotypeKnown(element, st) {
		return
	}
	line, col := p.dec.Pos()
	p.diags = append(p.diags, Diagnostic{
		Rule: "XMI-STEREO", Element: name,
		Message: fmt.Sprintf("unknown %s stereotype %q", element, st),
		Line:    line, Col: col,
	})
}

func attr(se xml.StartElement, local string) string {
	for _, a := range se.Attr {
		if a.Name.Local == local {
			return a.Value
		}
	}
	return ""
}

func xmiType(se xml.StartElement) string {
	for _, a := range se.Attr {
		if a.Name.Local == "type" && (a.Name.Space == XMINamespace || a.Name.Space == "xmi") {
			return a.Value
		}
	}
	return attr(se, "type")
}

// parseMult reads the lower/upper multiplicity attributes; in lenient
// mode a malformed range is diagnosed and defaults to 1..1.
func (p *importer) parseMult(se xml.StartElement, element string) (uml.Multiplicity, error) {
	lower, upper := attr(se, "lower"), attr(se, "upper")
	if lower == "" && upper == "" {
		return uml.One, nil
	}
	m, err := uml.ParseMultiplicity(lower + ".." + upper)
	if err != nil {
		if ferr := p.failf("XMI-MULT", element, "malformed multiplicity %q..%q: %v", lower, upper, err); ferr != nil {
			return uml.One, ferr
		}
		return uml.One, nil
	}
	return m, nil
}

// taggedValue applies one taggedValue element; a missing tag name is a
// malformed tagged value.
func (p *importer) taggedValue(se xml.StartElement, element string, tags *uml.TaggedValues) error {
	tag := attr(se, "tag")
	if tag == "" {
		if err := p.failf("XMI-TAG", element, "taggedValue without tag name"); err != nil {
			return err
		}
		return p.dec.Skip()
	}
	tags.Set(tag, attr(se, "value"))
	return p.dec.Skip()
}

func (p *importer) document() (*uml.Model, error) {
	dec := p.dec
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmi: no uml:Model element found")
		}
		if err != nil {
			return nil, dec.Wrap("xmi", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch {
		case se.Name.Local == "XMI":
			continue // descend
		case se.Name.Local == "Model" && se.Name.Space == UMLNamespace:
			return p.model(se)
		default:
			if err := p.failf("XMI-ELEM", se.Name.Local, "unexpected element <%s>", se.Name.Local); err != nil {
				return nil, err
			}
			if err := dec.Skip(); err != nil {
				return nil, dec.Wrap("xmi", err)
			}
		}
	}
}

func (p *importer) model(se xml.StartElement) (*uml.Model, error) {
	dec := p.dec
	m := uml.NewModel(attr(se, "name"))
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, dec.Wrap("xmi", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				if err := p.taggedValue(t, m.Name, &m.Tags); err != nil {
					return nil, err
				}
			case "packagedElement":
				if xmiType(t) != "uml:Package" {
					if err := p.failf("XMI-TYPE", attr(t, "name"), "model children must be packages, got %q", xmiType(t)); err != nil {
						return nil, err
					}
					if err := dec.Skip(); err != nil {
						return nil, dec.Wrap("xmi", err)
					}
					continue
				}
				p.checkStereotype("package", attr(t, "name"), attr(t, "stereotype"))
				pkg := m.AddPackage(attr(t, "name"), attr(t, "stereotype"))
				p.byID[attr(t, "id")] = pkg
				if err := p.packageBody(pkg); err != nil {
					return nil, err
				}
			default:
				if err := p.failf("XMI-ELEM", m.Name, "unexpected model child <%s>", t.Name.Local); err != nil {
					return nil, err
				}
				if err := dec.Skip(); err != nil {
					return nil, dec.Wrap("xmi", err)
				}
			}
		case xml.EndElement:
			if t.Name.Local == "Model" {
				return m, nil
			}
		}
	}
}

func (p *importer) packageBody(pkg *uml.Package) error {
	dec := p.dec
	for {
		tok, err := dec.Token()
		if err != nil {
			return dec.Wrap("xmi", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				if err := p.taggedValue(t, pkg.QualifiedName(), &pkg.Tags); err != nil {
					return err
				}
			case "packagedElement":
				if err := p.packagedElement(pkg, t); err != nil {
					return err
				}
			default:
				if err := p.failf("XMI-ELEM", pkg.QualifiedName(), "unexpected package child <%s>", t.Name.Local); err != nil {
					return err
				}
				if err := dec.Skip(); err != nil {
					return dec.Wrap("xmi", err)
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) packagedElement(pkg *uml.Package, se xml.StartElement) error {
	id := attr(se, "id")
	name := attr(se, "name")
	switch xmiType(se) {
	case "uml:Package":
		p.checkStereotype("package", name, attr(se, "stereotype"))
		child := pkg.AddPackage(name, attr(se, "stereotype"))
		p.byID[id] = child
		return p.packageBody(child)
	case "uml:Class":
		p.checkStereotype("class", name, attr(se, "stereotype"))
		c := pkg.AddClass(name, attr(se, "stereotype"))
		p.byID[id] = c
		return p.classBody(c)
	case "uml:Enumeration":
		p.checkStereotype("enumeration", name, attr(se, "stereotype"))
		e := pkg.AddEnumeration(name, attr(se, "stereotype"))
		p.byID[id] = e
		return p.enumBody(e)
	case "uml:Association":
		role := attr(se, "role")
		p.checkStereotype("association", role, attr(se, "stereotype"))
		mult, err := p.parseMult(se, "association "+role)
		if err != nil {
			return err
		}
		kind, err := uml.ParseAggregationKind(attr(se, "aggregation"))
		if err != nil {
			if ferr := p.failf("XMI-AGG", "association "+role, "%v", err); ferr != nil {
				return ferr
			}
			kind = uml.AggregationNone
		}
		a := &uml.Association{
			Stereotype: attr(se, "stereotype"),
			TargetRole: role,
			TargetMult: mult,
			Kind:       kind,
		}
		pkg.AddAssociation(a)
		line, col := p.dec.Pos()
		p.associations = append(p.associations, pendingAssociation{
			assoc: a, owner: pkg, source: attr(se, "source"), target: attr(se, "target"),
			line: line, col: col,
		})
		return p.tagsOnly(&a.Tags, "association "+role)
	case "uml:Dependency":
		p.checkStereotype("dependency", "dependency", attr(se, "stereotype"))
		d := pkg.AddDependency(attr(se, "stereotype"), nil, nil)
		line, col := p.dec.Pos()
		p.dependencies = append(p.dependencies, pendingDependency{
			dep: d, owner: pkg, client: attr(se, "client"), supplier: attr(se, "supplier"),
			line: line, col: col,
		})
		return p.dec.Skip()
	default:
		if err := p.failf("XMI-TYPE", name, "unsupported packagedElement type %q", xmiType(se)); err != nil {
			return err
		}
		return p.dec.Skip()
	}
}

func (p *importer) tagsOnly(tags *uml.TaggedValues, element string) error {
	dec := p.dec
	for {
		tok, err := dec.Token()
		if err != nil {
			return dec.Wrap("xmi", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "taggedValue" {
				if err := p.taggedValue(t, element, tags); err != nil {
					return err
				}
				continue
			}
			if err := p.failf("XMI-ELEM", element, "unexpected element <%s>", t.Name.Local); err != nil {
				return err
			}
			if err := dec.Skip(); err != nil {
				return dec.Wrap("xmi", err)
			}
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) classBody(c *uml.Class) error {
	dec := p.dec
	for {
		tok, err := dec.Token()
		if err != nil {
			return dec.Wrap("xmi", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				if err := p.taggedValue(t, c.QualifiedName(), &c.Tags); err != nil {
					return err
				}
			case "ownedAttribute":
				aname := attr(t, "name")
				p.checkStereotype("attribute", c.Name+"."+aname, attr(t, "stereotype"))
				mult, err := p.parseMult(t, "attribute "+c.Name+"."+aname)
				if err != nil {
					return err
				}
				a := c.AddAttribute(aname, attr(t, "stereotype"), attr(t, "type"), mult)
				p.byID[attr(t, "id")] = a
				if err := p.tagsOnly(&a.Tags, "attribute "+c.Name+"."+aname); err != nil {
					return err
				}
			default:
				if err := p.failf("XMI-ELEM", c.QualifiedName(), "unexpected class child <%s>", t.Name.Local); err != nil {
					return err
				}
				if err := dec.Skip(); err != nil {
					return dec.Wrap("xmi", err)
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func (p *importer) enumBody(e *uml.Enumeration) error {
	dec := p.dec
	for {
		tok, err := dec.Token()
		if err != nil {
			return dec.Wrap("xmi", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "taggedValue":
				if err := p.taggedValue(t, e.QualifiedName(), &e.Tags); err != nil {
					return err
				}
				continue
			case "ownedLiteral":
				e.AddLiteral(attr(t, "name"), attr(t, "value"))
			default:
				if err := p.failf("XMI-ELEM", e.QualifiedName(), "unexpected enumeration child <%s>", t.Name.Local); err != nil {
					return err
				}
			}
			if err := dec.Skip(); err != nil {
				return dec.Wrap("xmi", err)
			}
		case xml.EndElement:
			return nil
		}
	}
}

// posErrf builds a strict-mode resolution error positioned at the
// element that held the dangling reference.
func posErrf(line, col int, format string, args ...any) error {
	return &limits.PosError{Op: "xmi", Line: line, Col: col, Err: fmt.Errorf(format, args...)}
}

// resolve wires association ends and dependency participants. In
// lenient mode, associations and dependencies with dangling or
// mistyped references are diagnosed and dropped from their owning
// package instead of aborting the import.
func (p *importer) resolve() error {
	classByID := func(id, context string) (*uml.Class, error) {
		el, ok := p.byID[id]
		if !ok {
			return nil, fmt.Errorf("xmi: %s references unknown id %q", context, id)
		}
		c, ok := el.(*uml.Class)
		if !ok {
			return nil, fmt.Errorf("xmi: %s id %q is not a class", context, id)
		}
		return c, nil
	}
	classifierByID := func(id, context string) (uml.Classifier, error) {
		el, ok := p.byID[id]
		if !ok {
			return nil, fmt.Errorf("xmi: %s references unknown id %q", context, id)
		}
		c, ok := el.(uml.Classifier)
		if !ok {
			return nil, fmt.Errorf("xmi: %s id %q is not a classifier", context, id)
		}
		return c, nil
	}
	for _, pa := range p.associations {
		src, err := classByID(pa.source, "association source")
		if err == nil {
			var dst *uml.Class
			dst, err = classByID(pa.target, "association target")
			if err == nil {
				pa.assoc.Source, pa.assoc.Target = src, dst
				continue
			}
		}
		if !p.lenient {
			return posErrf(pa.line, pa.col, "%v", err)
		}
		p.diags = append(p.diags, Diagnostic{
			Rule: "XMI-REF", Element: "association " + pa.assoc.TargetRole,
			Message: strings.TrimPrefix(err.Error(), "xmi: "),
			Line:    pa.line, Col: pa.col,
		})
		dropAssociation(pa.owner, pa.assoc)
	}
	for _, pd := range p.dependencies {
		client, err := classifierByID(pd.client, "dependency client")
		if err == nil {
			var supplier uml.Classifier
			supplier, err = classifierByID(pd.supplier, "dependency supplier")
			if err == nil {
				pd.dep.Client, pd.dep.Supplier = client, supplier
				continue
			}
		}
		if !p.lenient {
			return posErrf(pd.line, pd.col, "%v", err)
		}
		p.diags = append(p.diags, Diagnostic{
			Rule: "XMI-REF", Element: "dependency " + pd.dep.Stereotype,
			Message: strings.TrimPrefix(err.Error(), "xmi: "),
			Line:    pd.line, Col: pd.col,
		})
		dropDependency(pd.owner, pd.dep)
	}
	return nil
}

func dropAssociation(pkg *uml.Package, a *uml.Association) {
	for i, x := range pkg.Associations {
		if x == a {
			pkg.Associations = append(pkg.Associations[:i], pkg.Associations[i+1:]...)
			return
		}
	}
}

func dropDependency(pkg *uml.Package, d *uml.Dependency) {
	for i, x := range pkg.Dependencies {
		if x == d {
			pkg.Dependencies = append(pkg.Dependencies[:i], pkg.Dependencies[i+1:]...)
			return
		}
	}
}
