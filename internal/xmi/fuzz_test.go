package xmi

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/profile"
)

// FuzzImport checks that arbitrary input never panics the importer and
// that successfully imported models re-export canonically.
func FuzzImport(f *testing.F) {
	hp := fixture.MustBuildHoardingPermit()
	f.Add(ExportString(profile.Render(hp.Model)))
	fig1 := fixture.MustBuildFigure1()
	f.Add(ExportString(profile.Render(fig1.Model)))
	f.Add(`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1"><uml:Model xmi:id="m" name="X"></uml:Model></xmi:XMI>`)
	f.Add(`<broken`)
	f.Add("")
	// Limit-edge seeds: nesting beyond the default depth limit, an
	// attribute value past the default token-length limit, and the DTD /
	// entity declarations the hardened decoder rejects outright.
	f.Add(strings.Repeat("<a>", 200) + strings.Repeat("</a>", 200))
	f.Add(`<a b="` + strings.Repeat("x", 1<<20+1) + `"/>`)
	f.Add(`<!DOCTYPE foo [<!ENTITY bomb "x">]><xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1">&bomb;</xmi:XMI>`)
	f.Add(`<?xml version="1.0"?><!DOCTYPE lolz [<!ENTITY lol "lol"><!ENTITY lol2 "&lol;&lol;">]><lolz>&lol2;</lolz>`)
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := ImportString(doc)
		if err != nil {
			return
		}
		out := ExportString(m)
		m2, err := ImportString(out)
		if err != nil {
			t.Fatalf("canonical output does not re-import: %v", err)
		}
		if ExportString(m2) != out {
			t.Error("second round trip not stable")
		}
	})
}
