// Package xmi serialises UML models to an XMI 2.1-style XML interchange
// format and reads them back. The paper motivates the UML profile partly
// by interchange: "we hope ... to use XMI for registering and exchanging
// core components." The format follows the XMI packagedElement structure
// with xmi:id/xmi:type attributes; stereotypes and tagged values are
// carried inline (as attribute and child elements) rather than through a
// separate profile-application section, which keeps documents
// self-contained and diffable.
package xmi

import (
	"fmt"
	"io"
	"strings"

	"github.com/go-ccts/ccts/internal/uml"
)

// Namespaces of the interchange format.
const (
	XMINamespace = "http://schema.omg.org/spec/XMI/2.1"
	UMLNamespace = "http://schema.omg.org/spec/UML/2.1"
)

// Export writes the model as an XMI document.
func Export(m *uml.Model, w io.Writer) error {
	e := &exporter{
		ids: map[any]string{},
		b:   &strings.Builder{},
	}
	e.assignIDs(m)
	e.write(m)
	_, err := io.WriteString(w, e.b.String())
	return err
}

// ExportString returns the XMI document as a string.
func ExportString(m *uml.Model) string {
	var b strings.Builder
	// strings.Builder writes cannot fail.
	_ = Export(m, &b)
	return b.String()
}

type exporter struct {
	ids     map[any]string
	counter int
	b       *strings.Builder
}

func (e *exporter) id(element any) string {
	if id, ok := e.ids[element]; ok {
		return id
	}
	e.counter++
	id := fmt.Sprintf("id%d", e.counter)
	e.ids[element] = id
	return id
}

// assignIDs walks the model in document order so identifiers are stable
// across exports of the same model.
func (e *exporter) assignIDs(m *uml.Model) {
	m.WalkPackages(func(p *uml.Package) bool {
		e.id(p)
		for _, c := range p.Classes {
			e.id(c)
			for _, a := range c.Attributes {
				e.id(a)
			}
		}
		for _, en := range p.Enumerations {
			e.id(en)
		}
		for _, a := range p.Associations {
			e.id(a)
		}
		for _, d := range p.Dependencies {
			e.id(d)
		}
		return true
	})
}

func (e *exporter) indent(depth int) {
	for i := 0; i < depth; i++ {
		e.b.WriteString("  ")
	}
}

func (e *exporter) writeTags(tags uml.TaggedValues, depth int) {
	for _, name := range tags.Names() {
		e.indent(depth)
		fmt.Fprintf(e.b, "<taggedValue tag=%q value=%q/>\n", esc(name), esc(tags.Get(name)))
	}
}

func multAttrs(m uml.Multiplicity) string {
	upper := fmt.Sprint(m.Upper)
	if m.Upper == uml.Unbounded {
		upper = "*"
	}
	return fmt.Sprintf(" lower=%q upper=%q", fmt.Sprint(m.Lower), upper)
}

func (e *exporter) write(m *uml.Model) {
	e.b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(e.b, "<xmi:XMI xmi:version=\"2.1\" xmlns:xmi=%q xmlns:uml=%q>\n", XMINamespace, UMLNamespace)
	fmt.Fprintf(e.b, "  <uml:Model xmi:id=\"model\" name=%q>\n", esc(m.Name))
	e.writeTags(m.Tags, 2)
	for _, p := range m.Packages {
		e.writePackage(p, 2)
	}
	e.b.WriteString("  </uml:Model>\n")
	e.b.WriteString("</xmi:XMI>\n")
}

func (e *exporter) writePackage(p *uml.Package, depth int) {
	e.indent(depth)
	fmt.Fprintf(e.b, "<packagedElement xmi:type=\"uml:Package\" xmi:id=%q name=%q stereotype=%q>\n",
		e.id(p), esc(p.Name), esc(p.Stereotype))
	e.writeTags(p.Tags, depth+1)
	for _, c := range p.Classes {
		e.writeClass(c, depth+1)
	}
	for _, en := range p.Enumerations {
		e.writeEnumeration(en, depth+1)
	}
	for _, a := range p.Associations {
		e.writeAssociation(a, depth+1)
	}
	for _, d := range p.Dependencies {
		e.writeDependency(d, depth+1)
	}
	for _, child := range p.Packages {
		e.writePackage(child, depth+1)
	}
	e.indent(depth)
	e.b.WriteString("</packagedElement>\n")
}

func (e *exporter) writeClass(c *uml.Class, depth int) {
	e.indent(depth)
	fmt.Fprintf(e.b, "<packagedElement xmi:type=\"uml:Class\" xmi:id=%q name=%q stereotype=%q",
		e.id(c), esc(c.Name), esc(c.Stereotype))
	if len(c.Attributes) == 0 && len(c.Tags) == 0 {
		e.b.WriteString("/>\n")
		return
	}
	e.b.WriteString(">\n")
	e.writeTags(c.Tags, depth+1)
	for _, a := range c.Attributes {
		e.indent(depth + 1)
		fmt.Fprintf(e.b, "<ownedAttribute xmi:id=%q name=%q stereotype=%q type=%q%s",
			e.id(a), esc(a.Name), esc(a.Stereotype), esc(a.TypeName), multAttrs(a.Mult))
		if len(a.Tags) == 0 {
			e.b.WriteString("/>\n")
			continue
		}
		e.b.WriteString(">\n")
		e.writeTags(a.Tags, depth+2)
		e.indent(depth + 1)
		e.b.WriteString("</ownedAttribute>\n")
	}
	e.indent(depth)
	e.b.WriteString("</packagedElement>\n")
}

func (e *exporter) writeEnumeration(en *uml.Enumeration, depth int) {
	e.indent(depth)
	fmt.Fprintf(e.b, "<packagedElement xmi:type=\"uml:Enumeration\" xmi:id=%q name=%q stereotype=%q>\n",
		e.id(en), esc(en.Name), esc(en.Stereotype))
	e.writeTags(en.Tags, depth+1)
	for _, l := range en.Literals {
		e.indent(depth + 1)
		fmt.Fprintf(e.b, "<ownedLiteral name=%q value=%q/>\n", esc(l.Name), esc(l.Value))
	}
	e.indent(depth)
	e.b.WriteString("</packagedElement>\n")
}

func (e *exporter) writeAssociation(a *uml.Association, depth int) {
	e.indent(depth)
	fmt.Fprintf(e.b,
		"<packagedElement xmi:type=\"uml:Association\" xmi:id=%q stereotype=%q source=%q target=%q role=%q aggregation=%q%s",
		e.id(a), esc(a.Stereotype), e.id(a.Source), e.id(a.Target), esc(a.TargetRole),
		a.Kind.String(), multAttrs(a.TargetMult))
	if len(a.Tags) == 0 {
		e.b.WriteString("/>\n")
		return
	}
	e.b.WriteString(">\n")
	e.writeTags(a.Tags, depth+1)
	e.indent(depth)
	e.b.WriteString("</packagedElement>\n")
}

func (e *exporter) writeDependency(d *uml.Dependency, depth int) {
	e.indent(depth)
	fmt.Fprintf(e.b,
		"<packagedElement xmi:type=\"uml:Dependency\" xmi:id=%q stereotype=%q client=%q supplier=%q/>\n",
		e.id(d), esc(d.Stereotype), e.id(d.Client), e.id(d.Supplier))
}

func esc(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
