package xmi

import (
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/faultio"
	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/limits"
	"github.com/go-ccts/ccts/internal/profile"
)

func exportFixture(t *testing.T) string {
	t.Helper()
	hp := fixture.MustBuildHoardingPermit()
	return ExportString(profile.Render(hp.Model))
}

// TestImportTruncatedStream: a reader that dies mid-document surfaces
// as a structured error, never a panic or a silent partial model.
func TestImportTruncatedStream(t *testing.T) {
	doc := exportFixture(t)
	// Cuts past </uml:Model> are undetectable (the importer is done by
	// then), so the latest cut lands just inside the model's close tag.
	end := int64(strings.LastIndex(doc, "</uml:Model>") + 3)
	for _, cut := range []int64{1, 64, int64(len(doc) / 2), end} {
		r := &faultio.Reader{R: strings.NewReader(doc), Limit: cut}
		m, err := Import(r)
		if err == nil {
			t.Errorf("cut at %d: want error, got model %v", cut, m)
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
			t.Errorf("cut at %d: err = %v, want unexpected-EOF flavour", cut, err)
		}
	}
}

// TestImportDepthLimit: nesting past MaxDepth aborts with a positioned
// limit violation.
func TestImportDepthLimit(t *testing.T) {
	// The deep subtree hangs off an element the lenient importer skips,
	// so the decoder's depth check — not element dispatch — must stop it.
	doc := `<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1">` +
		strings.Repeat("<a>", 50) + strings.Repeat("</a>", 50) + `</xmi:XMI>`
	_, _, err := ImportWithOptions(strings.NewReader(doc), ImportOptions{
		Limits:  limits.Limits{MaxDepth: 5},
		Lenient: true,
	})
	if !errors.Is(err, limits.ErrLimit) {
		t.Fatalf("err = %v, want limits.ErrLimit", err)
	}
	var v *limits.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want *limits.Violation", err)
	}
	if v.Limit != "MaxDepth" || v.Line <= 0 || v.Col <= 0 {
		t.Errorf("violation = %+v", v)
	}
}

// TestImportByteLimit: input larger than MaxInputBytes aborts.
func TestImportByteLimit(t *testing.T) {
	doc := exportFixture(t)
	_, _, err := ImportWithOptions(strings.NewReader(doc), ImportOptions{
		Limits: limits.Limits{MaxInputBytes: 128},
	})
	if !errors.Is(err, limits.ErrLimit) {
		t.Fatalf("err = %v, want limits.ErrLimit", err)
	}
}

// TestImportRejectsDTD: DOCTYPE (and with it entity expansion) is
// rejected outright by the default import path.
func TestImportRejectsDTD(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE x [<!ENTITY e "x">]>` +
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1"><uml:Model xmi:id="m" name="X" xmlns:uml="http://schema.omg.org/spec/UML/2.1"/></xmi:XMI>`
	_, err := ImportString(doc)
	if !errors.Is(err, limits.ErrDTD) {
		t.Fatalf("err = %v, want limits.ErrDTD", err)
	}
}

// TestImportStrictPositionalErrors: strict mode reports defects with
// source positions instead of bare messages.
func TestImportStrictPositionalErrors(t *testing.T) {
	doc := `<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1">
  <uml:Model xmi:id="m" name="X">
    <packagedElement xmi:type="uml:Package" xmi:id="p1" name="Lib" stereotype="CCLibrary">
      <packagedElement xmi:type="uml:Dependency" xmi:id="d1" stereotype="basedOn" client="p1" supplier="gone"/>
    </packagedElement>
  </uml:Model>
</xmi:XMI>`
	_, err := ImportString(doc)
	if err == nil {
		t.Fatal("dangling supplier must fail the strict import")
	}
	var pe *limits.PosError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *limits.PosError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4 (%v)", pe.Line, err)
	}
}

// TestImportLimitsRoundTripUnaffected: the default limits admit every
// document the exporter produces.
func TestImportLimitsRoundTripUnaffected(t *testing.T) {
	doc := exportFixture(t)
	if _, err := ImportString(doc); err != nil {
		t.Fatalf("default limits reject exporter output: %v", err)
	}
}
