package xmi

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/profile"
	"github.com/go-ccts/ccts/internal/uml"
)

func hoardingUML(t *testing.T) *uml.Model {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	return profile.Render(f.Model)
}

func TestExportStructure(t *testing.T) {
	um := hoardingUML(t)
	doc := ExportString(um)
	for _, want := range []string{
		`<?xml version="1.0" encoding="UTF-8"?>`,
		`<xmi:XMI xmi:version="2.1"`,
		`<uml:Model xmi:id="model" name="EasyBiz">`,
		`xmi:type="uml:Package"`,
		`stereotype="BusinessLibrary"`,
		`stereotype="DOCLibrary"`,
		`name="HoardingPermit" stereotype="ABIE"`,
		`<taggedValue tag="baseURN" value="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"/>`,
		`xmi:type="uml:Association"`,
		`stereotype="ASBIE"`,
		`xmi:type="uml:Dependency"`,
		`stereotype="basedOn"`,
		`xmi:type="uml:Enumeration"`,
		`<ownedLiteral name="AUT" value="Austria"/>`,
		`aggregation="shared"`,
		`upper="*"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	a := ExportString(hoardingUML(t))
	b := ExportString(hoardingUML(t))
	if a != b {
		t.Error("XMI export is not deterministic")
	}
}

func TestRoundTrip(t *testing.T) {
	um := hoardingUML(t)
	doc := ExportString(um)
	back, err := ImportString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != um.Name {
		t.Errorf("model name = %q", back.Name)
	}
	if s1, s2 := um.Stats(), back.Stats(); s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	// The re-imported model still satisfies the profile constraints.
	if vs := profile.EvaluateConstraints(back); len(vs) != 0 {
		t.Errorf("round-tripped model violates constraints: %v", vs)
	}
	// And extracts into the same CCTS structure.
	cm, err := profile.Extract(back)
	if err != nil {
		t.Fatal(err)
	}
	hp := cm.FindABIE("HoardingPermit")
	if hp == nil {
		t.Fatal("HoardingPermit lost in XMI round trip")
	}
	wantEntities := []string{
		"HoardingPermit (ABIE)",
		"HoardingPermit.ClosureReason (BBIE)",
		"HoardingPermit.IsClosedFootpath (BBIE)",
		"HoardingPermit.IsClosedRoad (BBIE)",
		"HoardingPermit.SafetyPrecaution (BBIE)",
		"HoardingPermit.Included.Attachment (ASBIE)",
		"HoardingPermit.Current.Application (ASBIE)",
		"HoardingPermit.Included.Registration (ASBIE)",
		"HoardingPermit.Billing.Person_Identification (ASBIE)",
	}
	got := hp.EntitySet()
	if len(got) != len(wantEntities) {
		t.Fatalf("entity set = %v", got)
	}
	for i := range wantEntities {
		if got[i] != wantEntities[i] {
			t.Errorf("entity %d = %q, want %q", i, got[i], wantEntities[i])
		}
	}
	// Second export is byte-identical: canonical form.
	if ExportString(back) != doc {
		t.Error("second export differs from first")
	}
}

func TestRoundTripTaggedValuesAndKinds(t *testing.T) {
	um := hoardingUML(t)
	back, err := ImportString(ExportString(um))
	if err != nil {
		t.Fatal(err)
	}
	common := back.FindPackage("CommonAggregates")
	if common.Tags.Get(profile.TagNamespacePrefix) != "commonAggregates" {
		t.Errorf("NamespacePrefix tag lost: %v", common.Tags)
	}
	pid := back.FindClass("Person_Identification")
	var shared *uml.Association
	for _, a := range back.AssociationsFrom(pid) {
		if a.TargetRole == "Assigned" {
			shared = a
		}
	}
	if shared == nil || shared.Kind != uml.AggregationShared {
		t.Errorf("shared aggregation kind lost: %+v", shared)
	}
	// Multiplicities survive, including unbounded.
	hp := back.FindClass("HoardingPermit")
	var included *uml.Association
	for _, a := range back.AssociationsFrom(hp) {
		if a.TargetRole == "Included" && a.Target.Name == "Attachment" {
			included = a
		}
	}
	if included == nil || included.TargetMult != uml.Many {
		t.Errorf("unbounded multiplicity lost: %+v", included)
	}
}

func TestEscaping(t *testing.T) {
	m := uml.NewModel(`Weird "& <Model>`)
	p := m.AddPackage("P", "BusinessLibrary")
	p.Tags.Set("note", `a"b<c>&d`)
	back, err := ImportString(ExportString(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name {
		t.Errorf("name = %q", back.Name)
	}
	if got := back.FindPackage("P").Tags.Get("note"); got != `a"b<c>&d` {
		t.Errorf("tag = %q", got)
	}
}

func TestImportErrors(t *testing.T) {
	bad := []string{
		``,
		`<foo/>`,
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1"></xmi:XMI>`,
		// Unknown packagedElement type.
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1">
		  <uml:Model xmi:id="m" name="X">
		    <packagedElement xmi:type="uml:Widget" xmi:id="p1" name="P"/>
		  </uml:Model></xmi:XMI>`,
		// Dangling association reference.
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1">
		  <uml:Model xmi:id="m" name="X">
		    <packagedElement xmi:type="uml:Package" xmi:id="p1" name="P" stereotype="CCLibrary">
		      <packagedElement xmi:type="uml:Association" xmi:id="a1" stereotype="ASCC" source="nope" target="nope" role="r" aggregation="composite" lower="1" upper="1"/>
		    </packagedElement>
		  </uml:Model></xmi:XMI>`,
		// Class child at model level.
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1">
		  <uml:Model xmi:id="m" name="X">
		    <packagedElement xmi:type="uml:Class" xmi:id="c1" name="C" stereotype="ACC"/>
		  </uml:Model></xmi:XMI>`,
		// Bad aggregation kind.
		`<xmi:XMI xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:uml="http://schema.omg.org/spec/UML/2.1">
		  <uml:Model xmi:id="m" name="X">
		    <packagedElement xmi:type="uml:Package" xmi:id="p1" name="P" stereotype="CCLibrary">
		      <packagedElement xmi:type="uml:Association" xmi:id="a1" stereotype="ASCC" source="p1" target="p1" role="r" aggregation="diamond"/>
		    </packagedElement>
		  </uml:Model></xmi:XMI>`,
	}
	for i, doc := range bad {
		if _, err := ImportString(doc); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// TestImportForeignFormatting accepts XMI that other tools would write:
// different attribute order, extra whitespace, XML comments and a
// processing instruction.
func TestImportForeignFormatting(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!-- exported by some other tool -->
<?tool hint?>
<xmi:XMI xmlns:uml="http://schema.omg.org/spec/UML/2.1"
         xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmi:version="2.1">
  <uml:Model name="Foreign" xmi:id="m0">
    <packagedElement name="Biz" xmi:id="p0" stereotype="BusinessLibrary" xmi:type="uml:Package">
      <packagedElement stereotype="CCLibrary" name="CC" xmi:type="uml:Package" xmi:id="p1">
        <taggedValue value="urn:foreign:cc" tag="baseURN"/>
        <packagedElement xmi:id="c1" xmi:type="uml:Class" stereotype="ACC" name="Thing">
          <ownedAttribute upper="1" lower="0" type="Text" stereotype="BCC" name="Label" xmi:id="a1"/>
        </packagedElement>
        <!-- a comment between elements -->
        <packagedElement xmi:type="uml:Class" name="Other" stereotype="ACC" xmi:id="c2"/>
        <packagedElement xmi:type="uml:Association" xmi:id="as1" stereotype="ASCC"
            source="c1" target="c2" role="Linked" aggregation="composite" lower="1" upper="1"/>
      </packagedElement>
    </packagedElement>
  </uml:Model>
</xmi:XMI>`
	m, err := ImportString(doc)
	if err != nil {
		t.Fatal(err)
	}
	thing := m.FindClass("Thing")
	if thing == nil || thing.Stereotype != "ACC" {
		t.Fatalf("Thing = %v", thing)
	}
	if len(thing.Attributes) != 1 || thing.Attributes[0].Mult != uml.Optional {
		t.Errorf("attributes = %+v", thing.Attributes)
	}
	if m.FindPackage("CC").Tags.Get("baseURN") != "urn:foreign:cc" {
		t.Error("tagged value lost")
	}
	assocs := m.AssociationsFrom(thing)
	if len(assocs) != 1 || assocs[0].TargetRole != "Linked" {
		t.Errorf("associations = %+v", assocs)
	}
}

func TestDependencyToEnumeration(t *testing.T) {
	// basedOn dependencies may point at enumerations in principle; the
	// classifier resolution must handle both classifier kinds.
	m := uml.NewModel("M")
	biz := m.AddPackage("B", "BusinessLibrary")
	lib := biz.AddPackage("L", "ENUMLibrary")
	lib.Tags.Set("baseURN", "urn:l")
	e := lib.AddEnumeration("E", "ENUM")
	e.AddLiteral("A", "a")
	cls := lib.AddClass("C", "QDT")
	lib.AddDependency("uses", cls, e)

	back, err := ImportString(ExportString(m))
	if err != nil {
		t.Fatal(err)
	}
	var dep *uml.Dependency
	back.WalkDependencies(func(d *uml.Dependency) bool {
		dep = d
		return false
	})
	if dep == nil {
		t.Fatal("dependency lost")
	}
	if dep.Supplier.ClassifierName() != "E" || dep.Supplier.ClassifierStereotype() != "ENUM" {
		t.Errorf("supplier = %v", dep.Supplier)
	}
}
