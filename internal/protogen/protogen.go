// Package protogen is the Protocol Buffers (proto3) backend of the
// generation pipeline: the Resolve/Plan phases that drive the XSD
// generator feed a gen.Backend that renders one .proto file per
// planned library unit, with the package name derived from the
// library's (effective) namespace. ABIEs become messages, data types
// become value messages (the content component as field 1, the
// supplementary components following), enumerations become proto
// enums with an UNSPECIFIED zero value.
//
// Field numbers are a pure function of plan/model order — BBIEs first,
// then ASBIEs, numbered from 1 in declaration order — so regenerating
// an unchanged model yields identical numbering; appending components
// to the end of an ABIE is wire-compatible, reordering or inserting is
// not (the caveat every schema-first proto workflow shares).
package protogen

import (
	"fmt"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/ndr"
)

// ContentType is the media type of generated files; .proto sources
// have no registered type, so they ship as plain text.
const ContentType = "text/plain; charset=utf-8"

// Backend implements gen.Backend for proto3. EmitOp is pure — each
// operation derives its message/enum block from the immutable plan —
// so the pool parallelizes it; Assemble concatenates blocks in plan
// order under a deterministic per-unit header.
type Backend struct{}

// Target implements gen.Backend.
func (Backend) Target() string { return "proto" }

// ContentType implements gen.Backend.
func (Backend) ContentType() string { return ContentType }

// FileName derives a unit's .proto name from its XSD file name.
func FileName(u *gen.Unit) string {
	return strings.TrimSuffix(u.File(), ".xsd") + ".proto"
}

// PackageName sanitizes a namespace URN/URI into a proto package name:
// segments split on URN/URL separators, lowered, non-identifier runes
// replaced, empty or digit-led segments prefixed.
func PackageName(ns string) string {
	segs := strings.FieldsFunc(ns, func(r rune) bool {
		return r == ':' || r == '/' || r == '.' || r == '#'
	})
	if len(segs) == 0 {
		return "ccts"
	}
	out := make([]string, 0, len(segs))
	for _, seg := range segs {
		var b strings.Builder
		for _, r := range strings.ToLower(seg) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			default:
				b.WriteRune('_')
			}
		}
		s := b.String()
		if s == "" || (s[0] >= '0' && s[0] <= '9') {
			s = "p" + s
		}
		out = append(out, s)
	}
	return strings.Join(out, ".")
}

// EmitOp implements gen.Backend.
func (Backend) EmitOp(p *gen.Plan, u *gen.Unit, op gen.Op) (gen.Fragment, error) {
	switch {
	case op.ABIE() != nil:
		return emitABIE(p, u, op.ABIE()), nil
	case op.CDT() != nil:
		cdt := op.CDT()
		base := scalarOf(p, cdt.Name, ndr.ContentBuiltin(cdt))
		return valueMessage(p, u, p.Index().DataTypeName(cdt), cdt.Definition, base, cdt.Sups), nil
	case op.QDT() != nil:
		return emitQDT(p, u, op.QDT()), nil
	default:
		return emitENUM(p, op.ENUM()), nil
	}
}

// Assemble implements gen.Backend.
func (Backend) Assemble(p *gen.Plan, frags [][]gen.Fragment) (*gen.Output, error) {
	out := &gen.Output{}
	for i, u := range p.Units() {
		var b strings.Builder
		b.WriteString("syntax = \"proto3\";\n\n")
		fmt.Fprintf(&b, "// Generated from %s %s (%s).\n", u.Library().Kind, u.Library().Name, p.Namespace(u.Library()))
		fmt.Fprintf(&b, "package %s;\n", PackageName(p.Namespace(u.Library())))
		for _, imp := range u.ImportedLibraries() {
			loc := importPath(p, imp)
			fmt.Fprintf(&b, "\nimport %q;", loc)
		}
		if len(u.ImportedLibraries()) > 0 {
			b.WriteString("\n")
		}
		for _, f := range frags[i] {
			b.WriteString("\n")
			b.WriteString(f.(string))
		}
		if i == 0 && p.Root() != nil {
			out.RootElement = p.Index().ABIETypeName(p.Root())
		}
		out.Files = append(out.Files, gen.OutFile{Name: FileName(u), Data: []byte(b.String())})
	}
	return out, nil
}

// importPath resolves the import statement's path for an imported
// library, honouring the profile's per-namespace override.
func importPath(p *gen.Plan, lib *core.Library) string {
	if override, ok := p.Profile().Import(p.Namespace(lib)); ok {
		return override
	}
	for _, u := range p.Units() {
		if u.Library() == lib {
			return FileName(u)
		}
	}
	return ""
}

// typeRef names a message/enum from the perspective of a unit:
// same-package types are bare, foreign ones package-qualified.
func typeRef(p *gen.Plan, from *gen.Unit, lib *core.Library, name string) string {
	if lib == from.Library() {
		return name
	}
	return PackageName(p.Namespace(lib)) + "." + name
}

// fieldDecl renders one field with its plan-order number.
func fieldDecl(b *strings.Builder, typ, name string, card core.Cardinality, number int) {
	label := ""
	if card.Upper == core.Unbounded || card.Upper > 1 {
		label = "repeated "
	} else if card.Lower == 0 {
		label = "optional "
	}
	fmt.Fprintf(b, "  %s%s %s = %d;\n", label, typ, fieldName(name), number)
}

// emitABIE renders an ABIE message: BBIE fields first, then ASBIEs,
// numbered from 1 in declaration order.
func emitABIE(p *gen.Plan, u *gen.Unit, abie *core.ABIE) string {
	ix := p.Index()
	var b strings.Builder
	comment(&b, p, abie.Definition)
	fmt.Fprintf(&b, "message %s {\n", ix.ABIETypeName(abie))
	num := 0
	for _, bbie := range abie.BBIEs {
		num++
		ref := typeRef(p, u, bbie.Type.DataTypeLibrary(), ix.DataTypeName(bbie.Type))
		fieldDecl(&b, ref, ix.BBIEElementName(bbie), bbie.Card, num)
	}
	for _, asbie := range abie.ASBIEs {
		num++
		ref := typeRef(p, u, asbie.Target.Library(), ix.ABIETypeName(asbie.Target))
		fieldDecl(&b, ref, ix.ASBIEElementName(asbie), asbie.Card, num)
	}
	b.WriteString("}\n")
	return b.String()
}

// emitQDT renders a qualified data type message.
func emitQDT(p *gen.Plan, u *gen.Unit, qdt *core.QDT) string {
	var base string
	switch t := qdt.Content.Type.(type) {
	case *core.ENUM:
		base = typeRef(p, u, t.Library(), p.Index().ENUMTypeName(t))
	case *core.PRIM:
		if qdt.BasedOn != nil {
			base = scalar(ndr.ContentBuiltin(qdt.BasedOn))
		} else {
			base = scalar(ndr.XSDBuiltin(t))
		}
	}
	if override, ok := p.Datatype(qdt.Name); ok {
		base = scalar(override)
	}
	return valueMessage(p, u, p.Index().DataTypeName(qdt), qdt.Definition, base, qdt.Sups)
}

// valueMessage renders the proto counterpart of XSD simpleContent: the
// content component as field 1 named "value", supplementary components
// as the following fields.
func valueMessage(p *gen.Plan, u *gen.Unit, name, definition, contentType string, sups []core.SupplementaryComponent) string {
	ix := p.Index()
	var b strings.Builder
	comment(&b, p, definition)
	fmt.Fprintf(&b, "message %s {\n", name)
	fmt.Fprintf(&b, "  %s value = 1;\n", contentType)
	for i := range sups {
		sup := &sups[i]
		typ := ""
		if en, ok := sup.Type.(*core.ENUM); ok {
			typ = typeRef(p, u, en.Library(), ix.ENUMTypeName(en))
		} else if prim, ok := sup.Type.(*core.PRIM); ok {
			typ = scalar(ndr.XSDBuiltin(prim))
		} else {
			typ = "string"
		}
		fieldDecl(&b, typ, ix.SupAttributeName(sup), sup.Card, i+2)
	}
	b.WriteString("}\n")
	return b.String()
}

// emitENUM renders a proto enum. proto3 requires a zero value; CCTS
// code lists have no natural one, so an UNSPECIFIED sentinel leads and
// the modeled literals number from 1 in declaration order.
func emitENUM(p *gen.Plan, e *core.ENUM) string {
	name := p.Index().ENUMTypeName(e)
	prefix := constCase(name)
	var b strings.Builder
	comment(&b, p, e.Definition)
	fmt.Fprintf(&b, "enum %s {\n", name)
	fmt.Fprintf(&b, "  %s_UNSPECIFIED = 0;\n", prefix)
	for i, l := range e.Literals {
		fmt.Fprintf(&b, "  %s_%s = %d;\n", prefix, constCase(l.Name), i+1)
	}
	b.WriteString("}\n")
	return b.String()
}

// comment renders a leading comment when annotations are on.
func comment(b *strings.Builder, p *gen.Plan, text string) {
	if !p.Annotate() || text == "" {
		return
	}
	for _, line := range strings.Split(text, "\n") {
		fmt.Fprintf(b, "// %s\n", line)
	}
}

// fieldName lowers a CamelCase element name to snake_case.
func fieldName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			if i > 0 {
				prev := name[i-1]
				// Break at lower/digit→upper boundaries and at the end of
				// an acronym run ("VATNumber" -> vat_number).
				acronymEnd := prev >= 'A' && prev <= 'Z' &&
					i+1 < len(name) && name[i+1] >= 'a' && name[i+1] <= 'z'
				if prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9' || acronymEnd {
					b.WriteByte('_')
				}
			}
			b.WriteRune(r - 'A' + 'a')
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" {
		return "field"
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "f" + s
	}
	return s
}

// constCase uppercases a name into SCREAMING_SNAKE for enum values.
func constCase(name string) string {
	return strings.ToUpper(fieldName(name))
}

// scalarOf resolves a datatype's scalar type, honouring the profile
// override for the named CDT/QDT.
func scalarOf(p *gen.Plan, typeName, xsdBuiltin string) string {
	if override, ok := p.Datatype(typeName); ok {
		return scalar(override)
	}
	return scalar(xsdBuiltin)
}

// scalar maps an XSD built-in name to a proto3 scalar. xsd:decimal
// maps to string: proto3 has no arbitrary-precision numeric type and
// monetary amounts must not round-trip through floating point.
// Profile overrides may give a bare proto type, which passes through.
func scalar(name string) string {
	switch name {
	case "xsd:string", "xsd:token", "xsd:normalizedString", "xsd:anyURI",
		"xsd:decimal", "xsd:date", "xsd:time", "xsd:dateTime", "xsd:duration":
		return "string"
	case "xsd:double":
		return "double"
	case "xsd:float":
		return "float"
	case "xsd:integer", "xsd:long":
		return "int64"
	case "xsd:int", "xsd:short":
		return "int32"
	case "xsd:boolean":
		return "bool"
	case "xsd:base64Binary":
		return "bytes"
	default:
		if !strings.HasPrefix(name, "xsd:") && name != "" {
			return name
		}
		return "string"
	}
}
