package protogen

import (
	"strconv"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
)

func generateEUOrder(t *testing.T) *gen.Output {
	t.Helper()
	f, err := fixture.BuildPurchaseOrder()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gen.PlanDocument(f.EUDocLib, "EU_Order", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.ExecuteBackend(Backend{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateProto3(t *testing.T) {
	out := generateEUOrder(t)
	if out.Target != "proto" || out.ContentType != ContentType {
		t.Errorf("target/content-type = %q/%q", out.Target, out.ContentType)
	}
	declaredBy := map[string]string{}
	for _, file := range out.Files {
		text := string(file.Data)
		if !strings.HasSuffix(file.Name, ".proto") {
			t.Errorf("file %q does not use the .proto extension", file.Name)
		}
		if !strings.HasPrefix(text, `syntax = "proto3";`) {
			t.Errorf("%s: missing proto3 syntax declaration", file.Name)
		}
		if !strings.Contains(text, "\npackage ") {
			t.Errorf("%s: missing package declaration", file.Name)
		}
		for _, line := range strings.Split(text, "\n") {
			line = strings.TrimSpace(line)
			for _, kw := range []string{"message ", "enum "} {
				if name, ok := strings.CutPrefix(line, kw); ok {
					name = strings.TrimSuffix(name, " {")
					if prev, dup := declaredBy[name]; dup {
						t.Errorf("type %s declared in both %s and %s", name, prev, file.Name)
					}
					declaredBy[name] = file.Name
				}
			}
		}
	}
	if len(declaredBy) == 0 {
		t.Fatal("no messages or enums generated")
	}
	// Every import must name a file in the generated set.
	inSet := map[string]bool{}
	for _, f := range out.Files {
		inSet[f.Name] = true
	}
	for _, file := range out.Files {
		for _, line := range strings.Split(string(file.Data), "\n") {
			if imp, ok := strings.CutPrefix(strings.TrimSpace(line), `import "`); ok {
				imp = strings.TrimSuffix(imp, `";`)
				if !inSet[imp] {
					t.Errorf("%s imports %q, which is not in the generated set", file.Name, imp)
				}
			}
		}
	}
}

// TestFieldNumbersStable pins deterministic field numbering: field
// numbers follow declaration order, starting at 1, without gaps.
func TestFieldNumbersStable(t *testing.T) {
	out := generateEUOrder(t)
	primary := string(out.Files[0].Data)
	start := strings.Index(primary, "message EU_OrderType {")
	if start < 0 {
		t.Fatalf("EU_OrderType message missing:\n%s", primary)
	}
	body := primary[start:]
	body = body[:strings.Index(body, "}")]
	want := 1
	for _, line := range strings.Split(body, "\n") {
		eq := strings.Index(line, "= ")
		if eq < 0 {
			continue
		}
		num := strings.TrimSuffix(strings.TrimSpace(line[eq+2:]), ";")
		if num != strconv.Itoa(want) {
			t.Fatalf("field number %s, want %d in line %q", num, want, line)
		}
		want++
	}
	if want == 1 {
		t.Fatal("no fields found in EU_OrderType")
	}
}

func TestPackageName(t *testing.T) {
	cases := map[string]string{
		"urn:trade:eu:order": "urn.trade.eu.order",
		"http://example.com/ns#frag": "http.example.com.ns.frag",
		"urn:0abc:x": "urn.p0abc.x",
	}
	for in, want := range cases {
		if got := PackageName(in); got != want {
			t.Errorf("PackageName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFieldName(t *testing.T) {
	cases := map[string]string{
		"IssueDate":          "issue_date",
		"VATNumber":          "vat_number",
		"BuyerEU_Party":      "buyer_eu_party",
		"HazardCode":         "hazard_code",
	}
	for in, want := range cases {
		if got := fieldName(in); got != want {
			t.Errorf("fieldName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEnumShape(t *testing.T) {
	out := generateEUOrder(t)
	var enumFile string
	for _, f := range out.Files {
		if strings.Contains(string(f.Data), "enum EUCurrency_CodeType {") {
			enumFile = string(f.Data)
		}
	}
	if enumFile == "" {
		t.Fatal("EUCurrency_Code enum not generated")
	}
	if !strings.Contains(enumFile, "_UNSPECIFIED = 0;") {
		t.Error("enum lacks the proto3-required zero value")
	}
	for _, lit := range []string{"EUR", "SEK", "DKK"} {
		if !strings.Contains(enumFile, lit) {
			t.Errorf("enum literal %s missing", lit)
		}
	}
}

func TestScalarMapping(t *testing.T) {
	cases := map[string]string{
		"xsd:string":  "string",
		"xsd:decimal": "string", // precision-preserving, documented caveat
		"xsd:double":  "double",
		"xsd:boolean": "bool",
		"xsd:integer": "int64",
		"int32":       "int32", // profile override passthrough
	}
	for in, want := range cases {
		if got := scalar(in); got != want {
			t.Errorf("scalar(%q) = %q, want %q", in, got, want)
		}
	}
}
