// Package faultio provides failing and truncating I/O wrappers for the
// fault-injection test harness. Production code never imports it; tests
// use it to prove that an injected write failure, a truncated input
// stream or a short write surfaces as a structured error — no crash, no
// leaked temp file, no hung worker.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error reported by the wrappers.
var ErrInjected = errors.New("faultio: injected fault")

// Writer passes writes through to W until Limit bytes have been
// written, then fails every subsequent write with Err (ErrInjected when
// nil). A Limit of 0 fails the first write.
type Writer struct {
	W     io.Writer
	Limit int64
	Err   error

	n int64
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	fail := w.Err
	if fail == nil {
		fail = ErrInjected
	}
	if w.n >= w.Limit {
		return 0, fail
	}
	if rest := w.Limit - w.n; int64(len(p)) > rest {
		// Short write: part of the data lands before the fault.
		n, err := w.W.Write(p[:rest])
		w.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, fail
	}
	n, err := w.W.Write(p)
	w.n += int64(n)
	return n, err
}

// Written returns the number of bytes that reached the underlying
// writer.
func (w *Writer) Written() int64 { return w.n }

// Reader passes reads through from R until Limit bytes have been
// served, then fails with Err (io.ErrUnexpectedEOF when nil) —
// simulating a connection dropped mid-transfer.
type Reader struct {
	R     io.Reader
	Limit int64
	Err   error

	n int64
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	fail := r.Err
	if fail == nil {
		fail = io.ErrUnexpectedEOF
	}
	if r.n >= r.Limit {
		return 0, fail
	}
	if rest := r.Limit - r.n; int64(len(p)) > rest {
		p = p[:rest]
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	return n, err
}
