// Package faultio provides failing and truncating I/O wrappers for the
// fault-injection test harness. Production code never imports it; tests
// use it to prove that an injected write failure, a truncated input
// stream or a short write surfaces as a structured error — no crash, no
// leaked temp file, no hung worker.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the default error reported by the wrappers.
var ErrInjected = errors.New("faultio: injected fault")

// ErrNoSpace mimics a full filesystem: errors.Is(ErrNoSpace,
// syscall.ENOSPC) holds, so production code that classifies disk
// exhaustion (internal/health) treats the injected fault exactly like
// the real one.
var ErrNoSpace = fmt.Errorf("faultio: injected disk full: %w", syscall.ENOSPC)

// Writer passes writes through to W until Limit bytes have been
// written, then fails every subsequent write with Err (ErrInjected when
// nil). A Limit of 0 fails the first write.
type Writer struct {
	W     io.Writer
	Limit int64
	Err   error

	n int64
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	fail := w.Err
	if fail == nil {
		fail = ErrInjected
	}
	if w.n >= w.Limit {
		return 0, fail
	}
	if rest := w.Limit - w.n; int64(len(p)) > rest {
		// Short write: part of the data lands before the fault.
		n, err := w.W.Write(p[:rest])
		w.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, fail
	}
	n, err := w.W.Write(p)
	w.n += int64(n)
	return n, err
}

// Written returns the number of bytes that reached the underlying
// writer.
func (w *Writer) Written() int64 { return w.n }

// Reader passes reads through from R until Limit bytes have been
// served, then fails with Err (io.ErrUnexpectedEOF when nil) —
// simulating a connection dropped mid-transfer.
type Reader struct {
	R     io.Reader
	Limit int64
	Err   error

	n int64
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	fail := r.Err
	if fail == nil {
		fail = io.ErrUnexpectedEOF
	}
	if r.n >= r.Limit {
		return 0, fail
	}
	if rest := r.Limit - r.n; int64(len(p)) > rest {
		p = p[:rest]
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	return n, err
}

// AfterN passes the first N Write calls through to W, then fails every
// later call with Err (ErrInjected when nil) — the "the disk filled up
// partway through the batch" shape, counted in operations rather than
// bytes.
type AfterN struct {
	W   io.Writer
	N   int
	Err error

	calls int
}

// Write implements io.Writer.
func (w *AfterN) Write(p []byte) (int, error) {
	if w.calls >= w.N {
		if w.Err != nil {
			return 0, w.Err
		}
		return 0, ErrInjected
	}
	w.calls++
	return w.W.Write(p)
}

// Latency delegates to W after sleeping D before every write — a slow
// disk or saturated volume for tests that exercise queue-wait shedding
// and deadline propagation.
type Latency struct {
	W io.Writer
	D time.Duration
}

// Write implements io.Writer.
func (w *Latency) Write(p []byte) (int, error) {
	time.Sleep(w.D)
	return w.W.Write(p)
}

// Injector is a switchable fault source, safe for concurrent use: a
// chaos test hands Wrap to many writers up front and flips the fault on
// and off mid-run with Set and Clear. While no fault is set, wrapped
// writers pass through untouched.
type Injector struct {
	mu  sync.Mutex
	err error
}

// Set makes every wrapped writer fail with err from now on.
func (i *Injector) Set(err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.err = err
}

// Clear restores pass-through behavior.
func (i *Injector) Clear() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.err = nil
}

// Err returns the currently injected fault, or nil. It doubles as a
// probe function: a health probe wired to Err sees exactly the fault
// the wrapped writers see.
func (i *Injector) Err() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.err
}

// Wrap interposes the injector on w. The fault state is checked at
// every Write, so a single long-lived wrapped writer observes Set and
// Clear immediately.
func (i *Injector) Wrap(w io.Writer) io.Writer {
	return &injectedWriter{inj: i, w: w}
}

type injectedWriter struct {
	inj *Injector
	w   io.Writer
}

func (w *injectedWriter) Write(p []byte) (int, error) {
	if err := w.inj.Err(); err != nil {
		return 0, err
	}
	return w.w.Write(p)
}
