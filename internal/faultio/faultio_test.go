package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestWriterFailsAfterLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Limit: 5}
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: n=%d err=%v, want 5, ErrInjected", n, err)
	}
	if buf.String() != "hello" {
		t.Errorf("short write delivered %q, want %q", buf.String(), "hello")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("subsequent write: %v, want ErrInjected", err)
	}
	if w.Written() != 5 {
		t.Errorf("Written() = %d, want 5", w.Written())
	}
}

func TestWriterCustomError(t *testing.T) {
	boom := errors.New("boom")
	w := &Writer{W: io.Discard, Limit: 0, Err: boom}
	if _, err := w.Write([]byte("a")); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestReaderTruncates(t *testing.T) {
	r := &Reader{R: strings.NewReader("hello world"), Limit: 5}
	got, err := io.ReadAll(r)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAll error %v, want ErrUnexpectedEOF", err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q before fault, want %q", got, "hello")
	}
}

func TestReaderCustomError(t *testing.T) {
	boom := errors.New("line dropped")
	r := &Reader{R: strings.NewReader("abc"), Limit: 1, Err: boom}
	if _, err := io.ReadAll(r); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestErrNoSpaceClassifiesAsENOSPC(t *testing.T) {
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("ErrNoSpace does not unwrap to syscall.ENOSPC")
	}
}

func TestAfterNFailsByCallCount(t *testing.T) {
	var buf bytes.Buffer
	w := &AfterN{W: &buf, N: 2}
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := w.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: %v, want ErrInjected", err)
	}
	if buf.String() != "okok" {
		t.Errorf("delivered %q, want %q", buf.String(), "okok")
	}
	boom := errors.New("boom")
	w2 := &AfterN{W: io.Discard, N: 0, Err: boom}
	if _, err := w2.Write([]byte("x")); !errors.Is(err, boom) {
		t.Errorf("AfterN custom error: %v", err)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	var buf bytes.Buffer
	w := &Latency{W: &buf, D: time.Millisecond}
	start := time.Now()
	if _, err := w.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("write returned after %v, want >= 1ms", elapsed)
	}
	if buf.String() != "slow" {
		t.Errorf("delivered %q", buf.String())
	}
}

func TestInjectorFlipsMidStream(t *testing.T) {
	inj := &Injector{}
	var buf bytes.Buffer
	w := inj.Wrap(&buf)

	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatalf("clear injector failed a write: %v", err)
	}
	inj.Set(ErrNoSpace)
	if _, err := w.Write([]byte("b")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("set injector: %v, want ENOSPC", err)
	}
	if err := inj.Err(); !errors.Is(err, ErrNoSpace) {
		t.Errorf("Err() = %v", err)
	}
	inj.Clear()
	if _, err := w.Write([]byte("c")); err != nil {
		t.Fatalf("cleared injector failed a write: %v", err)
	}
	if buf.String() != "ac" {
		t.Errorf("delivered %q, want %q", buf.String(), "ac")
	}
}

func TestInjectorConcurrentFlips(t *testing.T) {
	inj := &Injector{}
	w := inj.Wrap(io.Discard)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			inj.Set(ErrInjected)
			inj.Clear()
		}
	}()
	for i := 0; i < 1000; i++ {
		w.Write([]byte("x")) // must not race; error is expected sometimes
	}
	<-done
}
