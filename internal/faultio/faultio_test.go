package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWriterFailsAfterLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Limit: 5}
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: n=%d err=%v, want 5, ErrInjected", n, err)
	}
	if buf.String() != "hello" {
		t.Errorf("short write delivered %q, want %q", buf.String(), "hello")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("subsequent write: %v, want ErrInjected", err)
	}
	if w.Written() != 5 {
		t.Errorf("Written() = %d, want 5", w.Written())
	}
}

func TestWriterCustomError(t *testing.T) {
	boom := errors.New("boom")
	w := &Writer{W: io.Discard, Limit: 0, Err: boom}
	if _, err := w.Write([]byte("a")); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestReaderTruncates(t *testing.T) {
	r := &Reader{R: strings.NewReader("hello world"), Limit: 5}
	got, err := io.ReadAll(r)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAll error %v, want ErrUnexpectedEOF", err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q before fault, want %q", got, "hello")
	}
}

func TestReaderCustomError(t *testing.T) {
	boom := errors.New("line dropped")
	r := &Reader{R: strings.NewReader("abc"), Limit: 1, Err: boom}
	if _, err := io.ReadAll(r); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}
