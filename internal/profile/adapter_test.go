package profile

import (
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/ocl"
	"github.com/go-ccts/ccts/internal/uml"
)

// evalProp navigates one property of an adapted element.
func evalProp(t *testing.T, obj ocl.Object, name string) ocl.Value {
	t.Helper()
	v, ok := obj.OCLProperty(name)
	if !ok {
		t.Fatalf("%s has no property %q", obj.OCLTypeName(), name)
	}
	return v
}

func TestAdapterProperties(t *testing.T) {
	f := fixture.MustBuildHoardingPermit()
	um := Render(f.Model)

	// Package adapter.
	biz := um.FindPackage("EasyBiz")
	pkgObj := Adapt(um, biz)
	if pkgObj.OCLTypeName() != "Package" {
		t.Errorf("type name = %q", pkgObj.OCLTypeName())
	}
	if s, _ := evalProp(t, pkgObj, "name").AsString(); s != "EasyBiz" {
		t.Errorf("name = %q", s)
	}
	if s, _ := evalProp(t, pkgObj, "stereotype").AsString(); s != StBusinessLibrary {
		t.Errorf("stereotype = %q", s)
	}
	if c, _ := evalProp(t, pkgObj, "packages").AsColl(); len(c) != 8 {
		t.Errorf("packages = %d", len(c))
	}
	doc := um.FindPackage("EB005-HoardingPermit")
	docObj := Adapt(um, doc)
	if c, _ := evalProp(t, docObj, "classes").AsColl(); len(c) != 2 {
		t.Errorf("classes = %d", len(c))
	}
	if c, _ := evalProp(t, docObj, "associations").AsColl(); len(c) != 4 {
		t.Errorf("associations = %d", len(c))
	}
	if c, _ := evalProp(t, docObj, "dependencies").AsColl(); len(c) != 2 {
		t.Errorf("dependencies = %d", len(c))
	}
	enums := um.FindPackage("EnumerationTypes")
	if c, _ := evalProp(t, Adapt(um, enums), "enumerations").AsColl(); len(c) != 2 {
		t.Errorf("enumerations = %d", len(c))
	}

	// Class adapter.
	hp := um.FindClass("HoardingPermit")
	clsObj := Adapt(um, hp)
	if clsObj.OCLTypeName() != "Class" {
		t.Errorf("type name = %q", clsObj.OCLTypeName())
	}
	if v, _ := evalProp(t, clsObj, "package").AsObject(); v == nil {
		t.Error("package property nil")
	}
	if c, _ := evalProp(t, clsObj, "basedOn").AsColl(); len(c) != 1 {
		t.Errorf("basedOn = %d", len(c))
	}
	if c, _ := evalProp(t, clsObj, "associations").AsColl(); len(c) != 4 {
		t.Errorf("class associations = %d", len(c))
	}
	detached := &uml.Class{Name: "Detached"}
	if v, _ := Adapt(um, detached).(*classObj).OCLProperty("package"); !v.IsNull() {
		t.Error("detached class package should be null")
	}

	// Attribute adapter.
	attr := hp.Attributes[0]
	attrObj := Adapt(um, attr)
	if attrObj.OCLTypeName() != "Attribute" {
		t.Errorf("type name = %q", attrObj.OCLTypeName())
	}
	if s, _ := evalProp(t, attrObj, "typeName").AsString(); s != "Text" {
		t.Errorf("typeName = %q", s)
	}
	if v, _ := evalProp(t, attrObj, "type").AsObject(); v == nil {
		t.Error("type not resolved")
	}
	if n, _ := evalProp(t, attrObj, "lower").AsInt(); n != 0 {
		t.Errorf("lower = %d", n)
	}
	if n, _ := evalProp(t, attrObj, "upper").AsInt(); n != 1 {
		t.Errorf("upper = %d", n)
	}
	if v, _ := evalProp(t, attrObj, "owner").AsObject(); v == nil {
		t.Error("owner nil")
	}
	dangling := &uml.Attribute{Name: "X", TypeName: "NoSuchType"}
	if v, _ := Adapt(um, dangling).(*attributeObj).OCLProperty("type"); !v.IsNull() {
		t.Error("unresolvable type should be null")
	}
	if v, _ := Adapt(um, dangling).(*attributeObj).OCLProperty("owner"); !v.IsNull() {
		t.Error("detached attribute owner should be null")
	}

	// Association adapter.
	assoc := um.AssociationsFrom(hp)[0]
	asObj := Adapt(um, assoc)
	if asObj.OCLTypeName() != "Association" {
		t.Errorf("type name = %q", asObj.OCLTypeName())
	}
	if s, _ := evalProp(t, asObj, "role").AsString(); s != "Included" {
		t.Errorf("role = %q", s)
	}
	if s, _ := evalProp(t, asObj, "kind").AsString(); s != "composite" {
		t.Errorf("kind = %q", s)
	}
	if n, _ := evalProp(t, asObj, "upper").AsInt(); n != uml.Unbounded {
		t.Errorf("upper = %d", n)
	}
	if v, _ := evalProp(t, asObj, "source").AsObject(); v == nil {
		t.Error("source nil")
	}
	if v, _ := evalProp(t, asObj, "target").AsObject(); v == nil {
		t.Error("target nil")
	}
	empty := &uml.Association{}
	emptyObj := Adapt(um, empty).(*associationObj)
	if v, _ := emptyObj.OCLProperty("source"); !v.IsNull() {
		t.Error("nil source should be null")
	}
	if v, _ := emptyObj.OCLProperty("target"); !v.IsNull() {
		t.Error("nil target should be null")
	}
	if _, ok := emptyObj.OCLProperty("bogus"); ok {
		t.Error("unknown association property resolved")
	}

	// Dependency adapter.
	dep := doc.Dependencies[0]
	depObj := Adapt(um, dep)
	if depObj.OCLTypeName() != "Dependency" {
		t.Errorf("type name = %q", depObj.OCLTypeName())
	}
	if v, _ := evalProp(t, depObj, "client").AsObject(); v == nil {
		t.Error("client nil")
	}
	if v, _ := evalProp(t, depObj, "supplier").AsObject(); v == nil {
		t.Error("supplier nil")
	}
	if _, ok := depObj.OCLProperty("bogus"); ok {
		t.Error("unknown dependency property resolved")
	}

	// Enumeration adapter.
	country := um.FindEnumeration("CountryType_Code")
	enObj := Adapt(um, country)
	if enObj.OCLTypeName() != "Enumeration" {
		t.Errorf("type name = %q", enObj.OCLTypeName())
	}
	lits, _ := evalProp(t, enObj, "literals").AsColl()
	if len(lits) != 3 {
		t.Fatalf("literals = %d", len(lits))
	}
	lit, _ := lits[0].AsObject()
	if lit.OCLTypeName() != "EnumerationLiteral" {
		t.Errorf("literal type = %q", lit.OCLTypeName())
	}
	if v, ok := lit.OCLProperty("name"); !ok {
		t.Error("literal name missing")
	} else if s, _ := v.AsString(); s != "USA" {
		t.Errorf("literal name = %q", s)
	}
	if v, ok := lit.OCLProperty("value"); !ok {
		t.Error("literal value missing")
	} else if s, _ := v.AsString(); s != "United States of America" {
		t.Errorf("literal value = %q", s)
	}
	if _, ok := lit.OCLProperty("bogus"); ok {
		t.Error("unknown literal property resolved")
	}
	if v, _ := evalProp(t, enObj, "package").AsObject(); v == nil {
		t.Error("enumeration package nil")
	}
	detachedEnum := &uml.Enumeration{Name: "X"}
	if v, _ := Adapt(um, detachedEnum).(*enumerationObj).OCLProperty("package"); !v.IsNull() {
		t.Error("detached enumeration package should be null")
	}
}

func TestFindASCCFallbacks(t *testing.T) {
	// findASCC resolves by unique-target fallback when the role was
	// renamed without a basedOnRole tag.
	f := fixture.MustBuildFigure1()
	um := Render(f.Model)
	// Strip the basedOnRole tags the renderer wrote.
	var asbies []*uml.Association
	um.WalkAssociations(func(a *uml.Association) bool {
		if a.Stereotype == StASBIE {
			asbies = append(asbies, a)
		}
		return true
	})
	if len(asbies) != 2 {
		t.Fatalf("asbies = %d", len(asbies))
	}
	for _, a := range asbies {
		delete(a.Tags, TagBasedOnRole)
	}
	// Two ASCCs point at Address, so the fallback is ambiguous and
	// extraction fails.
	if _, err := Extract(um); err == nil {
		t.Error("ambiguous fallback should fail")
	}
}
