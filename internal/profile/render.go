package profile

import (
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

// Render converts a typed CCTS model into its stereotyped UML
// representation: business libraries become BusinessLibrary packages,
// libraries become packages with their kind's stereotype and tagged
// values, ACCs/ABIEs/CDTs/QDTs/PRIMs become stereotyped classes, ENUMs
// become stereotyped enumerations, ASCCs/ASBIEs become stereotyped
// associations and the derivation links become basedOn dependencies —
// exactly the representation of the paper's Figure 4.
func Render(cm *core.Model) *uml.Model {
	um := uml.NewModel(cm.Name)
	r := &renderer{
		accClass:  map[*core.ACC]*uml.Class{},
		abieClass: map[*core.ABIE]*uml.Class{},
		cdtClass:  map[*core.CDT]*uml.Class{},
		qdtClass:  map[*core.QDT]*uml.Class{},
		libPkg:    map[*core.Library]*uml.Package{},
	}

	// Pass 1: packages and classifiers.
	for _, biz := range cm.BusinessLibraries {
		bizPkg := um.AddPackage(biz.Name, StBusinessLibrary)
		bizPkg.Tags = biz.Tags.Clone()
		for _, lib := range biz.Libraries {
			pkg := bizPkg.AddPackage(lib.Name, LibraryStereotype(lib.Kind))
			applyLibraryTags(pkg, lib)
			r.libPkg[lib] = pkg
			r.renderClassifiers(pkg, lib)
		}
	}

	// Pass 2: attributes, associations and dependencies, which may
	// reference classifiers from other libraries.
	for _, biz := range cm.BusinessLibraries {
		for _, lib := range biz.Libraries {
			r.renderMembers(r.libPkg[lib], lib)
		}
	}
	return um
}

type renderer struct {
	accClass  map[*core.ACC]*uml.Class
	abieClass map[*core.ABIE]*uml.Class
	cdtClass  map[*core.CDT]*uml.Class
	qdtClass  map[*core.QDT]*uml.Class
	libPkg    map[*core.Library]*uml.Package
}

func (r *renderer) renderClassifiers(pkg *uml.Package, lib *core.Library) {
	for _, acc := range lib.ACCs {
		c := pkg.AddClass(acc.Name, StACC)
		setDefinition(&c.Tags, acc.Definition)
		r.accClass[acc] = c
	}
	for _, abie := range lib.ABIEs {
		c := pkg.AddClass(abie.Name, StABIE)
		setDefinition(&c.Tags, abie.Definition)
		if abie.Version != "" {
			c.Tags.Set(TagVersionIdentifier, abie.Version)
		}
		if ctx := abie.Context(); !ctx.IsDefault() {
			c.Tags.Set(TagBusinessContext, ctx.String())
		}
		r.abieClass[abie] = c
	}
	for _, cdt := range lib.CDTs {
		c := pkg.AddClass(cdt.Name, StCDT)
		setDefinition(&c.Tags, cdt.Definition)
		r.cdtClass[cdt] = c
	}
	for _, qdt := range lib.QDTs {
		c := pkg.AddClass(qdt.Name, StQDT)
		setDefinition(&c.Tags, qdt.Definition)
		r.qdtClass[qdt] = c
	}
	for _, prim := range lib.PRIMs {
		c := pkg.AddClass(prim.Name, StPRIM)
		setDefinition(&c.Tags, prim.Definition)
	}
	for _, en := range lib.ENUMs {
		e := pkg.AddEnumeration(en.Name, StENUM)
		setDefinition(&e.Tags, en.Definition)
		for _, l := range en.Literals {
			e.AddLiteral(l.Name, l.Value)
		}
	}
}

func setDefinition(tags *uml.TaggedValues, def string) {
	if def != "" {
		tags.Set(TagDefinition, def)
	}
}

func (r *renderer) renderMembers(pkg *uml.Package, lib *core.Library) {
	for _, acc := range lib.ACCs {
		c := r.accClass[acc]
		for _, bcc := range acc.BCCs {
			a := c.AddAttribute(bcc.Name, StBCC, bcc.Type.Name, bcc.Card)
			setDefinition(&a.Tags, bcc.Definition)
		}
		for _, ascc := range acc.ASCCs {
			assoc := &uml.Association{
				Stereotype: StASCC,
				Source:     c,
				Target:     r.accClass[ascc.Target],
				TargetRole: ascc.Role,
				TargetMult: ascc.Card,
				Kind:       ascc.Kind,
			}
			setDefinition(&assoc.Tags, ascc.Definition)
			pkg.AddAssociation(assoc)
		}
	}
	for _, abie := range lib.ABIEs {
		c := r.abieClass[abie]
		for _, bbie := range abie.BBIEs {
			a := c.AddAttribute(bbie.Name, StBBIE, bbie.Type.TypeName(), bbie.Card)
			setDefinition(&a.Tags, bbie.Definition)
			if bbie.BasedOn != nil && bbie.BasedOn.Name != bbie.Name {
				a.Tags.Set(TagBasedOnProperty, bbie.BasedOn.Name)
			}
		}
		for _, asbie := range abie.ASBIEs {
			assoc := &uml.Association{
				Stereotype: StASBIE,
				Source:     c,
				Target:     r.abieClass[asbie.Target],
				TargetRole: asbie.Role,
				TargetMult: asbie.Card,
				Kind:       asbie.Kind,
			}
			setDefinition(&assoc.Tags, asbie.Definition)
			if asbie.BasedOn != nil && asbie.BasedOn.Role != asbie.Role {
				assoc.Tags.Set(TagBasedOnRole, asbie.BasedOn.Role)
			}
			pkg.AddAssociation(assoc)
		}
		if abie.BasedOn != nil {
			pkg.AddDependency(StBasedOn, c, r.accClass[abie.BasedOn])
		}
	}
	for _, cdt := range lib.CDTs {
		c := r.cdtClass[cdt]
		c.AddAttribute(cdt.Content.Name, StCON, cdt.Content.Type.TypeName(), uml.One)
		for _, sup := range cdt.Sups {
			a := c.AddAttribute(sup.Name, StSUP, sup.Type.TypeName(), sup.Card)
			setDefinition(&a.Tags, sup.Definition)
		}
	}
	for _, qdt := range lib.QDTs {
		c := r.qdtClass[qdt]
		c.AddAttribute(qdt.Content.Name, StCON, qdt.Content.Type.TypeName(), uml.One)
		for _, sup := range qdt.Sups {
			a := c.AddAttribute(sup.Name, StSUP, sup.Type.TypeName(), sup.Card)
			setDefinition(&a.Tags, sup.Definition)
		}
		if qdt.BasedOn != nil {
			pkg.AddDependency(StBasedOn, c, r.cdtClass[qdt.BasedOn])
		}
	}
}
