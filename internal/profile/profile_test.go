package profile

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/uml"
)

// TestFigure3ProfileInventory checks the paper's profile composition:
// "eight libraries located in the Management package, six data types
// located in the DataTypes package and nine stereotypes located in the
// Common package".
func TestFigure3ProfileInventory(t *testing.T) {
	inv := ProfileInventory()
	if got := len(inv.Management); got != 8 {
		t.Errorf("Management stereotypes = %d, want 8 (%v)", got, inv.Management)
	}
	if got := len(inv.DataTypes); got != 6 {
		t.Errorf("DataTypes stereotypes = %d, want 6 (%v)", got, inv.DataTypes)
	}
	if got := len(inv.Common); got != 9 {
		t.Errorf("Common stereotypes = %d, want 9 (%v)", got, inv.Common)
	}
	for _, want := range []string{StABIE, StACC, StASBIE, StASCC, StBasedOn, StBBIE, StBCC, StBIE, StCC} {
		found := false
		for _, s := range inv.Common {
			if s == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Common missing %q", want)
		}
	}
	for _, tag := range []string{TagBaseURN, TagNamespacePrefix} {
		found := false
		for _, s := range inv.Tags {
			if s == tag {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Tags missing %q", tag)
		}
	}
}

func TestLibraryStereotypeMapping(t *testing.T) {
	for k := core.KindCCLibrary; k <= core.KindDOCLibrary; k++ {
		st := LibraryStereotype(k)
		if st == "" {
			t.Errorf("no stereotype for %v", k)
			continue
		}
		back, ok := KindForStereotype(st)
		if !ok || back != k {
			t.Errorf("round trip %v via %q failed", k, st)
		}
		if !IsLibraryStereotype(st) {
			t.Errorf("IsLibraryStereotype(%q) = false", st)
		}
	}
	if IsLibraryStereotype(StBusinessLibrary) {
		t.Error("BusinessLibrary is not an element-containing library")
	}
	if _, ok := KindForStereotype("ACC"); ok {
		t.Error("ACC is not a library stereotype")
	}
}

func renderHoardingPermit(t *testing.T) (*fixture.HoardingPermit, *uml.Model) {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	return f, Render(f.Model)
}

func TestRenderStructure(t *testing.T) {
	f, um := renderHoardingPermit(t)

	if um.Name != f.Model.Name {
		t.Errorf("model name = %q", um.Name)
	}
	biz := um.FindPackage("EasyBiz")
	if biz == nil || biz.Stereotype != StBusinessLibrary {
		t.Fatalf("EasyBiz package = %v", biz)
	}
	// Seven libraries: PRIM, CDT, ENUM, QDT, CC, 2x BIE, DOC = 8 actually.
	if got := len(biz.Packages); got != 8 {
		t.Errorf("library packages = %d, want 8", got)
	}
	doc := um.FindPackage("EB005-HoardingPermit")
	if doc == nil || doc.Stereotype != StDOCLibrary {
		t.Fatalf("DOC package missing")
	}
	if doc.Tags.Get(TagBaseURN) != "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit" {
		t.Errorf("DOC baseURN = %q", doc.Tags.Get(TagBaseURN))
	}
	if doc.Tags.Get(TagVersionIdentifier) != "0.4" {
		t.Errorf("DOC version = %q", doc.Tags.Get(TagVersionIdentifier))
	}
	common := um.FindPackage("CommonAggregates")
	if common.Tags.Get(TagNamespacePrefix) != "commonAggregates" {
		t.Errorf("CommonAggregates prefix tag = %q", common.Tags.Get(TagNamespacePrefix))
	}

	hp := um.FindClass("HoardingPermit")
	if hp == nil || hp.Stereotype != StABIE {
		t.Fatalf("HoardingPermit class = %v", hp)
	}
	if got := len(hp.Attributes); got != 4 {
		t.Errorf("HoardingPermit attributes = %d, want 4", got)
	}
	asbies := um.AssociationsFrom(hp)
	if got := len(asbies); got != 4 {
		t.Fatalf("HoardingPermit ASBIEs = %d, want 4", got)
	}
	wantRoles := []string{"Included", "Current", "Included", "Billing"}
	for i, a := range asbies {
		if a.TargetRole != wantRoles[i] {
			t.Errorf("ASBIE %d role = %q, want %q", i, a.TargetRole, wantRoles[i])
		}
		if a.Stereotype != StASBIE {
			t.Errorf("ASBIE %d stereotype = %q", i, a.Stereotype)
		}
	}
	// basedOn dependency from HoardingPermit to Permit ACC.
	deps := um.DependenciesFrom(hp)
	if len(deps) != 1 || deps[0].Supplier.ClassifierName() != "Permit" {
		t.Errorf("HoardingPermit basedOn = %v", deps)
	}

	// Shared aggregation rendered with the right kind.
	pid := um.FindClass("Person_Identification")
	var assigned *uml.Association
	for _, a := range um.AssociationsFrom(pid) {
		if a.TargetRole == "Assigned" {
			assigned = a
		}
	}
	if assigned == nil || assigned.Kind != uml.AggregationShared {
		t.Errorf("Assigned aggregation kind = %v", assigned)
	}

	// QDT with enum content.
	country := um.FindClass("CountryType")
	if country == nil || country.Stereotype != StQDT {
		t.Fatalf("CountryType class = %v", country)
	}
	cons := country.AttributesByStereotype(StCON)
	if len(cons) != 1 || cons[0].TypeName != "CountryType_Code" {
		t.Errorf("CountryType CON = %v", cons)
	}
	if deps := um.DependenciesFrom(country); len(deps) != 1 || deps[0].Supplier.ClassifierName() != "Code" {
		t.Errorf("CountryType basedOn = %v", deps)
	}

	// Renamed BBIE records its underlying BCC. (Qualified name: the model
	// also contains the ACC named Address.)
	addr := um.FindClass("EasyBiz::CommonAggregates::Address")
	var countryName *uml.Attribute
	for _, a := range addr.Attributes {
		if a.Name == "CountryName" {
			countryName = a
		}
	}
	if countryName == nil || countryName.Tags.Get(TagBasedOnProperty) != "Country" {
		t.Errorf("CountryName basedOnProperty tag = %v", countryName)
	}
}

func TestRenderedModelSatisfiesConstraints(t *testing.T) {
	_, um := renderHoardingPermit(t)
	violations := EvaluateConstraints(um)
	for _, v := range violations {
		t.Errorf("unexpected violation: %s", v)
	}
}

func TestFigure1RoundTrip(t *testing.T) {
	f, err := fixture.BuildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	um := Render(f.Model)
	if vs := EvaluateConstraints(um); len(vs) != 0 {
		t.Fatalf("figure 1 render violates constraints: %v", vs)
	}
	back, err := Extract(um)
	if err != nil {
		t.Fatal(err)
	}
	person := back.FindACC("Person")
	if person == nil {
		t.Fatal("Person lost in round trip")
	}
	wantCC := []string{
		"Person (ACC)",
		"Person.DateofBirth (BCC)",
		"Person.FirstName (BCC)",
		"Person.Private.Address (ASCC)",
		"Person.Work.Address (ASCC)",
	}
	got := person.EntitySet()
	if len(got) != len(wantCC) {
		t.Fatalf("entity set = %v", got)
	}
	for i := range wantCC {
		if got[i] != wantCC[i] {
			t.Errorf("entity %d = %q, want %q", i, got[i], wantCC[i])
		}
	}
	usPerson := back.FindABIE("US_Person")
	if usPerson == nil {
		t.Fatal("US_Person lost in round trip")
	}
	if len(usPerson.ASBIEs) != 2 || usPerson.ASBIEs[0].Role != "US_Private" {
		t.Errorf("US_Person ASBIEs = %v", usPerson.EntitySet())
	}
	// The renamed ASBIE still resolves to its ASCC.
	if usPerson.ASBIEs[0].BasedOn == nil || usPerson.ASBIEs[0].BasedOn.Role != "Private" {
		t.Error("US_Private basedOn ASCC lost")
	}
}

func TestHoardingPermitRoundTrip(t *testing.T) {
	f, um := renderHoardingPermit(t)
	back, err := Extract(um)
	if err != nil {
		t.Fatal(err)
	}
	// Compare structural inventories.
	if got, want := len(back.Libraries()), len(f.Model.Libraries()); got != want {
		t.Errorf("libraries = %d, want %d", got, want)
	}
	hp := back.FindABIE("HoardingPermit")
	if hp == nil {
		t.Fatal("HoardingPermit lost")
	}
	if len(hp.BBIEs) != 4 || len(hp.ASBIEs) != 4 {
		t.Errorf("HoardingPermit members = %d BBIEs, %d ASBIEs", len(hp.BBIEs), len(hp.ASBIEs))
	}
	if hp.ASBIEs[2].Target.Name != "Registration" || hp.ASBIEs[2].Card != (core.Cardinality{Lower: 1, Upper: 1}) {
		t.Errorf("IncludedRegistration = %+v", hp.ASBIEs[2])
	}
	if hp.Library().Kind != core.KindDOCLibrary {
		t.Errorf("HoardingPermit library kind = %v", hp.Library().Kind)
	}
	country := back.FindQDT("CountryType")
	if country == nil || country.ContentEnum() == nil || country.ContentEnum().Name != "CountryType_Code" {
		t.Errorf("CountryType round trip = %+v", country)
	}
	if len(country.Sups) != 1 || country.Sups[0].Name != "CodeListName" {
		t.Errorf("CountryType SUPs = %v", country.Sups)
	}
	// Render again and compare constraint cleanliness.
	um2 := Render(back)
	if vs := EvaluateConstraints(um2); len(vs) != 0 {
		t.Errorf("re-render violates constraints: %v", vs)
	}
	s1, s2 := um.Stats(), um2.Stats()
	if s1 != s2 {
		t.Errorf("round-trip stats differ: %+v vs %+v", s1, s2)
	}
}

func violationIDs(vs []Violation) []string {
	ids := make([]string, len(vs))
	for i, v := range vs {
		ids[i] = v.Constraint.ID
	}
	return ids
}

func hasViolation(vs []Violation, id string) bool {
	for _, v := range vs {
		if v.Constraint.ID == id {
			return true
		}
	}
	return false
}

func TestConstraintViolations(t *testing.T) {
	// Build a deliberately broken model and check the rule IDs fired.
	um := uml.NewModel("Broken")
	biz := um.AddPackage("Biz", StBusinessLibrary)

	// CCLibrary without baseURN, containing an ABIE-stereotyped class and
	// an enumeration.
	cc := biz.AddPackage("CC", StCCLibrary)
	abieInCC := cc.AddClass("Rogue", StABIE)
	cc.AddEnumeration("E", StENUM) // no literals -> ENUM-1; in CC -> CCL-3

	// CDT with two CONs and a SUP typed by a missing type.
	cdtLib := biz.AddPackage("CDTs", StCDTLibrary)
	cdtLib.Tags.Set(TagBaseURN, "urn:x:cdt")
	code := cdtLib.AddClass("Code", StCDT)
	code.AddAttribute("Content", StCON, "String", uml.One)
	code.AddAttribute("Content2", StCON, "String", uml.One)
	code.AddAttribute("Bad", StSUP, "Missing", uml.One)

	// PRIM with attributes.
	primLib := biz.AddPackage("Prims", StPRIMLibrary)
	primLib.Tags.Set(TagBaseURN, "urn:x:prim")
	str := primLib.AddClass("String", StPRIM)
	str.AddAttribute("oops", StBCC, "String", uml.One)

	// ABIE without basedOn; ASBIE connecting non-ABIEs; bad dependency.
	bieLib := biz.AddPackage("BIEs", StBIELibrary)
	bieLib.Tags.Set(TagBaseURN, "urn:x:bie")
	lonely := bieLib.AddClass("Lonely", StABIE)
	lonely.AddAttribute("X", StBBIE, "Code", uml.One)
	bieLib.AddAssociation(&uml.Association{
		Stereotype: StASBIE, Source: lonely, Target: abieInCC,
		TargetRole: "", TargetMult: uml.One, Kind: uml.AggregationComposite,
	})
	bieLib.AddDependency(StBasedOn, lonely, code) // ABIE based on CDT -> DEP-1

	vs := EvaluateConstraints(um)
	for _, want := range []string{
		"LIB-1",   // CC library without baseURN
		"CCL-1",   // ABIE class inside CCLibrary
		"CCL-3",   // enumeration inside CCLibrary
		"ENUM-1",  // no literals
		"CDT-1",   // two CONs
		"CDT-4",   // SUP with unresolvable type
		"PRIM-1",  // PRIM with attributes
		"ASBIE-2", // empty role
		"DEP-1",   // ABIE basedOn CDT
	} {
		if !hasViolation(vs, want) {
			t.Errorf("expected violation %s, got %v", want, violationIDs(vs))
		}
	}
	// ABIE-2 fires for Lonely? It has exactly one basedOn but to a CDT.
	if !hasViolation(vs, "ABIE-2") {
		t.Errorf("expected ABIE-2, got %v", violationIDs(vs))
	}
	// Violations render readably.
	for _, v := range vs {
		s := v.String()
		if !strings.Contains(s, v.Constraint.ID) {
			t.Errorf("violation string %q missing rule ID", s)
		}
	}
}

func TestCustomConstraints(t *testing.T) {
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	um := Render(f.Model)

	// A house rule: every ABIE must carry a definition tagged value. The
	// fixture sets none, so every ABIE violates it.
	rule, err := NewConstraint("HOUSE-1", TargetClass, []string{StABIE},
		"every ABIE carries a definition",
		"not self.definition.oclIsUndefined() and self.definition <> ''")
	if err != nil {
		t.Fatal(err)
	}
	vs := EvaluateConstraintsWith(um, []Constraint{rule})
	houseHits := 0
	for _, v := range vs {
		if v.Constraint.ID == "HOUSE-1" {
			houseHits++
		}
	}
	if houseHits != 8 {
		t.Errorf("HOUSE-1 violations = %d, want 8 (one per ABIE)", houseHits)
	}
	// The built-in table stays clean.
	if len(EvaluateConstraints(um)) != 0 {
		t.Error("built-in constraints unexpectedly violated")
	}

	// Bad inputs are rejected.
	if _, err := NewConstraint("", TargetClass, nil, "x", "true"); err == nil {
		t.Error("empty ID must fail")
	}
	if _, err := NewConstraint("X", TargetClass, nil, "x", "(("); err == nil {
		t.Error("bad OCL must fail")
	}
}

func TestConstraintsTableAccessor(t *testing.T) {
	cs := Constraints()
	if len(cs) == 0 {
		t.Fatal("no constraints")
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if c.ID == "" || c.Description == "" || c.Expr == nil {
			t.Errorf("incomplete constraint %+v", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate constraint ID %s", c.ID)
		}
		seen[c.ID] = true
	}
	// Mutating the returned slice must not affect the table.
	cs[0].ID = "MUTATED"
	if Constraints()[0].ID == "MUTATED" {
		t.Error("Constraints() must return a copy")
	}
}

func TestExtractErrors(t *testing.T) {
	// Library outside a business library.
	um := uml.NewModel("X")
	um.AddPackage("Stray", StCCLibrary)
	if _, err := Extract(um); err == nil {
		t.Error("stray library must fail extraction")
	}

	// Non-library package inside a business library.
	um2 := uml.NewModel("Y")
	biz := um2.AddPackage("Biz", StBusinessLibrary)
	biz.AddPackage("Plain", "")
	if _, err := Extract(um2); err == nil {
		t.Error("non-library child must fail extraction")
	}

	// ABIE whose BBIE references a BCC the ACC does not have.
	f, um3 := renderHoardingPermit(t)
	_ = f
	addr := um3.FindClass("EasyBiz::CommonAggregates::Address")
	addr.AddAttribute("Invented", StBBIE, "Text", uml.One)
	if _, err := Extract(um3); err == nil {
		t.Error("invented BBIE must fail extraction")
	}
}

func TestExtractQDTRestrictionChecked(t *testing.T) {
	_, um := renderHoardingPermit(t)
	// Add an invented SUP to a QDT: extraction re-checks the restriction.
	country := um.FindClass("CountryType")
	country.AddAttribute("InventedSup", StSUP, "String", uml.One)
	if _, err := Extract(um); err == nil {
		t.Error("QDT with invented SUP must fail extraction")
	}
}

func TestContextRoundTrip(t *testing.T) {
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewContext().
		With(core.CtxGeopolitical, "AU").
		With(core.CtxOfficialConstraints, "VIC-LocalLaw")
	f.RegistrationBIE.SetContext(ctx)

	um := Render(f.Model)
	cls := um.FindClass("EasyBiz::LocalLawAggregates::Registration")
	if got := cls.Tags.Get(TagBusinessContext); got != ctx.String() {
		t.Errorf("context tag = %q, want %q", got, ctx.String())
	}
	back, err := Extract(um)
	if err != nil {
		t.Fatal(err)
	}
	reg := back.FindABIE("Registration")
	if reg.Context().String() != ctx.String() {
		t.Errorf("context lost: %q", reg.Context())
	}
	// Broken context tags abort extraction.
	cls.Tags.Set(TagBusinessContext, "Weather=sunny")
	if _, err := Extract(um); err == nil {
		t.Error("invalid context tag must fail extraction")
	}
}

func TestAdaptUnknown(t *testing.T) {
	if Adapt(nil, 42) != nil {
		t.Error("Adapt of unsupported element should be nil")
	}
}

func TestSimpleName(t *testing.T) {
	cases := map[string]string{
		"Code":                                "Code",
		"types:draft:coredatatypes:1.0::Code": "Code",
		"A::B::C":                             "C",
	}
	for in, want := range cases {
		if got := simpleName(in); got != want {
			t.Errorf("simpleName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAdapterTaggedValueFallback(t *testing.T) {
	_, um := renderHoardingPermit(t)
	doc := um.FindPackage("EB005-HoardingPermit")
	obj := Adapt(um, doc)
	v, ok := obj.OCLProperty(TagBaseURN)
	if !ok {
		t.Fatal("baseURN tagged value not exposed")
	}
	if s, _ := v.AsString(); s != "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit" {
		t.Errorf("baseURN = %q", s)
	}
	if _, ok := obj.OCLProperty("noSuchTag"); ok {
		t.Error("unknown tag should not resolve")
	}
}
