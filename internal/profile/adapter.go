package profile

import (
	"github.com/go-ccts/ccts/internal/ocl"
	"github.com/go-ccts/ccts/internal/uml"
)

// This file adapts UML model elements to ocl.Object so the profile's
// constraints can navigate them. Exposed properties:
//
//	Package:     name, stereotype, packages, classes, enumerations,
//	             associations, dependencies, <tagged values by name>
//	Class:       name, stereotype, attributes, basedOn (suppliers of
//	             outgoing basedOn dependencies), associations (outgoing),
//	             package, <tagged values>
//	Attribute:   name, stereotype, typeName, type (classifier or null),
//	             lower, upper, owner, <tagged values>
//	Association: stereotype, source, target, role, lower, upper, kind,
//	             <tagged values>
//	Dependency:  stereotype, client, supplier
//	Enumeration: name, stereotype, literals, package, <tagged values>
//	Literal:     name, value

// Adapt wraps any supported UML element as an ocl.Object. The model is
// needed to resolve cross-references (attribute types, basedOn
// dependencies).
func Adapt(m *uml.Model, element any) ocl.Object {
	switch e := element.(type) {
	case *uml.Package:
		return &packageObj{m: m, p: e}
	case *uml.Class:
		return &classObj{m: m, c: e}
	case *uml.Attribute:
		return &attributeObj{m: m, a: e}
	case *uml.Association:
		return &associationObj{m: m, a: e}
	case *uml.Dependency:
		return &dependencyObj{m: m, d: e}
	case *uml.Enumeration:
		return &enumerationObj{m: m, e: e}
	}
	return nil
}

func adaptClassifier(m *uml.Model, c uml.Classifier) ocl.Value {
	switch t := c.(type) {
	case *uml.Class:
		return ocl.Obj(&classObj{m: m, c: t})
	case *uml.Enumeration:
		return ocl.Obj(&enumerationObj{m: m, e: t})
	}
	return ocl.Null()
}

func tagValue(tags uml.TaggedValues, name string) (ocl.Value, bool) {
	if tags.Has(name) {
		return ocl.String(tags.Get(name)), true
	}
	return ocl.Value{}, false
}

type packageObj struct {
	m *uml.Model
	p *uml.Package
}

func (o *packageObj) OCLTypeName() string { return "Package" }

func (o *packageObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "name":
		return ocl.String(o.p.Name), true
	case "stereotype":
		return ocl.String(o.p.Stereotype), true
	case "packages":
		vs := make([]ocl.Value, len(o.p.Packages))
		for i, c := range o.p.Packages {
			vs[i] = ocl.Obj(&packageObj{m: o.m, p: c})
		}
		return ocl.Coll(vs...), true
	case "classes":
		vs := make([]ocl.Value, len(o.p.Classes))
		for i, c := range o.p.Classes {
			vs[i] = ocl.Obj(&classObj{m: o.m, c: c})
		}
		return ocl.Coll(vs...), true
	case "enumerations":
		vs := make([]ocl.Value, len(o.p.Enumerations))
		for i, e := range o.p.Enumerations {
			vs[i] = ocl.Obj(&enumerationObj{m: o.m, e: e})
		}
		return ocl.Coll(vs...), true
	case "associations":
		vs := make([]ocl.Value, len(o.p.Associations))
		for i, a := range o.p.Associations {
			vs[i] = ocl.Obj(&associationObj{m: o.m, a: a})
		}
		return ocl.Coll(vs...), true
	case "dependencies":
		vs := make([]ocl.Value, len(o.p.Dependencies))
		for i, d := range o.p.Dependencies {
			vs[i] = ocl.Obj(&dependencyObj{m: o.m, d: d})
		}
		return ocl.Coll(vs...), true
	}
	return tagValue(o.p.Tags, name)
}

type classObj struct {
	m *uml.Model
	c *uml.Class
}

func (o *classObj) OCLTypeName() string { return "Class" }

func (o *classObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "name":
		return ocl.String(o.c.Name), true
	case "stereotype":
		return ocl.String(o.c.Stereotype), true
	case "attributes":
		vs := make([]ocl.Value, len(o.c.Attributes))
		for i, a := range o.c.Attributes {
			vs[i] = ocl.Obj(&attributeObj{m: o.m, a: a})
		}
		return ocl.Coll(vs...), true
	case "basedOn":
		var vs []ocl.Value
		for _, d := range o.m.DependenciesFrom(o.c) {
			if d.Stereotype == StBasedOn {
				vs = append(vs, adaptClassifier(o.m, d.Supplier))
			}
		}
		return ocl.Coll(vs...), true
	case "associations":
		var vs []ocl.Value
		for _, a := range o.m.AssociationsFrom(o.c) {
			vs = append(vs, ocl.Obj(&associationObj{m: o.m, a: a}))
		}
		return ocl.Coll(vs...), true
	case "package":
		if o.c.Owner() == nil {
			return ocl.Null(), true
		}
		return ocl.Obj(&packageObj{m: o.m, p: o.c.Owner()}), true
	}
	return tagValue(o.c.Tags, name)
}

type attributeObj struct {
	m *uml.Model
	a *uml.Attribute
}

func (o *attributeObj) OCLTypeName() string { return "Attribute" }

func (o *attributeObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "name":
		return ocl.String(o.a.Name), true
	case "stereotype":
		return ocl.String(o.a.Stereotype), true
	case "typeName":
		return ocl.String(o.a.TypeName), true
	case "type":
		t, err := o.m.ResolveType(o.a.TypeName)
		if err != nil {
			return ocl.Null(), true
		}
		return adaptClassifier(o.m, t), true
	case "lower":
		return ocl.Int(o.a.Mult.Lower), true
	case "upper":
		return ocl.Int(o.a.Mult.Upper), true
	case "owner":
		if o.a.Owner() == nil {
			return ocl.Null(), true
		}
		return ocl.Obj(&classObj{m: o.m, c: o.a.Owner()}), true
	}
	return tagValue(o.a.Tags, name)
}

type associationObj struct {
	m *uml.Model
	a *uml.Association
}

func (o *associationObj) OCLTypeName() string { return "Association" }

func (o *associationObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "stereotype":
		return ocl.String(o.a.Stereotype), true
	case "source":
		if o.a.Source == nil {
			return ocl.Null(), true
		}
		return ocl.Obj(&classObj{m: o.m, c: o.a.Source}), true
	case "target":
		if o.a.Target == nil {
			return ocl.Null(), true
		}
		return ocl.Obj(&classObj{m: o.m, c: o.a.Target}), true
	case "role":
		return ocl.String(o.a.TargetRole), true
	case "lower":
		return ocl.Int(o.a.TargetMult.Lower), true
	case "upper":
		return ocl.Int(o.a.TargetMult.Upper), true
	case "kind":
		return ocl.String(o.a.Kind.String()), true
	}
	return tagValue(o.a.Tags, name)
}

type dependencyObj struct {
	m *uml.Model
	d *uml.Dependency
}

func (o *dependencyObj) OCLTypeName() string { return "Dependency" }

func (o *dependencyObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "stereotype":
		return ocl.String(o.d.Stereotype), true
	case "client":
		return adaptClassifier(o.m, o.d.Client), true
	case "supplier":
		return adaptClassifier(o.m, o.d.Supplier), true
	}
	return ocl.Value{}, false
}

type enumerationObj struct {
	m *uml.Model
	e *uml.Enumeration
}

func (o *enumerationObj) OCLTypeName() string { return "Enumeration" }

func (o *enumerationObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "name":
		return ocl.String(o.e.Name), true
	case "stereotype":
		return ocl.String(o.e.Stereotype), true
	case "literals":
		vs := make([]ocl.Value, len(o.e.Literals))
		for i := range o.e.Literals {
			vs[i] = ocl.Obj(&literalObj{l: o.e.Literals[i]})
		}
		return ocl.Coll(vs...), true
	case "package":
		if o.e.Owner() == nil {
			return ocl.Null(), true
		}
		return ocl.Obj(&packageObj{m: o.m, p: o.e.Owner()}), true
	}
	return tagValue(o.e.Tags, name)
}

type literalObj struct {
	l uml.EnumLiteral
}

func (o *literalObj) OCLTypeName() string { return "EnumerationLiteral" }

func (o *literalObj) OCLProperty(name string) (ocl.Value, bool) {
	switch name {
	case "name":
		return ocl.String(o.l.Name), true
	case "value":
		return ocl.String(o.l.Value), true
	}
	return ocl.Value{}, false
}
