// Package profile implements the paper's primary contribution: the UML
// Profile for Core Components (BCSS, candidate 1.0, based on CCTS 2.01).
// It defines the profile's stereotypes and tagged values (Figure 3),
// registers the OCL well-formedness constraints per stereotype, adapts
// UML elements to the OCL evaluator, and converts between the stereotyped
// UML representation (internal/uml) and the typed CCTS model
// (internal/core) in both directions.
package profile

import (
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

// Stereotypes of the Management package (Figure 3, left column): the
// library containers.
const (
	StBIELibrary      = "BIELibrary"
	StBusinessLibrary = "BusinessLibrary"
	StCCLibrary       = "CCLibrary"
	StCDTLibrary      = "CDTLibrary"
	StDOCLibrary      = "DOCLibrary"
	StENUMLibrary     = "ENUMLibrary"
	StPRIMLibrary     = "PRIMLibrary"
	StQDTLibrary      = "QDTLibrary"
)

// Stereotypes of the DataTypes package (Figure 3, middle column).
const (
	StCDT  = "CDT"
	StCON  = "CON"
	StENUM = "ENUM"
	StPRIM = "PRIM"
	StQDT  = "QDT"
	StSUP  = "SUP"
)

// Stereotypes of the Common package (Figure 3, right column). BIE and CC
// are the abstract generalisations the profile declares for OCL
// convenience; they never appear on concrete elements.
const (
	StABIE    = "ABIE"
	StACC     = "ACC"
	StASBIE   = "ASBIE"
	StASCC    = "ASCC"
	StBasedOn = "basedOn"
	StBBIE    = "BBIE"
	StBCC     = "BCC"
	StBIE     = "BIE"
	StCC      = "CC"
)

// ManagementStereotypes lists the 8 library stereotypes.
var ManagementStereotypes = []string{
	StBIELibrary, StBusinessLibrary, StCCLibrary, StCDTLibrary,
	StDOCLibrary, StENUMLibrary, StPRIMLibrary, StQDTLibrary,
}

// DataTypeStereotypes lists the 6 data-type stereotypes.
var DataTypeStereotypes = []string{StCDT, StCON, StENUM, StPRIM, StQDT, StSUP}

// CommonStereotypes lists the 9 stereotypes of the Common package.
var CommonStereotypes = []string{
	StABIE, StACC, StASBIE, StASCC, StBasedOn, StBBIE, StBCC, StBIE, StCC,
}

// Tagged value names the generator consumes. The paper: "Every library
// package within a business library has several tagged values, steering
// the generation process."
const (
	// TagBaseURN determines the target namespace of the library's schema.
	TagBaseURN = "baseURN"
	// TagNamespacePrefix sets a user-specific namespace prefix
	// (commonAggregates in Figure 6); absent, a standard prefix is
	// generated.
	TagNamespacePrefix = "NamespacePrefix"
	// TagVersionIdentifier participates in generated file names.
	TagVersionIdentifier = "VersionIdentifier"
	// TagBusinessTerm, TagDefinition and TagUniqueIdentifier feed the
	// CCTS annotation blocks when the generator runs with annotations
	// enabled.
	TagBusinessTerm     = "businessTerm"
	TagDefinition       = "definition"
	TagUniqueIdentifier = "uniqueIdentifier"
	// TagBasedOnRole and TagBasedOnProperty record renames during
	// derivation so the basedOn link of an ASBIE/BBIE stays resolvable
	// after qualification (US_Private based on Private).
	TagBasedOnRole     = "basedOnRole"
	TagBasedOnProperty = "basedOnProperty"
	// TagBusinessContext carries an ABIE's business context declaration
	// (core.Context.String form) through the UML/XMI representation.
	TagBusinessContext = "businessContext"
)

// LibraryTags lists the tagged values defined on library packages.
var LibraryTags = []string{TagBaseURN, TagNamespacePrefix, TagVersionIdentifier, TagBusinessTerm, TagUniqueIdentifier}

// ElementTags lists the tagged values defined on classifiers and
// properties.
var ElementTags = []string{TagBusinessTerm, TagDefinition, TagUniqueIdentifier, TagVersionIdentifier}

// libraryKindToStereotype maps core library kinds to package stereotypes.
var libraryKindToStereotype = map[core.LibraryKind]string{
	core.KindCCLibrary:   StCCLibrary,
	core.KindBIELibrary:  StBIELibrary,
	core.KindCDTLibrary:  StCDTLibrary,
	core.KindQDTLibrary:  StQDTLibrary,
	core.KindENUMLibrary: StENUMLibrary,
	core.KindPRIMLibrary: StPRIMLibrary,
	core.KindDOCLibrary:  StDOCLibrary,
}

// stereotypeToLibraryKind is the inverse of libraryKindToStereotype.
var stereotypeToLibraryKind = func() map[string]core.LibraryKind {
	m := make(map[string]core.LibraryKind, len(libraryKindToStereotype))
	for k, v := range libraryKindToStereotype {
		m[v] = k
	}
	return m
}()

// LibraryStereotype returns the package stereotype for a library kind.
func LibraryStereotype(k core.LibraryKind) string { return libraryKindToStereotype[k] }

// KindForStereotype returns the library kind for a package stereotype;
// ok is false for non-library stereotypes (e.g. BusinessLibrary).
func KindForStereotype(st string) (core.LibraryKind, bool) {
	k, ok := stereotypeToLibraryKind[st]
	return k, ok
}

// IsLibraryStereotype reports whether st is one of the seven
// element-containing library stereotypes.
func IsLibraryStereotype(st string) bool {
	_, ok := stereotypeToLibraryKind[st]
	return ok
}

// Inventory describes the profile contents; TestFigure3ProfileInventory
// checks it against the paper's counts (8 libraries, 6 data types, 9
// common stereotypes).
type Inventory struct {
	Management []string
	DataTypes  []string
	Common     []string
	Tags       []string
}

// ProfileInventory returns the full stereotype and tagged-value
// inventory.
func ProfileInventory() Inventory {
	tags := make([]string, 0, len(LibraryTags)+len(ElementTags))
	tags = append(tags, LibraryTags...)
	for _, t := range ElementTags {
		dup := false
		for _, u := range tags {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			tags = append(tags, t)
		}
	}
	return Inventory{
		Management: append([]string(nil), ManagementStereotypes...),
		DataTypes:  append([]string(nil), DataTypeStereotypes...),
		Common:     append([]string(nil), CommonStereotypes...),
		Tags:       tags,
	}
}

// applyLibraryTags copies a core library's generator-relevant fields onto
// a UML package's tagged values.
func applyLibraryTags(pkg *uml.Package, lib *core.Library) {
	pkg.Tags = lib.Tags.Clone()
	if lib.BaseURN != "" {
		pkg.Tags.Set(TagBaseURN, lib.BaseURN)
	}
	if lib.NamespacePrefix != "" {
		pkg.Tags.Set(TagNamespacePrefix, lib.NamespacePrefix)
	}
	if lib.Version != "" {
		pkg.Tags.Set(TagVersionIdentifier, lib.Version)
	}
}
