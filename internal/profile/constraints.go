package profile

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/ocl"
	"github.com/go-ccts/ccts/internal/uml"
)

// Target selects the UML element type a constraint is evaluated on.
type Target int

const (
	// TargetPackage constraints run on packages.
	TargetPackage Target = iota
	// TargetClass constraints run on classes.
	TargetClass
	// TargetAssociation constraints run on associations.
	TargetAssociation
	// TargetDependency constraints run on dependencies.
	TargetDependency
	// TargetEnumeration constraints run on enumerations.
	TargetEnumeration
)

// Constraint is one OCL well-formedness rule of the profile.
type Constraint struct {
	// ID is the stable rule identifier reported in validation output.
	ID string
	// Target selects the element type.
	Target Target
	// Stereotypes restricts evaluation to elements carrying one of these
	// stereotypes; empty means every element of the target type.
	Stereotypes []string
	// Description is the human-readable rule statement.
	Description string
	// Expr is the boolean OCL expression; the element is self.
	Expr *ocl.Expression
}

// appliesTo reports whether the constraint covers the stereotype.
func (c Constraint) appliesTo(st string) bool {
	if len(c.Stereotypes) == 0 {
		return true
	}
	for _, s := range c.Stereotypes {
		if s == st {
			return true
		}
	}
	return false
}

var allLibraryStereotypes = []string{
	StCCLibrary, StBIELibrary, StCDTLibrary, StQDTLibrary,
	StENUMLibrary, StPRIMLibrary, StDOCLibrary,
}

// constraintTable holds the profile's OCL rules. Expressions are parsed
// once at package initialisation; a parse failure is a programming error
// and panics.
var constraintTable = []Constraint{
	// ----- Library packages -----
	{
		ID: "LIB-1", Target: TargetPackage, Stereotypes: allLibraryStereotypes,
		Description: "every library defines a non-empty baseURN tagged value",
		Expr:        ocl.MustParse("not self.baseURN.oclIsUndefined() and self.baseURN <> ''"),
	},
	{
		ID: "LIB-2", Target: TargetPackage, Stereotypes: allLibraryStereotypes,
		Description: "every library has a non-empty name",
		Expr:        ocl.MustParse("self.name <> ''"),
	},
	{
		ID: "CCL-1", Target: TargetPackage, Stereotypes: []string{StCCLibrary},
		Description: "a CCLibrary contains only ACC classes",
		Expr:        ocl.MustParse("self.classes->forAll(c | c.stereotype = 'ACC')"),
	},
	{
		ID: "CCL-2", Target: TargetPackage, Stereotypes: []string{StCCLibrary},
		Description: "a CCLibrary contains only ASCC associations",
		Expr:        ocl.MustParse("self.associations->forAll(a | a.stereotype = 'ASCC')"),
	},
	{
		ID: "CCL-3", Target: TargetPackage, Stereotypes: []string{StCCLibrary},
		Description: "a CCLibrary contains no enumerations",
		Expr:        ocl.MustParse("self.enumerations->isEmpty()"),
	},
	{
		ID: "BIEL-1", Target: TargetPackage, Stereotypes: []string{StBIELibrary, StDOCLibrary},
		Description: "BIE and DOC libraries contain only ABIE classes",
		Expr:        ocl.MustParse("self.classes->forAll(c | c.stereotype = 'ABIE')"),
	},
	{
		ID: "BIEL-2", Target: TargetPackage, Stereotypes: []string{StBIELibrary, StDOCLibrary},
		Description: "BIE and DOC libraries contain only ASBIE associations",
		Expr:        ocl.MustParse("self.associations->forAll(a | a.stereotype = 'ASBIE')"),
	},
	{
		ID: "CDTL-1", Target: TargetPackage, Stereotypes: []string{StCDTLibrary},
		Description: "a CDTLibrary contains only CDT classes",
		Expr:        ocl.MustParse("self.classes->forAll(c | c.stereotype = 'CDT')"),
	},
	{
		ID: "QDTL-1", Target: TargetPackage, Stereotypes: []string{StQDTLibrary},
		Description: "a QDTLibrary contains only QDT classes",
		Expr:        ocl.MustParse("self.classes->forAll(c | c.stereotype = 'QDT')"),
	},
	{
		ID: "ENUML-1", Target: TargetPackage, Stereotypes: []string{StENUMLibrary},
		Description: "an ENUMLibrary contains only ENUM enumerations and no classes",
		Expr: ocl.MustParse(
			"self.classes->isEmpty() and self.enumerations->forAll(e | e.stereotype = 'ENUM')"),
	},
	{
		ID: "PRIML-1", Target: TargetPackage, Stereotypes: []string{StPRIMLibrary},
		Description: "a PRIMLibrary contains only PRIM classes",
		Expr:        ocl.MustParse("self.classes->forAll(c | c.stereotype = 'PRIM')"),
	},
	{
		ID: "BUSL-1", Target: TargetPackage, Stereotypes: []string{StBusinessLibrary},
		Description: "a BusinessLibrary groups only library packages",
		Expr: ocl.MustParse("let kinds = Set{'CCLibrary', 'BIELibrary', 'CDTLibrary', " +
			"'QDTLibrary', 'ENUMLibrary', 'PRIMLibrary', 'DOCLibrary', 'BusinessLibrary'} in " +
			"self.packages->forAll(p | kinds->includes(p.stereotype))"),
	},

	// ----- Core components -----
	{
		ID: "ACC-1", Target: TargetClass, Stereotypes: []string{StACC},
		Description: "an ACC contains only BCC attributes",
		Expr:        ocl.MustParse("self.attributes->forAll(a | a.stereotype = 'BCC')"),
	},
	{
		ID: "ACC-2", Target: TargetClass, Stereotypes: []string{StACC},
		Description: "an ACC is not based on anything",
		Expr:        ocl.MustParse("self.basedOn->isEmpty()"),
	},
	{
		ID: "BCC-1", Target: TargetClass, Stereotypes: []string{StACC},
		Description: "every BCC is typed by a core data type",
		Expr: ocl.MustParse(
			"self.attributes->forAll(a | not a.type.oclIsUndefined() and a.type.stereotype = 'CDT')"),
	},
	{
		ID: "ASCC-1", Target: TargetAssociation, Stereotypes: []string{StASCC},
		Description: "an ASCC connects two ACCs",
		Expr: ocl.MustParse(
			"self.source.stereotype = 'ACC' and self.target.stereotype = 'ACC'"),
	},
	{
		ID: "ASCC-2", Target: TargetAssociation, Stereotypes: []string{StASCC},
		Description: "an ASCC has a role name",
		Expr:        ocl.MustParse("self.role <> ''"),
	},

	// ----- Business information entities -----
	{
		ID: "ABIE-1", Target: TargetClass, Stereotypes: []string{StABIE},
		Description: "an ABIE contains only BBIE attributes",
		Expr:        ocl.MustParse("self.attributes->forAll(a | a.stereotype = 'BBIE')"),
	},
	{
		ID: "ABIE-2", Target: TargetClass, Stereotypes: []string{StABIE},
		Description: "an ABIE is based on exactly one ACC",
		Expr: ocl.MustParse(
			"self.basedOn->size() = 1 and self.basedOn->forAll(b | b.stereotype = 'ACC')"),
	},
	{
		ID: "BBIE-1", Target: TargetClass, Stereotypes: []string{StABIE},
		Description: "every BBIE is typed by a core or qualified data type",
		Expr: ocl.MustParse("self.attributes->forAll(a | not a.type.oclIsUndefined() and " +
			"(a.type.stereotype = 'CDT' or a.type.stereotype = 'QDT'))"),
	},
	{
		ID: "ASBIE-1", Target: TargetAssociation, Stereotypes: []string{StASBIE},
		Description: "an ASBIE connects two ABIEs",
		Expr: ocl.MustParse(
			"self.source.stereotype = 'ABIE' and self.target.stereotype = 'ABIE'"),
	},
	{
		ID: "ASBIE-2", Target: TargetAssociation, Stereotypes: []string{StASBIE},
		Description: "an ASBIE has a role name",
		Expr:        ocl.MustParse("self.role <> ''"),
	},

	// ----- Data types -----
	{
		ID: "CDT-1", Target: TargetClass, Stereotypes: []string{StCDT},
		Description: "a CDT contains exactly one content component",
		Expr:        ocl.MustParse("self.attributes->select(a | a.stereotype = 'CON')->size() = 1"),
	},
	{
		ID: "CDT-2", Target: TargetClass, Stereotypes: []string{StCDT},
		Description: "a CDT contains only CON and SUP attributes",
		Expr: ocl.MustParse(
			"self.attributes->forAll(a | Set{'CON', 'SUP'}->includes(a.stereotype))"),
	},
	{
		ID: "CDT-3", Target: TargetClass, Stereotypes: []string{StCDT},
		Description: "a CDT is not based on anything",
		Expr:        ocl.MustParse("self.basedOn->isEmpty()"),
	},
	{
		ID: "CDT-4", Target: TargetClass, Stereotypes: []string{StCDT},
		Description: "CDT components are typed by primitive types",
		Expr: ocl.MustParse(
			"self.attributes->forAll(a | not a.type.oclIsUndefined() and a.type.stereotype = 'PRIM')"),
	},
	{
		ID: "QDT-1", Target: TargetClass, Stereotypes: []string{StQDT},
		Description: "a QDT contains exactly one content component",
		Expr:        ocl.MustParse("self.attributes->select(a | a.stereotype = 'CON')->size() = 1"),
	},
	{
		ID: "QDT-2", Target: TargetClass, Stereotypes: []string{StQDT},
		Description: "a QDT contains only CON and SUP attributes",
		Expr: ocl.MustParse(
			"self.attributes->forAll(a | a.stereotype = 'CON' or a.stereotype = 'SUP')"),
	},
	{
		ID: "QDT-3", Target: TargetClass, Stereotypes: []string{StQDT},
		Description: "a QDT is based on exactly one CDT",
		Expr: ocl.MustParse(
			"self.basedOn->size() = 1 and self.basedOn->forAll(b | b.stereotype = 'CDT')"),
	},
	{
		ID: "QDT-4", Target: TargetClass, Stereotypes: []string{StQDT},
		Description: "QDT components are typed by primitive or enumeration types",
		Expr: ocl.MustParse("self.attributes->forAll(a | not a.type.oclIsUndefined() and " +
			"(a.type.stereotype = 'PRIM' or a.type.stereotype = 'ENUM'))"),
	},
	{
		ID: "PRIM-1", Target: TargetClass, Stereotypes: []string{StPRIM},
		Description: "a PRIM has no attributes",
		Expr:        ocl.MustParse("self.attributes->isEmpty()"),
	},
	{
		ID: "ENUM-1", Target: TargetEnumeration, Stereotypes: []string{StENUM},
		Description: "an ENUM defines at least one literal",
		Expr:        ocl.MustParse("self.literals->notEmpty()"),
	},
	{
		ID: "ENUM-2", Target: TargetEnumeration, Stereotypes: []string{StENUM},
		Description: "ENUM literals are unique",
		Expr: ocl.MustParse(
			"self.literals->forAll(l | self.literals->select(k | k.name = l.name)->size() = 1)"),
	},

	// ----- Dependencies -----
	{
		ID: "DEP-1", Target: TargetDependency, Stereotypes: []string{StBasedOn},
		Description: "basedOn links an ABIE to an ACC or a QDT to a CDT",
		Expr: ocl.MustParse(
			"(self.client.stereotype = 'ABIE' and self.supplier.stereotype = 'ACC') or " +
				"(self.client.stereotype = 'QDT' and self.supplier.stereotype = 'CDT')"),
	},
}

// Constraints returns the profile's OCL constraint table.
func Constraints() []Constraint {
	return append([]Constraint(nil), constraintTable...)
}

// NewConstraint compiles a user-defined OCL rule. Model governance teams
// add house rules this way (e.g. "every ABIE carries a definition")
// without touching the built-in table.
func NewConstraint(id string, target Target, stereotypes []string, description, oclSource string) (Constraint, error) {
	expr, err := ocl.Parse(oclSource)
	if err != nil {
		return Constraint{}, err
	}
	if id == "" {
		return Constraint{}, fmt.Errorf("profile: constraint needs an ID")
	}
	return Constraint{
		ID:          id,
		Target:      target,
		Stereotypes: append([]string(nil), stereotypes...),
		Description: description,
		Expr:        expr,
	}, nil
}

// Violation reports one constraint failure on one element.
type Violation struct {
	Constraint Constraint
	// Element is the qualified name of the violating element.
	Element string
	// Err is non-nil when the constraint could not be evaluated (e.g. a
	// dangling type reference); the violation still counts.
	Err error
}

// String renders the violation for reports.
func (v Violation) String() string {
	if v.Err != nil {
		return fmt.Sprintf("[%s] %s: %s (evaluation error: %v)",
			v.Constraint.ID, v.Element, v.Constraint.Description, v.Err)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Constraint.ID, v.Element, v.Constraint.Description)
}

// EvaluateConstraints runs every profile constraint against every
// matching element of the model and returns the violations in model
// order.
func EvaluateConstraints(m *uml.Model) []Violation {
	return EvaluateConstraintsWith(m, nil)
}

// EvaluateConstraintsWith runs the built-in table plus user-defined
// rules (see NewConstraint).
func EvaluateConstraintsWith(m *uml.Model, extra []Constraint) []Violation {
	table := constraintTable
	if len(extra) > 0 {
		table = append(append([]Constraint(nil), constraintTable...), extra...)
	}
	var out []Violation
	check := func(c Constraint, element string, obj ocl.Object) {
		ok, err := c.Expr.EvalBool(obj)
		if err != nil {
			out = append(out, Violation{Constraint: c, Element: element, Err: err})
			return
		}
		if !ok {
			out = append(out, Violation{Constraint: c, Element: element})
		}
	}

	m.WalkPackages(func(p *uml.Package) bool {
		obj := Adapt(m, p)
		for _, c := range table {
			if c.Target == TargetPackage && c.appliesTo(p.Stereotype) {
				check(c, p.QualifiedName(), obj)
			}
		}
		for _, cl := range p.Classes {
			clObj := Adapt(m, cl)
			for _, c := range table {
				if c.Target == TargetClass && c.appliesTo(cl.Stereotype) {
					check(c, cl.QualifiedName(), clObj)
				}
			}
		}
		for _, a := range p.Associations {
			aObj := Adapt(m, a)
			name := p.QualifiedName() + "::<association " + a.TargetRole + ">"
			for _, c := range table {
				if c.Target == TargetAssociation && c.appliesTo(a.Stereotype) {
					check(c, name, aObj)
				}
			}
		}
		for _, d := range p.Dependencies {
			dObj := Adapt(m, d)
			name := p.QualifiedName() + "::<basedOn>"
			for _, c := range table {
				if c.Target == TargetDependency && c.appliesTo(d.Stereotype) {
					check(c, name, dObj)
				}
			}
		}
		for _, e := range p.Enumerations {
			eObj := Adapt(m, e)
			for _, c := range table {
				if c.Target == TargetEnumeration && c.appliesTo(e.Stereotype) {
					check(c, e.QualifiedName(), eObj)
				}
			}
		}
		return true
	})
	return out
}
