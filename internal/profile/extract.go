package profile

import (
	"fmt"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

// Extract converts a stereotyped UML model (drawn with the profile, or
// imported from XMI) back into the typed CCTS model. Structural
// impossibilities — unresolvable type references, missing basedOn
// dependencies, illegal restrictions — abort the extraction with an
// error, mirroring the paper's generator behaviour: "In case the UML
// model is erroneous, the generation aborts and the user is presented an
// error message." Run profile.EvaluateConstraints first for a complete
// diagnosis instead of the first error.
func Extract(um *uml.Model) (*core.Model, error) {
	x := &extractor{
		um:       um,
		cm:       core.NewModel(um.Name),
		libOfPkg: map[*uml.Package]*core.Library{},
		prims:    map[*uml.Class]*core.PRIM{},
		enums:    map[*uml.Enumeration]*core.ENUM{},
		cdts:     map[*uml.Class]*core.CDT{},
		qdts:     map[*uml.Class]*core.QDT{},
		accs:     map[*uml.Class]*core.ACC{},
		abies:    map[*uml.Class]*core.ABIE{},
	}
	if err := x.packages(); err != nil {
		return nil, err
	}
	// Classifier passes ordered by dependency: PRIM -> ENUM -> CDT ->
	// QDT -> ACC -> ABIE, then the member passes.
	for _, pass := range []func() error{
		x.primPass, x.enumPass, x.cdtPass, x.qdtPass,
		x.accPass, x.asccPass, x.abiePass, x.asbiePass,
	} {
		if err := pass(); err != nil {
			return nil, err
		}
	}
	return x.cm, nil
}

type extractor struct {
	um *uml.Model
	cm *core.Model

	libOfPkg map[*uml.Package]*core.Library
	prims    map[*uml.Class]*core.PRIM
	enums    map[*uml.Enumeration]*core.ENUM
	cdts     map[*uml.Class]*core.CDT
	qdts     map[*uml.Class]*core.QDT
	accs     map[*uml.Class]*core.ACC
	abies    map[*uml.Class]*core.ABIE
}

// packages maps BusinessLibrary packages and their library sub-packages.
func (x *extractor) packages() error {
	var err error
	x.um.WalkPackages(func(p *uml.Package) bool {
		switch {
		case p.Stereotype == StBusinessLibrary:
			biz := x.cm.AddBusinessLibrary(p.Name)
			biz.Tags = p.Tags.Clone()
			for _, child := range p.Packages {
				kind, ok := KindForStereotype(child.Stereotype)
				if !ok {
					if child.Stereotype == StBusinessLibrary {
						continue // walked separately
					}
					err = fmt.Errorf("profile: package %q has stereotype %q, expected a library stereotype",
						child.QualifiedName(), child.Stereotype)
					return false
				}
				lib := biz.AddLibrary(kind, child.Name, child.Tags.Get(TagBaseURN))
				lib.NamespacePrefix = child.Tags.Get(TagNamespacePrefix)
				lib.Version = child.Tags.Get(TagVersionIdentifier)
				lib.Tags = child.Tags.Clone()
				x.libOfPkg[child] = lib
			}
		case IsLibraryStereotype(p.Stereotype):
			if p.Parent() == nil || p.Parent().Stereotype != StBusinessLibrary {
				err = fmt.Errorf("profile: library package %q must be owned by a BusinessLibrary package",
					p.QualifiedName())
				return false
			}
		}
		return true
	})
	return err
}

// simpleName strips a qualified prefix: "types:draft:cdt:1.0::Code" ->
// "Code".
func simpleName(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

func (x *extractor) forEachLibClass(kind core.LibraryKind, st string, fn func(*core.Library, *uml.Class) error) error {
	for pkg, lib := range x.libOfPkg {
		if lib.Kind != kind {
			continue
		}
		for _, c := range pkg.Classes {
			if c.Stereotype != st {
				return fmt.Errorf("profile: class %q in %s %q has stereotype %q, expected %q",
					c.Name, lib.Kind, lib.Name, c.Stereotype, st)
			}
			if err := fn(lib, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (x *extractor) primPass() error {
	return x.forEachLibClass(core.KindPRIMLibrary, StPRIM, func(lib *core.Library, c *uml.Class) error {
		p, err := lib.AddPRIM(c.Name)
		if err != nil {
			return err
		}
		p.Definition = c.Tags.Get(TagDefinition)
		x.prims[c] = p
		return nil
	})
}

func (x *extractor) enumPass() error {
	for pkg, lib := range x.libOfPkg {
		if lib.Kind != core.KindENUMLibrary {
			continue
		}
		for _, e := range pkg.Enumerations {
			if e.Stereotype != StENUM {
				return fmt.Errorf("profile: enumeration %q in ENUMLibrary %q has stereotype %q",
					e.Name, lib.Name, e.Stereotype)
			}
			en, err := lib.AddENUM(e.Name)
			if err != nil {
				return err
			}
			en.Definition = e.Tags.Get(TagDefinition)
			for _, l := range e.Literals {
				en.AddLiteral(l.Name, l.Value)
			}
			x.enums[e] = en
		}
	}
	return nil
}

// componentType resolves a CON/SUP attribute type to a PRIM or ENUM.
func (x *extractor) componentType(a *uml.Attribute) (core.ComponentType, error) {
	cls, err := x.um.ResolveType(simpleName(a.TypeName))
	if err != nil {
		return nil, fmt.Errorf("profile: attribute %q: %w", a.Name, err)
	}
	switch t := cls.(type) {
	case *uml.Class:
		if p, ok := x.prims[t]; ok {
			return p, nil
		}
	case *uml.Enumeration:
		if e, ok := x.enums[t]; ok {
			return e, nil
		}
	}
	return nil, fmt.Errorf("profile: attribute %q type %q is neither PRIM nor ENUM", a.Name, a.TypeName)
}

// splitComponents separates a data type class's attributes into the
// single CON and the SUPs.
func splitComponents(c *uml.Class) (con *uml.Attribute, sups []*uml.Attribute, err error) {
	for _, a := range c.Attributes {
		switch a.Stereotype {
		case StCON:
			if con != nil {
				return nil, nil, fmt.Errorf("profile: data type %q has more than one CON", c.Name)
			}
			con = a
		case StSUP:
			sups = append(sups, a)
		default:
			return nil, nil, fmt.Errorf("profile: data type %q has attribute %q with stereotype %q, expected CON or SUP",
				c.Name, a.Name, a.Stereotype)
		}
	}
	if con == nil {
		return nil, nil, fmt.Errorf("profile: data type %q has no CON content component", c.Name)
	}
	return con, sups, nil
}

func (x *extractor) cdtPass() error {
	return x.forEachLibClass(core.KindCDTLibrary, StCDT, func(lib *core.Library, c *uml.Class) error {
		con, sups, err := splitComponents(c)
		if err != nil {
			return err
		}
		ct, err := x.componentType(con)
		if err != nil {
			return err
		}
		cdt, err := lib.AddCDT(c.Name, core.ContentComponent{Name: con.Name, Type: ct})
		if err != nil {
			return err
		}
		cdt.Definition = c.Tags.Get(TagDefinition)
		for _, s := range sups {
			st, err := x.componentType(s)
			if err != nil {
				return err
			}
			cdt.AddSup(s.Name, st, s.Mult)
		}
		x.cdts[c] = cdt
		return nil
	})
}

// basedOnSupplier finds the single basedOn supplier class of a client
// class.
func (x *extractor) basedOnSupplier(c *uml.Class) (*uml.Class, error) {
	var suppliers []*uml.Class
	for _, d := range x.um.DependenciesFrom(c) {
		if d.Stereotype != StBasedOn {
			continue
		}
		s, ok := d.Supplier.(*uml.Class)
		if !ok {
			return nil, fmt.Errorf("profile: basedOn supplier of %q is not a class", c.Name)
		}
		suppliers = append(suppliers, s)
	}
	if len(suppliers) != 1 {
		return nil, fmt.Errorf("profile: %q has %d basedOn dependencies, expected exactly 1", c.Name, len(suppliers))
	}
	return suppliers[0], nil
}

func (x *extractor) qdtPass() error {
	return x.forEachLibClass(core.KindQDTLibrary, StQDT, func(lib *core.Library, c *uml.Class) error {
		base, err := x.basedOnSupplier(c)
		if err != nil {
			return err
		}
		cdt, ok := x.cdts[base]
		if !ok {
			return fmt.Errorf("profile: QDT %q is based on %q, which is not a CDT", c.Name, base.Name)
		}
		con, sups, err := splitComponents(c)
		if err != nil {
			return err
		}
		ct, err := x.componentType(con)
		if err != nil {
			return err
		}
		qdt, err := lib.AddQDT(c.Name, cdt, core.ContentComponent{Name: con.Name, Type: ct})
		if err != nil {
			return err
		}
		qdt.Definition = c.Tags.Get(TagDefinition)
		for _, s := range sups {
			st, err := x.componentType(s)
			if err != nil {
				return err
			}
			qdt.Sups = append(qdt.Sups, core.SupplementaryComponent{
				Name: s.Name, Type: st, Card: s.Mult,
				Definition: s.Tags.Get(TagDefinition),
			})
		}
		if err := qdt.CheckRestriction(); err != nil {
			return err
		}
		x.qdts[c] = qdt
		return nil
	})
}

// dataType resolves a BCC/BBIE attribute type to a CDT or QDT.
func (x *extractor) dataType(a *uml.Attribute) (core.DataType, error) {
	cls, err := x.um.ResolveType(simpleName(a.TypeName))
	if err != nil {
		return nil, fmt.Errorf("profile: attribute %q: %w", a.Name, err)
	}
	c, ok := cls.(*uml.Class)
	if !ok {
		return nil, fmt.Errorf("profile: attribute %q type %q is not a data type class", a.Name, a.TypeName)
	}
	if cdt, ok := x.cdts[c]; ok {
		return cdt, nil
	}
	if qdt, ok := x.qdts[c]; ok {
		return qdt, nil
	}
	return nil, fmt.Errorf("profile: attribute %q type %q is neither CDT nor QDT", a.Name, a.TypeName)
}

func (x *extractor) accPass() error {
	return x.forEachLibClass(core.KindCCLibrary, StACC, func(lib *core.Library, c *uml.Class) error {
		acc, err := lib.AddACC(c.Name)
		if err != nil {
			return err
		}
		acc.Definition = c.Tags.Get(TagDefinition)
		for _, a := range c.Attributes {
			if a.Stereotype != StBCC {
				return fmt.Errorf("profile: ACC %q attribute %q has stereotype %q, expected BCC",
					c.Name, a.Name, a.Stereotype)
			}
			dt, err := x.dataType(a)
			if err != nil {
				return err
			}
			cdt, ok := dt.(*core.CDT)
			if !ok {
				return fmt.Errorf("profile: BCC %q of ACC %q must be typed by a CDT, got QDT %q",
					a.Name, c.Name, dt.TypeName())
			}
			bcc, err := acc.AddBCC(a.Name, cdt, a.Mult)
			if err != nil {
				return err
			}
			bcc.Definition = a.Tags.Get(TagDefinition)
		}
		x.accs[c] = acc
		return nil
	})
}

func (x *extractor) asccPass() error {
	var err error
	x.um.WalkAssociations(func(a *uml.Association) bool {
		if a.Stereotype != StASCC {
			return true
		}
		src, ok1 := x.accs[a.Source]
		dst, ok2 := x.accs[a.Target]
		if !ok1 || !ok2 {
			err = fmt.Errorf("profile: ASCC %q does not connect two ACCs", a.TargetRole)
			return false
		}
		ascc, aerr := src.AddASCC(a.TargetRole, dst, a.TargetMult, a.Kind)
		if aerr != nil {
			err = aerr
			return false
		}
		ascc.Definition = a.Tags.Get(TagDefinition)
		return true
	})
	return err
}

func (x *extractor) abiePass() error {
	return x.forEachLibClass(core.KindBIELibrary, StABIE, x.extractABIE)
}

func (x *extractor) extractABIE(lib *core.Library, c *uml.Class) error {
	base, err := x.basedOnSupplier(c)
	if err != nil {
		return err
	}
	acc, ok := x.accs[base]
	if !ok {
		return fmt.Errorf("profile: ABIE %q is based on %q, which is not an ACC", c.Name, base.Name)
	}
	abie, err := lib.AddABIE(c.Name, acc)
	if err != nil {
		return err
	}
	abie.Definition = c.Tags.Get(TagDefinition)
	abie.Version = c.Tags.Get(TagVersionIdentifier)
	if ctxSpec := c.Tags.Get(TagBusinessContext); ctxSpec != "" {
		ctx, err := core.ParseContext(ctxSpec)
		if err != nil {
			return fmt.Errorf("profile: ABIE %q: %w", c.Name, err)
		}
		abie.SetContext(ctx)
	}
	for _, a := range c.Attributes {
		if a.Stereotype != StBBIE {
			return fmt.Errorf("profile: ABIE %q attribute %q has stereotype %q, expected BBIE",
				c.Name, a.Name, a.Stereotype)
		}
		dt, err := x.dataType(a)
		if err != nil {
			return err
		}
		bccName := a.Tags.Get(TagBasedOnProperty)
		if bccName == "" {
			bccName = a.Name
		}
		bcc := acc.FindBCC(bccName)
		if bcc == nil {
			return fmt.Errorf("profile: BBIE %q of ABIE %q: underlying ACC %q has no BCC %q",
				a.Name, c.Name, acc.Name, bccName)
		}
		bbie, err := abie.AddBBIE(a.Name, bcc, dt, a.Mult)
		if err != nil {
			return err
		}
		bbie.Definition = a.Tags.Get(TagDefinition)
	}
	x.abies[c] = abie
	return nil
}

func (x *extractor) asbiePass() error {
	// DOC libraries also hold ABIEs; extract them before their ASBIEs.
	if err := x.forEachLibClass(core.KindDOCLibrary, StABIE, x.extractABIE); err != nil {
		return err
	}
	var err error
	x.um.WalkAssociations(func(a *uml.Association) bool {
		if a.Stereotype != StASBIE {
			return true
		}
		src, ok1 := x.abies[a.Source]
		dst, ok2 := x.abies[a.Target]
		if !ok1 || !ok2 {
			err = fmt.Errorf("profile: ASBIE %q does not connect two ABIEs", a.TargetRole)
			return false
		}
		ascc, ferr := x.findASCC(src, dst, a)
		if ferr != nil {
			err = ferr
			return false
		}
		asbie, aerr := src.AddASBIE(a.TargetRole, ascc, dst, a.TargetMult, a.Kind)
		if aerr != nil {
			err = aerr
			return false
		}
		asbie.Definition = a.Tags.Get(TagDefinition)
		return true
	})
	return err
}

// findASCC locates the ASCC an ASBIE restricts: by the recorded
// basedOnRole tag, by identical role name, or — when unambiguous — as
// the single ASCC pointing at the target's underlying ACC.
func (x *extractor) findASCC(src *core.ABIE, dst *core.ABIE, a *uml.Association) (*core.ASCC, error) {
	acc := src.BasedOn
	targetACC := dst.BasedOn
	role := a.Tags.Get(TagBasedOnRole)
	if role == "" {
		role = a.TargetRole
	}
	if ascc := acc.FindASCC(role, targetACC.Name); ascc != nil {
		return ascc, nil
	}
	var candidates []*core.ASCC
	for _, s := range acc.ASCCs {
		if s.Target == targetACC {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 1 {
		return candidates[0], nil
	}
	return nil, fmt.Errorf("profile: ASBIE %q of ABIE %q: cannot resolve underlying ASCC on ACC %q (role %q, target ACC %q, %d candidates)",
		a.TargetRole, src.Name, acc.Name, role, targetACC.Name, len(candidates))
}
