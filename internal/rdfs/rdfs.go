// Package rdfs transforms core components models into RDF Schema
// vocabularies (RDF/XML syntax), the second transfer syntax the paper
// names as a future extension ("future extensions could include the
// generation of RELAX NG [8] or RDF schemas [15] as well", citing the
// W3C RDF Vocabulary Description Language 1.0).
//
// Mapping:
//
//	ACC            -> rdfs:Class
//	ABIE           -> rdfs:Class, rdfs:subClassOf its ACC (restriction)
//	BCC/BBIE       -> rdf:Property with rdfs:domain and a datatype range
//	ASCC/ASBIE     -> rdf:Property with a class range
//	CDT/QDT        -> rdfs:Datatype (QDT subclassing its CDT)
//	ENUM           -> rdfs:Class plus one typed individual per literal
//
// Resources are identified as <baseURN>#<Name>; property names follow
// the role/property term in lowerCamelCase.
package rdfs

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/go-ccts/ccts/internal/core"
)

// Namespaces used by the generated vocabulary.
const (
	RDFNamespace  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNamespace = "http://www.w3.org/2000/01/rdf-schema#"
	LiteralRange  = RDFSNamespace + "Literal"
)

// Generate renders the whole model as one RDF Schema document.
func Generate(m *core.Model) (string, error) {
	g := &generator{b: &strings.Builder{}}
	g.b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(g.b, "<rdf:RDF xmlns:rdf=%q xmlns:rdfs=%q>\n", RDFNamespace, RDFSNamespace)
	for _, lib := range m.Libraries() {
		if lib.BaseURN == "" {
			return "", fmt.Errorf("rdfs: library %q has no baseURN; cannot mint resource URIs", lib.Name)
		}
		switch lib.Kind {
		case core.KindCCLibrary:
			for _, acc := range lib.ACCs {
				g.acc(acc)
			}
		case core.KindBIELibrary, core.KindDOCLibrary:
			for _, abie := range lib.ABIEs {
				g.abie(abie)
			}
		case core.KindCDTLibrary:
			for _, cdt := range lib.CDTs {
				g.datatype(uriFor(lib, cdt.Name), cdt.Name, cdt.Definition, "")
			}
		case core.KindQDTLibrary:
			for _, qdt := range lib.QDTs {
				base := ""
				if qdt.BasedOn != nil {
					base = uriFor(qdt.BasedOn.DataTypeLibrary(), qdt.BasedOn.Name)
				}
				g.datatype(uriFor(lib, qdt.Name), qdt.Name, qdt.Definition, base)
			}
		case core.KindENUMLibrary:
			for _, e := range lib.ENUMs {
				g.enum(lib, e)
			}
		case core.KindPRIMLibrary:
			// Primitives map to rdfs:Literal ranges; no vocabulary terms.
		}
	}
	g.b.WriteString("</rdf:RDF>\n")
	return g.b.String(), nil
}

type generator struct {
	b *strings.Builder
}

// uriFor mints the resource URI of an element.
func uriFor(lib *core.Library, name string) string {
	return lib.BaseURN + "#" + name
}

// propertyName lowers the first rune of a property/role term:
// "ClosureReason" -> "closureReason".
func propertyName(name string) string {
	if name == "" {
		return name
	}
	r := []rune(name)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}

func (g *generator) class(uri, label, comment, subClassOf string) {
	fmt.Fprintf(g.b, "  <rdfs:Class rdf:about=%q>\n", esc(uri))
	fmt.Fprintf(g.b, "    <rdfs:label>%s</rdfs:label>\n", esc(label))
	if comment != "" {
		fmt.Fprintf(g.b, "    <rdfs:comment>%s</rdfs:comment>\n", esc(comment))
	}
	if subClassOf != "" {
		fmt.Fprintf(g.b, "    <rdfs:subClassOf rdf:resource=%q/>\n", esc(subClassOf))
	}
	g.b.WriteString("  </rdfs:Class>\n")
}

func (g *generator) property(uri, label, domain, rng string) {
	fmt.Fprintf(g.b, "  <rdf:Property rdf:about=%q>\n", esc(uri))
	fmt.Fprintf(g.b, "    <rdfs:label>%s</rdfs:label>\n", esc(label))
	fmt.Fprintf(g.b, "    <rdfs:domain rdf:resource=%q/>\n", esc(domain))
	fmt.Fprintf(g.b, "    <rdfs:range rdf:resource=%q/>\n", esc(rng))
	g.b.WriteString("  </rdf:Property>\n")
}

func (g *generator) datatype(uri, label, comment, base string) {
	fmt.Fprintf(g.b, "  <rdfs:Datatype rdf:about=%q>\n", esc(uri))
	fmt.Fprintf(g.b, "    <rdfs:label>%s</rdfs:label>\n", esc(label))
	if comment != "" {
		fmt.Fprintf(g.b, "    <rdfs:comment>%s</rdfs:comment>\n", esc(comment))
	}
	if base != "" {
		fmt.Fprintf(g.b, "    <rdfs:subClassOf rdf:resource=%q/>\n", esc(base))
	}
	g.b.WriteString("  </rdfs:Datatype>\n")
}

func (g *generator) acc(acc *core.ACC) {
	lib := acc.Library()
	classURI := uriFor(lib, acc.Name)
	g.class(classURI, acc.DEN(), acc.Definition, "")
	for _, bcc := range acc.BCCs {
		g.property(
			uriFor(lib, acc.Name+"."+propertyName(bcc.Name)),
			bcc.DEN(),
			classURI,
			uriFor(bcc.Type.DataTypeLibrary(), bcc.Type.Name),
		)
	}
	for _, ascc := range acc.ASCCs {
		g.property(
			uriFor(lib, acc.Name+"."+propertyName(ascc.Role)),
			ascc.DEN(),
			classURI,
			uriFor(ascc.Target.Library(), ascc.Target.Name),
		)
	}
}

func (g *generator) abie(abie *core.ABIE) {
	lib := abie.Library()
	classURI := uriFor(lib, abie.Name)
	super := ""
	if abie.BasedOn != nil {
		super = uriFor(abie.BasedOn.Library(), abie.BasedOn.Name)
	}
	g.class(classURI, abie.DEN(), abie.Definition, super)
	for _, bbie := range abie.BBIEs {
		g.property(
			uriFor(lib, abie.Name+"."+propertyName(bbie.Name)),
			bbie.DEN(),
			classURI,
			uriFor(bbie.Type.DataTypeLibrary(), bbie.Type.TypeName()),
		)
	}
	for _, asbie := range abie.ASBIEs {
		g.property(
			uriFor(lib, abie.Name+"."+propertyName(asbie.Role)),
			asbie.DEN(),
			classURI,
			uriFor(asbie.Target.Library(), asbie.Target.Name),
		)
	}
}

func (g *generator) enum(lib *core.Library, e *core.ENUM) {
	classURI := uriFor(lib, e.Name)
	g.class(classURI, e.Name, e.Definition, "")
	for _, l := range e.Literals {
		fmt.Fprintf(g.b, "  <rdf:Description rdf:about=%q>\n", esc(classURI+"."+l.Name))
		fmt.Fprintf(g.b, "    <rdf:type rdf:resource=%q/>\n", esc(classURI))
		fmt.Fprintf(g.b, "    <rdfs:label>%s</rdfs:label>\n", esc(l.Value))
		g.b.WriteString("  </rdf:Description>\n")
	}
}

func esc(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
