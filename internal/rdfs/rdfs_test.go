package rdfs

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/fixture"
)

func generate(t *testing.T) string {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(f.Model)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateStructure(t *testing.T) {
	out := generate(t)
	for _, want := range []string{
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#">`,
		// ACC -> class with DEN label.
		`<rdfs:Class rdf:about="urn:au:gov:vic:easybiz:components:draft:CandidateCoreComponents#Permit">`,
		`<rdfs:label>Permit. Details</rdfs:label>`,
		// ABIE -> class subClassOf its ACC.
		`<rdfs:Class rdf:about="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit#HoardingPermit">`,
		`<rdfs:subClassOf rdf:resource="urn:au:gov:vic:easybiz:components:draft:CandidateCoreComponents#Permit"/>`,
		// BBIE -> property with domain and datatype range.
		`<rdf:Property rdf:about="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit#HoardingPermit.closureReason">`,
		`<rdfs:domain rdf:resource="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit#HoardingPermit"/>`,
		`<rdfs:range rdf:resource="un:unece:uncefact:data:standard:CDTLibrary:1.0#Text"/>`,
		// ASBIE -> property with class range.
		`<rdf:Property rdf:about="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit#HoardingPermit.billing">`,
		`<rdfs:range rdf:resource="urn:au:gov:vic:easybiz:data:draft:CommonAggregates#Person_Identification"/>`,
		// CDT -> datatype; QDT -> datatype subclassing it.
		`<rdfs:Datatype rdf:about="un:unece:uncefact:data:standard:CDTLibrary:1.0#Code">`,
		`<rdfs:Datatype rdf:about="urn:au:gov:vic:easybiz:types:draft:QualifiedDataTypes#CountryType">`,
		`<rdfs:subClassOf rdf:resource="un:unece:uncefact:data:standard:CDTLibrary:1.0#Code"/>`,
		// ENUM -> class plus typed individuals labelled with the value.
		`<rdfs:Class rdf:about="urn:au:gov:vic:easybiz:types:draft:EnumerationTypes#CountryType_Code">`,
		`<rdf:Description rdf:about="urn:au:gov:vic:easybiz:types:draft:EnumerationTypes#CountryType_Code.AUT">`,
		`<rdfs:label>Austria</rdfs:label>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vocabulary missing %q", want)
		}
	}
}

func TestWellFormedXML(t *testing.T) {
	out := generate(t)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("not well-formed: %v", err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	if generate(t) != generate(t) {
		t.Error("RDF generation not deterministic")
	}
}

func TestGenerateErrors(t *testing.T) {
	m := core.NewModel("X")
	biz := m.AddBusinessLibrary("B")
	biz.AddLibrary(core.KindCCLibrary, "NoURN", "")
	if _, err := Generate(m); err == nil {
		t.Error("missing baseURN must fail")
	}
}

func TestPropertyName(t *testing.T) {
	cases := map[string]string{
		"ClosureReason": "closureReason",
		"a":             "a",
		"":              "",
		"URL":           "uRL",
	}
	for in, want := range cases {
		if got := propertyName(in); got != want {
			t.Errorf("propertyName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscaping(t *testing.T) {
	m := core.NewModel("X")
	biz := m.AddBusinessLibrary("B")
	lib := biz.AddLibrary(core.KindCCLibrary, "L", "urn:l")
	acc, err := lib.AddACC("Thing")
	if err != nil {
		t.Fatal(err)
	}
	acc.Definition = `uses <angle> & "quotes"`
	out, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uses &lt;angle&gt; &amp; &quot;quotes&quot;") {
		t.Errorf("escaping broken:\n%s", out)
	}
}
