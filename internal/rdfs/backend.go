package rdfs

import (
	"fmt"
	"strings"

	"github.com/go-ccts/ccts/internal/gen"
)

// Backend adapts the RDF Schema generator to the gen.Backend
// interface. The vocabulary is a whole-model document (RDF has no
// per-library modularity here), so EmitOp returns placeholder
// fragments and Assemble renders the model in its deterministic
// declaration order — parallel and sequential runs are trivially
// byte-identical.
type Backend struct{}

// Target implements gen.Backend.
func (Backend) Target() string { return "rdfs" }

// ContentType implements gen.Backend.
func (Backend) ContentType() string { return "application/rdf+xml" }

// EmitOp implements gen.Backend.
func (Backend) EmitOp(*gen.Plan, *gen.Unit, gen.Op) (gen.Fragment, error) { return nil, nil }

// Assemble implements gen.Backend: one vocabulary document named after
// the requested library.
func (Backend) Assemble(p *gen.Plan, _ [][]gen.Fragment) (*gen.Output, error) {
	units := p.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("rdfs: empty plan")
	}
	lib := units[0].Library()
	m := lib.Model()
	if m == nil {
		return nil, fmt.Errorf("rdfs: library %q is not part of a model", lib.Name)
	}
	doc, err := Generate(m)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(units[0].File(), ".xsd") + ".rdf"
	out := &gen.Output{Files: []gen.OutFile{{Name: name, Data: []byte(doc)}}}
	if root := p.Root(); root != nil {
		out.RootElement = p.Index().ABIEElementName(root)
	}
	return out, nil
}
