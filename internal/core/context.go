package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the CCTS business context mechanism the paper
// introduces in Section 2.2: "By introducing the business context, we
// can qualify and refine core components according to the needs of a
// specific industry or domain. ... Context in this case can for instance
// be travel industry or chemical industry." CCTS 2.01 defines eight
// context categories; a business information entity carries the context
// it was qualified for, and consumers look up the most specific BIE
// matching their own context.

// ContextCategory is one of the eight CCTS 2.01 business context
// categories.
type ContextCategory string

// The approved context categories of CCTS 2.01 Section 7.
const (
	CtxBusinessProcess        ContextCategory = "BusinessProcess"
	CtxProductClassification  ContextCategory = "ProductClassification"
	CtxIndustryClassification ContextCategory = "IndustryClassification"
	CtxGeopolitical           ContextCategory = "Geopolitical"
	CtxOfficialConstraints    ContextCategory = "OfficialConstraints"
	CtxBusinessProcessRole    ContextCategory = "BusinessProcessRole"
	CtxSupportingRole         ContextCategory = "SupportingRole"
	CtxSystemCapabilities     ContextCategory = "SystemCapabilities"
)

// ContextCategories lists all eight categories in specification order.
var ContextCategories = []ContextCategory{
	CtxBusinessProcess, CtxProductClassification, CtxIndustryClassification,
	CtxGeopolitical, CtxOfficialConstraints, CtxBusinessProcessRole,
	CtxSupportingRole, CtxSystemCapabilities,
}

// validCategory reports whether c is an approved category.
func validCategory(c ContextCategory) bool {
	for _, k := range ContextCategories {
		if k == c {
			return true
		}
	}
	return false
}

// Context is a business context: a set of category → values assignments.
// An empty context is the default (context-free) context. A category
// may carry several values ("applies in AT and DE").
type Context map[ContextCategory][]string

// NewContext builds a context from category/value pairs.
func NewContext() Context { return Context{} }

// With returns a copy of the context with an additional value for the
// category; it panics on unknown categories (a static programming
// error).
func (c Context) With(cat ContextCategory, values ...string) Context {
	if !validCategory(cat) {
		panic(fmt.Sprintf("core: unknown context category %q", cat))
	}
	out := c.Clone()
	out[cat] = append(out[cat], values...)
	return out
}

// Clone returns an independent copy.
func (c Context) Clone() Context {
	out := make(Context, len(c))
	for k, v := range c {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// IsDefault reports whether the context carries no constraints.
func (c Context) IsDefault() bool { return len(c) == 0 }

// String renders the context deterministically:
// "Geopolitical=AT,DE; IndustryClassification=Travel".
func (c Context) String() string {
	if len(c) == 0 {
		return "(default)"
	}
	cats := make([]string, 0, len(c))
	for k := range c {
		cats = append(cats, string(k))
	}
	sort.Strings(cats)
	parts := make([]string, 0, len(cats))
	for _, k := range cats {
		vals := append([]string(nil), c[ContextCategory(k)]...)
		sort.Strings(vals)
		parts = append(parts, k+"="+strings.Join(vals, ","))
	}
	return strings.Join(parts, "; ")
}

// ParseContext is the inverse of String (the "(default)" form and the
// empty string both produce the default context).
func ParseContext(s string) (Context, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "(default)" {
		return NewContext(), nil
	}
	out := NewContext()
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, vals, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("core: invalid context assignment %q", part)
		}
		cat := ContextCategory(strings.TrimSpace(key))
		if !validCategory(cat) {
			return nil, fmt.Errorf("core: unknown context category %q", key)
		}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("core: empty context value in %q", part)
			}
			out[cat] = append(out[cat], v)
		}
	}
	return out, nil
}

// Matches reports whether a BIE declared for context c is applicable in
// situation other: every category c constrains must include at least one
// of the situation's values for that category. Categories the BIE does
// not constrain match anything; categories the situation does not
// specify fail constrained categories (an AT-specific address does not
// apply when the country is unknown).
func (c Context) Matches(situation Context) bool {
	for cat, allowed := range c {
		given, ok := situation[cat]
		if !ok {
			return false
		}
		found := false
		for _, g := range given {
			for _, a := range allowed {
				if g == a {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Specificity counts the constrained categories; more specific contexts
// win during resolution.
func (c Context) Specificity() int { return len(c) }

// SetContext assigns the business context an ABIE was qualified for.
func (a *ABIE) SetContext(c Context) { a.context = c.Clone() }

// Context returns the ABIE's business context (default if never set).
func (a *ABIE) Context() Context {
	if a.context == nil {
		return NewContext()
	}
	return a.context
}

// ResolveInContext finds, among the ABIEs based on the given ACC, the
// most specific one whose declared context matches the situation. The
// default-context ABIE acts as fallback. Ties on specificity are
// resolved towards the earliest library/declaration order; ok is false
// when no candidate matches.
func (m *Model) ResolveInContext(acc *ACC, situation Context) (*ABIE, bool) {
	var best *ABIE
	bestSpec := -1
	for _, lib := range m.Libraries() {
		for _, abie := range lib.ABIEs {
			if abie.BasedOn != acc {
				continue
			}
			ctx := abie.Context()
			if !ctx.Matches(situation) {
				continue
			}
			if spec := ctx.Specificity(); spec > bestSpec {
				best, bestSpec = abie, spec
			}
		}
	}
	return best, best != nil
}
