package core

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/uml"
)

// testFixture builds the minimal standard content the core tests need:
// one business library with PRIM/CDT/ENUM/QDT/CC/BIE libraries and the
// Person/Address example of the paper's Figure 1.
type testFixture struct {
	model   *Model
	biz     *BusinessLibrary
	primLib *Library
	cdtLib  *Library
	qdtLib  *Library
	enumLib *Library
	ccLib   *Library
	bieLib  *Library

	str     *PRIM
	text    *CDT
	date    *CDT
	code    *CDT
	person  *ACC
	address *ACC
}

func mustPrim(t *testing.T, l *Library, name string) *PRIM {
	t.Helper()
	p, err := l.AddPRIM(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustCDT(t *testing.T, l *Library, name string, content ComponentType) *CDT {
	t.Helper()
	d, err := l.AddCDT(name, Content(content))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newFixture(t *testing.T) *testFixture {
	t.Helper()
	f := &testFixture{}
	f.model = NewModel("Test")
	f.biz = f.model.AddBusinessLibrary("EasyBiz")
	f.primLib = f.biz.AddLibrary(KindPRIMLibrary, "PrimitiveTypes", "urn:test:prim")
	f.cdtLib = f.biz.AddLibrary(KindCDTLibrary, "CoreDataTypes", "urn:test:cdt")
	f.qdtLib = f.biz.AddLibrary(KindQDTLibrary, "QualifiedDataTypes", "urn:test:qdt")
	f.enumLib = f.biz.AddLibrary(KindENUMLibrary, "EnumerationTypes", "urn:test:enum")
	f.ccLib = f.biz.AddLibrary(KindCCLibrary, "CandidateCoreComponents", "urn:test:cc")
	f.bieLib = f.biz.AddLibrary(KindBIELibrary, "CommonAggregates", "urn:test:bie")

	f.str = mustPrim(t, f.primLib, "String")
	f.text = mustCDT(t, f.cdtLib, "Text", f.str)
	f.date = mustCDT(t, f.cdtLib, "Date", f.str)
	f.code = mustCDT(t, f.cdtLib, "Code", f.str)
	f.code.AddSup("CodeListAgName", f.str, uml.One).
		AddSup("CodeListName", f.str, uml.One).
		AddSup("CodeListSchemeURI", f.str, uml.One).
		AddSup("LanguageIdentifier", f.str, uml.Optional)

	var err error
	f.person, err = f.ccLib.AddACC("Person")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddBCC("DateofBirth", f.date, uml.One); err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddBCC("FirstName", f.text, uml.One); err != nil {
		t.Fatal(err)
	}
	f.address, err = f.ccLib.AddACC("Address")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"PostalCode", "Street"} {
		if _, err := f.address.AddBCC(n, f.text, uml.One); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.address.AddBCC("Country", f.code, uml.One); err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddASCC("Private", f.address, uml.One, uml.AggregationComposite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddASCC("Work", f.address, uml.One, uml.AggregationComposite); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLibraryKindString(t *testing.T) {
	for k := KindCCLibrary; k <= KindDOCLibrary; k++ {
		s := k.String()
		back, err := ParseLibraryKind(s)
		if err != nil || back != k {
			t.Errorf("round trip %v: %v %v", k, back, err)
		}
	}
	if !strings.Contains(LibraryKind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
	if _, err := ParseLibraryKind("NopeLibrary"); err == nil {
		t.Error("expected error for unknown kind name")
	}
}

func TestContainmentRules(t *testing.T) {
	f := newFixture(t)

	// ACCs only in CCLibraries.
	if _, err := f.bieLib.AddACC("X"); err == nil {
		t.Error("ACC in BIELibrary should fail")
	}
	// ABIEs only in BIE/DOC libraries.
	if _, err := f.ccLib.AddABIE("X", f.person); err == nil {
		t.Error("ABIE in CCLibrary should fail")
	}
	// CDTs only in CDT libraries.
	if _, err := f.bieLib.AddCDT("X", Content(f.str)); err == nil {
		t.Error("CDT in BIELibrary should fail")
	}
	// QDTs only in QDT libraries.
	if _, err := f.cdtLib.AddQDT("X", f.code, Content(f.str)); err == nil {
		t.Error("QDT in CDTLibrary should fail")
	}
	// ENUMs only in ENUM libraries.
	if _, err := f.ccLib.AddENUM("X"); err == nil {
		t.Error("ENUM in CCLibrary should fail")
	}
	// PRIMs only in PRIM libraries.
	if _, err := f.cdtLib.AddPRIM("X"); err == nil {
		t.Error("PRIM in CDTLibrary should fail")
	}

	// DOCLibrary may define ABIEs (HoardingPermit does).
	docLib := f.biz.AddLibrary(KindDOCLibrary, "Doc", "urn:test:doc")
	if _, err := docLib.AddABIE("Doc_Person", f.person); err != nil {
		t.Errorf("ABIE in DOCLibrary: %v", err)
	}
}

func TestABIERequiresBasedOn(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bieLib.AddABIE("X", nil); err == nil {
		t.Error("ABIE without basedOn must fail")
	}
}

func TestQDTRequiresBasedOn(t *testing.T) {
	f := newFixture(t)
	if _, err := f.qdtLib.AddQDT("X", nil, Content(f.str)); err == nil {
		t.Error("QDT without basedOn must fail")
	}
}

func TestModelFinders(t *testing.T) {
	f := newFixture(t)
	if f.model.FindLibrary("CommonAggregates") != f.bieLib {
		t.Error("FindLibrary failed")
	}
	if f.model.FindLibrary("Nope") != nil {
		t.Error("FindLibrary should return nil")
	}
	if f.model.FindACC("Person") != f.person {
		t.Error("FindACC failed")
	}
	if f.model.FindACC("Nope") != nil {
		t.Error("FindACC should return nil")
	}
	if f.model.FindCDT("Code") != f.code {
		t.Error("FindCDT failed")
	}
	if f.model.FindPRIM("String") != f.str {
		t.Error("FindPRIM failed")
	}
	if f.model.FindPRIM("Float128") != nil {
		t.Error("FindPRIM should return nil")
	}
	if f.model.FindABIE("X") != nil || f.model.FindQDT("X") != nil || f.model.FindENUM("X") != nil {
		t.Error("missing entities should return nil")
	}
	if got := len(f.model.Libraries()); got != 6 {
		t.Errorf("Libraries() = %d, want 6", got)
	}
	if f.ccLib.FindACC("Address") != f.address {
		t.Error("Library.FindACC failed")
	}
	if f.ccLib.FindACC("Nope") != nil {
		t.Error("Library.FindACC should return nil")
	}
	if f.ccLib.Business() != f.biz || f.ccLib.Model() != f.model || f.biz.Model() != f.model {
		t.Error("ownership links broken")
	}
	detached := &Library{Kind: KindCCLibrary, Name: "Detached"}
	if detached.Model() != nil {
		t.Error("detached library should have nil model")
	}
}

func TestACCDuplicateMembers(t *testing.T) {
	f := newFixture(t)
	if _, err := f.person.AddBCC("FirstName", f.text, uml.One); err == nil {
		t.Error("duplicate BCC should fail")
	}
	if _, err := f.person.AddASCC("Private", f.address, uml.One, uml.AggregationComposite); err == nil {
		t.Error("duplicate ASCC should fail")
	}
	// Same role, different target is allowed (two Included ASBIEs in the
	// paper's Figure 4).
	other, err := f.ccLib.AddACC("Attachment")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddASCC("Private", other, uml.One, uml.AggregationComposite); err != nil {
		t.Errorf("same role, different target should be allowed: %v", err)
	}
}

func TestBCCRequiresCDT(t *testing.T) {
	f := newFixture(t)
	if _, err := f.person.AddBCC("Broken", nil, uml.One); err == nil {
		t.Error("BCC without CDT must fail")
	}
	if _, err := f.person.AddASCC("Broken", nil, uml.One, uml.AggregationNone); err == nil {
		t.Error("ASCC without target must fail")
	}
}

func TestENUM(t *testing.T) {
	f := newFixture(t)
	e, err := f.enumLib.AddENUM("CountryType_Code")
	if err != nil {
		t.Fatal(err)
	}
	e.AddLiteral("USA", "United States of America").
		AddLiteral("AUT", "Austria").
		AddLiteral("AUS", "Australia")
	if got := e.LiteralNames(); len(got) != 3 || got[1] != "AUT" {
		t.Errorf("LiteralNames = %v", got)
	}
	if !e.HasLiteral("AUT") || e.HasLiteral("DEU") {
		t.Error("HasLiteral wrong")
	}
	if e.Library() != f.enumLib {
		t.Error("ENUM library link broken")
	}
	if f.model.FindENUM("CountryType_Code") != e {
		t.Error("FindENUM failed")
	}
}

func TestElementCount(t *testing.T) {
	f := newFixture(t)
	if got := f.cdtLib.ElementCount(); got != 3 {
		t.Errorf("cdtLib.ElementCount = %d, want 3", got)
	}
	if got := f.ccLib.ElementCount(); got != 2 {
		t.Errorf("ccLib.ElementCount = %d, want 2", got)
	}
}

func TestCDTSupLookup(t *testing.T) {
	f := newFixture(t)
	if s := f.code.Sup("CodeListName"); s == nil || s.Card != uml.One {
		t.Errorf("Sup(CodeListName) = %v", s)
	}
	if s := f.code.Sup("LanguageIdentifier"); s == nil || s.Card != uml.Optional {
		t.Errorf("Sup(LanguageIdentifier) = %v", s)
	}
	if f.code.Sup("Nope") != nil {
		t.Error("missing SUP should be nil")
	}
}

func TestOwnershipAccessors(t *testing.T) {
	f := newFixture(t)
	bcc := f.person.FindBCC("FirstName")
	if bcc.Owner() != f.person {
		t.Error("BCC.Owner broken")
	}
	ascc := f.person.FindASCC("Work", "Address")
	if ascc == nil || ascc.Owner() != f.person {
		t.Error("ASCC.Owner broken")
	}
	if f.person.FindASCC("Work", "Attachment") != nil {
		t.Error("FindASCC must match target too")
	}
	if f.person.Library() != f.ccLib {
		t.Error("ACC.Library broken")
	}
	if f.code.DataTypeLibrary() != f.cdtLib {
		t.Error("CDT.DataTypeLibrary broken")
	}
	if f.str.Library() != f.primLib {
		t.Error("PRIM.Library broken")
	}
}
