package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/uml"
)

// deriveFigure1 reproduces the derivation of Figure 1: US_Address drops
// Country; US_Person keeps both BCCs and re-qualifies the two ASCCs.
func deriveFigure1(t *testing.T, f *testFixture) (*ABIE, *ABIE) {
	t.Helper()
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{
		Qualifier: "US",
		BBIEs:     []BBIEPick{{BCC: "PostalCode"}, {BCC: "Street"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	usPerson, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Qualifier: "US",
		BBIEs:     []BBIEPick{{BCC: "DateofBirth"}, {BCC: "FirstName"}},
		ASBIEs: []ASBIEPick{
			{Role: "Private", Target: usAddress, Rename: "US_Private"},
			{Role: "Work", Target: usAddress, Rename: "US_Work"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return usPerson, usAddress
}

func TestDeriveABIEFigure1(t *testing.T) {
	f := newFixture(t)
	usPerson, usAddress := deriveFigure1(t, f)

	if usAddress.Name != "US_Address" || usPerson.Name != "US_Person" {
		t.Fatalf("names = %q, %q", usAddress.Name, usPerson.Name)
	}
	if usAddress.Qualifier() != "US" || usPerson.Qualifier() != "US" {
		t.Errorf("qualifiers = %q, %q", usAddress.Qualifier(), usPerson.Qualifier())
	}
	// Country was restricted away.
	if usAddress.FindBBIE("Country") != nil {
		t.Error("US_Address must not contain Country")
	}
	if len(usAddress.BBIEs) != 2 {
		t.Errorf("US_Address BBIEs = %d, want 2", len(usAddress.BBIEs))
	}
	if usPerson.BasedOn != f.person || usAddress.BasedOn != f.address {
		t.Error("basedOn links broken")
	}
	if len(usPerson.ASBIEs) != 2 {
		t.Fatalf("US_Person ASBIEs = %d, want 2", len(usPerson.ASBIEs))
	}
	if usPerson.ASBIEs[0].Role != "US_Private" || usPerson.ASBIEs[0].Target != usAddress {
		t.Errorf("first ASBIE = %q -> %q", usPerson.ASBIEs[0].Role, usPerson.ASBIEs[0].Target.Name)
	}
	if f.bieLib.FindABIE("US_Person") != usPerson {
		t.Error("library lookup failed")
	}
}

func TestFigure1EntitySets(t *testing.T) {
	f := newFixture(t)
	usPerson, _ := deriveFigure1(t, f)

	// Paper Section 2.1: the exact resulting set of core components.
	wantCC := []string{
		"Person (ACC)",
		"Person.DateofBirth (BCC)",
		"Person.FirstName (BCC)",
		"Person.Private.Address (ASCC)",
		"Person.Work.Address (ASCC)",
	}
	if got := f.person.EntitySet(); !reflect.DeepEqual(got, wantCC) {
		t.Errorf("Person entity set = %v, want %v", got, wantCC)
	}

	// Paper Section 2.2: the exact resulting set of BIEs.
	wantBIE := []string{
		"US_Person (ABIE)",
		"US_Person.DateofBirth (BBIE)",
		"US_Person.FirstName (BBIE)",
		"US_Person.US_Private.US_Address (ASBIE)",
		"US_Person.US_Work.US_Address (ASBIE)",
	}
	if got := usPerson.EntitySet(); !reflect.DeepEqual(got, wantBIE) {
		t.Errorf("US_Person entity set = %v, want %v", got, wantBIE)
	}
}

func TestDeriveABIEErrors(t *testing.T) {
	f := newFixture(t)

	if _, err := DeriveABIE(f.bieLib, nil, Restriction{}); err == nil {
		t.Error("nil ACC must fail")
	}
	// Unknown BCC.
	if _, err := DeriveABIE(f.bieLib, f.address, Restriction{
		BBIEs: []BBIEPick{{BCC: "Nonexistent"}},
	}); err == nil {
		t.Error("unknown BCC pick must fail")
	}
	// Unknown ASCC.
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		ASBIEs: []ASBIEPick{{Role: "Nope"}},
	}); err == nil {
		t.Error("unknown ASCC pick must fail")
	}
	// Ambiguous ASCC role without TargetACC: give Person two ASCCs with
	// the same role but different targets.
	att, err := f.ccLib.AddACC("Attachment")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddASCC("Included", f.address, uml.One, uml.AggregationComposite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.person.AddASCC("Included", att, uml.One, uml.AggregationComposite); err != nil {
		t.Fatal(err)
	}
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{Qualifier: "US"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:   "AmbPerson",
		ASBIEs: []ASBIEPick{{Role: "Included", Target: usAddress}},
	}); err == nil {
		t.Error("ambiguous role pick without TargetACC must fail")
	}
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:   "DisambPerson",
		ASBIEs: []ASBIEPick{{Role: "Included", TargetACC: "Address", Target: usAddress}},
	}); err != nil {
		t.Errorf("disambiguated pick should work: %v", err)
	}

	// Failed derivation must leave the library unchanged.
	before := len(f.bieLib.ABIEs)
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:  "Broken",
		BBIEs: []BBIEPick{{BCC: "Nonexistent"}},
	}); err == nil {
		t.Fatal("expected failure")
	}
	if len(f.bieLib.ABIEs) != before {
		t.Error("failed derivation must not attach the ABIE")
	}
}

func TestDeriveABIEWrongTargetABIE(t *testing.T) {
	f := newFixture(t)
	// An ABIE based on Person cannot serve as target of an ASBIE whose
	// ASCC points at Address.
	wrongTarget, err := DeriveABIE(f.bieLib, f.person, Restriction{Name: "OtherPerson"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = DeriveABIE(f.bieLib, f.person, Restriction{
		Name:   "BadPerson",
		ASBIEs: []ASBIEPick{{Role: "Private", Target: wrongTarget}},
	})
	if err == nil || !strings.Contains(err.Error(), "based on ACC") {
		t.Errorf("wrong-target derivation error = %v", err)
	}
}

func TestDeriveABIECardinalityNarrowing(t *testing.T) {
	f := newFixture(t)
	opt := uml.Optional
	many := uml.Many
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{
		Qualifier: "US",
		BBIEs:     []BBIEPick{{BCC: "Street"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Making a required BBIE optional is a legal restriction (the paper's
	// ABIE Application keeps CreatedDate as [0..1] although the BCC is
	// required).
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:  "OptPerson",
		BBIEs: []BBIEPick{{BCC: "FirstName", Card: &opt}},
	}); err != nil {
		t.Errorf("relaxing a BBIE to optional should work: %v", err)
	}
	// Widening 1 -> 0..* on a BBIE upper bound is not a restriction.
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:  "WidePerson",
		BBIEs: []BBIEPick{{BCC: "FirstName", Card: &many}},
	}); err == nil {
		t.Error("widening BBIE upper bound must fail")
	}
	// Widening 1 -> 0..* on an ASBIE is not a restriction.
	if _, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Name:   "WideAssoc",
		ASBIEs: []ASBIEPick{{Role: "Private", Target: usAddress, Card: &many}},
	}); err == nil {
		t.Error("widening ASBIE cardinality must fail")
	}
}

func TestDeriveABIEQDTNarrowing(t *testing.T) {
	f := newFixture(t)
	enum, err := f.enumLib.AddENUM("CountryType_Code")
	if err != nil {
		t.Fatal(err)
	}
	enum.AddLiteral("USA", "United States of America")
	countryType, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{
		Name:        "CountryType",
		ContentEnum: enum,
		Sups:        []SupPick{{Sup: "CodeListName"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	abie, err := DeriveABIE(f.bieLib, f.address, Restriction{
		Qualifier: "AU",
		BBIEs: []BBIEPick{
			{BCC: "Country", Rename: "CountryName", Type: countryType},
			{BCC: "Street"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bbie := abie.FindBBIE("CountryName")
	if bbie == nil || bbie.Type != countryType {
		t.Fatalf("CountryName BBIE = %v", bbie)
	}
	if bbie.BasedOn.Name != "Country" {
		t.Errorf("basedOn BCC = %q", bbie.BasedOn.Name)
	}

	// A QDT based on a different CDT is rejected.
	textQDT, err := DeriveQDT(f.qdtLib, f.text, QDTRestriction{Name: "ShortText"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveABIE(f.bieLib, f.address, Restriction{
		Name:  "BadAddress",
		BBIEs: []BBIEPick{{BCC: "Country", Type: textQDT}},
	}); err == nil {
		t.Error("QDT of foreign CDT must fail")
	}
}

func TestDeriveQDT(t *testing.T) {
	f := newFixture(t)
	enum, err := f.enumLib.AddENUM("CouncilType_Code")
	if err != nil {
		t.Fatal(err)
	}
	enum.AddLiteral("portphillip", "Port Phillip City Council")

	opt := uml.Optional
	councilType, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{
		Name:        "CouncilType",
		ContentEnum: enum,
		Sups:        []SupPick{{Sup: "CodeListName", Card: &opt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if councilType.BasedOn != f.code {
		t.Error("basedOn broken")
	}
	if councilType.ContentEnum() != enum {
		t.Error("ContentEnum broken")
	}
	if len(councilType.Sups) != 1 || councilType.Sups[0].Name != "CodeListName" {
		t.Errorf("Sups = %v", councilType.Sups)
	}
	if councilType.Sups[0].Card != uml.Optional {
		t.Errorf("SUP card = %v, want 0..1", councilType.Sups[0].Card)
	}
	if councilType.Sup("CodeListName") == nil || councilType.Sup("Nope") != nil {
		t.Error("QDT.Sup lookup broken")
	}

	// Plain QDT without enum keeps the primitive content.
	plain, err := DeriveQDT(f.qdtLib, f.text, QDTRestriction{Name: "PlainText"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ContentEnum() != nil {
		t.Error("plain QDT should have no content enum")
	}
	if plain.Content.Type.TypeName() != "String" {
		t.Errorf("content = %q", plain.Content.Type.TypeName())
	}
}

func TestDeriveQDTErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := DeriveQDT(f.qdtLib, nil, QDTRestriction{Name: "X"}); err == nil {
		t.Error("nil CDT must fail")
	}
	if _, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{}); err == nil {
		t.Error("missing name must fail")
	}
	if _, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{
		Name: "X", Sups: []SupPick{{Sup: "Nonexistent"}},
	}); err == nil {
		t.Error("unknown SUP pick must fail")
	}
	// Widening a SUP cardinality is not a restriction. LanguageIdentifier
	// is 0..1; 0..* would widen it.
	many := uml.Many
	if _, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{
		Name: "Y", Sups: []SupPick{{Sup: "LanguageIdentifier", Card: &many}},
	}); err == nil {
		t.Error("widening SUP cardinality must fail")
	}
}

func TestCheckRestrictionDirect(t *testing.T) {
	f := newFixture(t)
	intPrim := mustPrim(t, f.primLib, "Integer")

	// Foreign SUP.
	q := &QDT{Name: "Bad", BasedOn: f.code, Content: f.code.Content,
		Sups: []SupplementaryComponent{{Name: "Invented", Type: f.str, Card: uml.One}}}
	if err := q.CheckRestriction(); err == nil {
		t.Error("foreign SUP must fail")
	}
	// Changed content primitive.
	q2 := &QDT{Name: "Bad2", BasedOn: f.code, Content: Content(intPrim)}
	if err := q2.CheckRestriction(); err == nil {
		t.Error("changed content primitive must fail")
	}
	// Changed SUP primitive.
	q3 := &QDT{Name: "Bad3", BasedOn: f.code, Content: f.code.Content,
		Sups: []SupplementaryComponent{{Name: "CodeListName", Type: intPrim, Card: uml.One}}}
	if err := q3.CheckRestriction(); err == nil {
		t.Error("changed SUP primitive must fail")
	}
	// No basedOn.
	q4 := &QDT{Name: "Bad4", Content: f.code.Content}
	if err := q4.CheckRestriction(); err == nil {
		t.Error("missing basedOn must fail")
	}
	// Missing content type.
	q5 := &QDT{Name: "Bad5", BasedOn: f.code}
	if err := q5.CheckRestriction(); err == nil {
		t.Error("missing content type must fail")
	}
}

func TestABIEDuplicateMembers(t *testing.T) {
	f := newFixture(t)
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{
		Qualifier: "US", BBIEs: []BBIEPick{{BCC: "Street"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	street := f.address.FindBCC("Street")
	if _, err := usAddress.AddBBIE("Street", street, nil, uml.One); err == nil {
		t.Error("duplicate BBIE must fail")
	}

	usPerson, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Qualifier: "US",
		ASBIEs:    []ASBIEPick{{Role: "Private", Target: usAddress}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ascc := f.person.FindASCC("Private", "Address")
	if _, err := usPerson.AddASBIE("Private", ascc, usAddress, uml.One, uml.AggregationComposite); err == nil {
		t.Error("duplicate ASBIE must fail")
	}
}

func TestBBIEForeignBCC(t *testing.T) {
	f := newFixture(t)
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{Qualifier: "US"})
	if err != nil {
		t.Fatal(err)
	}
	foreign := f.person.FindBCC("FirstName")
	if _, err := usAddress.AddBBIE("FirstName", foreign, nil, uml.One); err == nil {
		t.Error("BBIE based on a foreign ACC's BCC must fail")
	}
	if _, err := usAddress.AddBBIE("X", nil, nil, uml.One); err == nil {
		t.Error("BBIE without basedOn must fail")
	}
}

func TestASBIEForeignASCCAndNilTarget(t *testing.T) {
	f := newFixture(t)
	att, err := f.ccLib.AddACC("Attachment")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := att.AddASCC("Owner", f.person, uml.One, uml.AggregationComposite); err != nil {
		t.Fatal(err)
	}
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{Qualifier: "US"})
	if err != nil {
		t.Fatal(err)
	}
	foreignASCC := att.FindASCC("Owner", "Person")
	if _, err := usAddress.AddASBIE("Owner", foreignASCC, usAddress, uml.One, uml.AggregationComposite); err == nil {
		t.Error("ASBIE based on a foreign ACC's ASCC must fail")
	}
	ascc := f.person.FindASCC("Private", "Address")
	usPerson, err := DeriveABIE(f.bieLib, f.person, Restriction{Qualifier: "US"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := usPerson.AddASBIE("Private", ascc, nil, uml.One, uml.AggregationComposite); err == nil {
		t.Error("ASBIE without target must fail")
	}
	if _, err := usPerson.AddASBIE("Private", nil, usAddress, uml.One, uml.AggregationComposite); err == nil {
		t.Error("ASBIE without basedOn must fail")
	}
}

func TestQualifierEdgeCases(t *testing.T) {
	f := newFixture(t)
	same, err := DeriveABIE(f.bieLib, f.address, Restriction{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Name != "Address" || same.Qualifier() != "" {
		t.Errorf("unqualified derive: name=%q qualifier=%q", same.Name, same.Qualifier())
	}
	renamed, err := DeriveABIE(f.bieLib, f.address, Restriction{Name: "Location"})
	if err != nil {
		t.Fatal(err)
	}
	if renamed.Qualifier() != "" {
		t.Errorf("free rename should have empty qualifier, got %q", renamed.Qualifier())
	}
	orphan := &ABIE{Name: "X"}
	if orphan.Qualifier() != "" {
		t.Error("ABIE without basedOn should have empty qualifier")
	}
}

func TestASBIEElementName(t *testing.T) {
	f := newFixture(t)
	usAddress, err := DeriveABIE(f.bieLib, f.address, Restriction{Qualifier: "US"})
	if err != nil {
		t.Fatal(err)
	}
	usPerson, err := DeriveABIE(f.bieLib, f.person, Restriction{
		Qualifier: "US",
		ASBIEs:    []ASBIEPick{{Role: "Private", Target: usAddress, Rename: "Assigned"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "The name of an ASBIE is determined by the role name of the
	// ASBIE aggregation plus the name of the target ABIE."
	if got := usPerson.ASBIEs[0].ElementName(); got != "AssignedUS_Address" {
		t.Errorf("ElementName = %q", got)
	}
}

func TestDENs(t *testing.T) {
	f := newFixture(t)
	usPerson, _ := deriveFigure1(t, f)

	cases := []struct{ got, want string }{
		{f.person.DEN(), "Person. Details"},
		{f.person.FindBCC("DateofBirth").DEN(), "Person. Dateof Birth. Date"},
		{f.person.FindBCC("FirstName").DEN(), "Person. First Name. Text"},
		{f.person.FindASCC("Private", "Address").DEN(), "Person. Private. Address"},
		{usPerson.DEN(), "US Person. Details"},
		{usPerson.FindBBIE("FirstName").DEN(), "US Person. First Name. Text"},
		{usPerson.ASBIEs[0].DEN(), "US Person. US Private. US Address"},
		{f.code.DEN(), "Code. Type"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("DEN = %q, want %q", c.got, c.want)
		}
	}
}

func TestQDTDEN(t *testing.T) {
	f := newFixture(t)
	q, err := DeriveQDT(f.qdtLib, f.code, QDTRestriction{Name: "CountryType"})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.DEN(); got != "Country Type. Type" {
		t.Errorf("QDT DEN = %q", got)
	}
}
