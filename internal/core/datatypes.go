package core

import "fmt"

// ComponentType is the type of a content or supplementary component:
// either a primitive (PRIM) or an enumeration (ENUM) restricting the
// value space.
type ComponentType interface {
	// TypeName returns the model-level name (e.g. "String",
	// "CountryType_Code").
	TypeName() string
	componentType() // marker
}

// DataType is the type of a basic component: a core data type (CDT) or a
// qualified data type (QDT). The paper (Section 2.2): "The data type of a
// basic business information entity can either be a core data type (CDT)
// or a qualified data type (QDT)." BCCs only ever use CDTs.
type DataType interface {
	// TypeName returns the model-level name (e.g. "Code", "CountryType").
	TypeName() string
	// DataTypeLibrary returns the library defining the data type.
	DataTypeLibrary() *Library
	dataType() // marker
}

// PRIM is one of the CCTS primitive types (String, Boolean, Integer in
// the paper's package 7; CCTS 2.01 additionally defines Binary, Decimal,
// Double, Float, TimeDuration and TimePoint).
type PRIM struct {
	Name       string
	Definition string

	library *Library
}

// TypeName implements ComponentType.
func (p *PRIM) TypeName() string { return p.Name }

func (p *PRIM) componentType() {}

// Library returns the owning PRIMLibrary.
func (p *PRIM) Library() *Library { return p.library }

// ENUM is an enumeration type defined in an ENUMLibrary. Assigning an
// ENUM to a content or supplementary component restricts its values, as
// the QDTs CountryType and CouncilType do in the paper's package 3.
type ENUM struct {
	Name       string
	Definition string
	Literals   []EnumLiteral

	library *Library
}

// EnumLiteral is one code value, e.g. AUT = "Austria".
type EnumLiteral struct {
	// Name is the code written into instances ("AUT").
	Name string
	// Value is the human-readable meaning ("Austria").
	Value string
}

// TypeName implements ComponentType.
func (e *ENUM) TypeName() string { return e.Name }

func (e *ENUM) componentType() {}

// Library returns the owning ENUMLibrary.
func (e *ENUM) Library() *Library { return e.library }

// AddLiteral appends a literal and returns the ENUM for chaining.
func (e *ENUM) AddLiteral(name, value string) *ENUM {
	e.Literals = append(e.Literals, EnumLiteral{Name: name, Value: value})
	return e
}

// LiteralNames returns the code values in declaration order.
func (e *ENUM) LiteralNames() []string {
	out := make([]string, len(e.Literals))
	for i, l := range e.Literals {
		out[i] = l.Name
	}
	return out
}

// HasLiteral reports whether the code value is part of the enumeration.
func (e *ENUM) HasLiteral(name string) bool {
	for _, l := range e.Literals {
		if l.Name == name {
			return true
		}
	}
	return false
}

// ContentComponent is the CON part of a data type: "The content component
// element carries the actual content of the core data type."  Exactly one
// per CDT/QDT.
type ContentComponent struct {
	// Name is conventionally "Content".
	Name string
	// Type is a PRIM for CDTs; QDTs may restrict it with an ENUM.
	Type ComponentType
}

// Content is a convenience constructor for the conventional content
// component named "Content".
func Content(t ComponentType) ContentComponent {
	return ContentComponent{Name: "Content", Type: t}
}

// SupplementaryComponent is a SUP part: "supplementary components can be
// regarded as meta information about the content component."
type SupplementaryComponent struct {
	Name string
	// Type is a PRIM or an ENUM.
	Type ComponentType
	// Card is usually 1 (required attribute) or 0..1 (optional), matching
	// use="required"/"optional" in the generated schema.
	Card Cardinality
	// Definition is emitted as annotation when the generator runs with
	// annotations enabled.
	Definition string
}

// CDT is a core data type: a complex data type according to the approved
// Core Component Types of the CCTS standard, e.g. Code or DateTime. By
// definition CDTs carry no business semantics.
type CDT struct {
	Name       string
	Definition string
	Content    ContentComponent
	Sups       []SupplementaryComponent

	library *Library
}

// TypeName implements DataType.
func (d *CDT) TypeName() string { return d.Name }

func (d *CDT) dataType() {}

// DataTypeLibrary implements DataType.
func (d *CDT) DataTypeLibrary() *Library { return d.library }

// AddSup appends a supplementary component and returns the CDT for
// chaining.
func (d *CDT) AddSup(name string, t ComponentType, card Cardinality) *CDT {
	d.Sups = append(d.Sups, SupplementaryComponent{Name: name, Type: t, Card: card})
	return d
}

// Sup returns the supplementary component with the given name, or nil.
func (d *CDT) Sup(name string) *SupplementaryComponent {
	for i := range d.Sups {
		if d.Sups[i].Name == name {
			return &d.Sups[i]
		}
	}
	return nil
}

// QDT is a qualified data type, created from a CDT by restriction: a
// subset of the CDT's supplementary components, and content/supplementary
// components optionally restricted to enumerations.
type QDT struct {
	Name       string
	Definition string
	BasedOn    *CDT
	Content    ContentComponent
	Sups       []SupplementaryComponent

	library *Library
}

// TypeName implements DataType.
func (d *QDT) TypeName() string { return d.Name }

func (d *QDT) dataType() {}

// DataTypeLibrary implements DataType.
func (d *QDT) DataTypeLibrary() *Library { return d.library }

// Sup returns the supplementary component with the given name, or nil.
func (d *QDT) Sup(name string) *SupplementaryComponent {
	for i := range d.Sups {
		if d.Sups[i].Name == name {
			return &d.Sups[i]
		}
	}
	return nil
}

// ContentEnum returns the ENUM restricting the content component, or nil
// when the content is a plain primitive.
func (d *QDT) ContentEnum() *ENUM {
	if e, ok := d.Content.Type.(*ENUM); ok {
		return e
	}
	return nil
}

// CheckRestriction verifies that the QDT is a legal restriction of its
// base CDT: every SUP must exist on the CDT with a narrowed (or equal)
// cardinality, and the content component must keep the CDT's primitive or
// restrict it with an ENUM. This is re-run by internal/validate for
// models built by hand or imported from XMI.
func (d *QDT) CheckRestriction() error {
	if d.BasedOn == nil {
		return fmt.Errorf("core: QDT %q has no basedOn CDT", d.Name)
	}
	switch d.Content.Type.(type) {
	case *PRIM:
		if base, ok := d.BasedOn.Content.Type.(*PRIM); !ok || base.Name != d.Content.Type.TypeName() {
			return fmt.Errorf("core: QDT %q content primitive %q differs from CDT %q content %q",
				d.Name, d.Content.Type.TypeName(), d.BasedOn.Name, d.BasedOn.Content.Type.TypeName())
		}
	case *ENUM:
		// Restricting the content with an enumeration is always a
		// restriction of the base value space.
	default:
		return fmt.Errorf("core: QDT %q has no content component type", d.Name)
	}
	for _, s := range d.Sups {
		base := d.BasedOn.Sup(s.Name)
		if base == nil {
			return fmt.Errorf("core: QDT %q adds SUP %q not present on CDT %q (derivation is by restriction only)",
				d.Name, s.Name, d.BasedOn.Name)
		}
		// SUPs are meta information; a QDT may make a required SUP
		// optional (the paper's CouncilType keeps CodeListName as [0..1]
		// although Code requires it) but must not widen the upper bound.
		if base.Card.Upper != Unbounded && (s.Card.Upper == Unbounded || s.Card.Upper > base.Card.Upper) {
			return fmt.Errorf("core: QDT %q SUP %q cardinality %s widens CDT cardinality %s",
				d.Name, s.Name, s.Card, base.Card)
		}
		if _, ok := s.Type.(*ENUM); ok {
			continue // enum restriction of a SUP is always legal
		}
		if s.Type.TypeName() != base.Type.TypeName() {
			return fmt.Errorf("core: QDT %q SUP %q type %q differs from CDT SUP type %q",
				d.Name, s.Name, s.Type.TypeName(), base.Type.TypeName())
		}
	}
	return nil
}
