package core

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/uml"
)

// ABIE is an aggregate business information entity: a core component
// qualified and refined for a specific business context, derived from an
// ACC exclusively by restriction.
type ABIE struct {
	// Name includes the optional context qualifier prefix, e.g.
	// "US_Person" (the paper shows the business context "by adding an
	// optional prefix to the name of the underlying core component").
	Name       string
	Definition string
	// Version is emitted in annotations; the CCTS standard makes Version
	// and Definition mandatory annotation fields for ABIEs.
	Version string
	BasedOn *ACC
	BBIEs   []*BBIE
	ASBIEs  []*ASBIE

	library *Library
	// context is the business context the ABIE was qualified for; see
	// context.go.
	context Context
}

// Library returns the owning BIELibrary or DOCLibrary.
func (a *ABIE) Library() *Library { return a.library }

// Qualifier returns the context qualifier prefix of the ABIE name
// relative to its underlying ACC ("US" for US_Person based on Person), or
// "" when the ABIE keeps the ACC name.
func (a *ABIE) Qualifier() string {
	if a.BasedOn == nil {
		return ""
	}
	base := a.BasedOn.Name
	if a.Name == base {
		return ""
	}
	if n := len(a.Name) - len(base); n > 1 && a.Name[n-1] == '_' && a.Name[n:] == base {
		return a.Name[:n-1]
	}
	return ""
}

// AddBBIE appends a basic business information entity restricting the
// given BCC of the underlying ACC. dt must be the BCC's own CDT or a QDT
// based on it; card must be within the BCC cardinality.
func (a *ABIE) AddBBIE(name string, basedOn *BCC, dt DataType, card Cardinality) (*BBIE, error) {
	if basedOn == nil {
		return nil, fmt.Errorf("core: BBIE %q of ABIE %q requires a basedOn BCC", name, a.Name)
	}
	if a.BasedOn != nil && basedOn.Owner() != a.BasedOn {
		return nil, fmt.Errorf("core: BBIE %q of ABIE %q: BCC %q belongs to ACC %q, not to the underlying ACC %q",
			name, a.Name, basedOn.Name, basedOn.Owner().Name, a.BasedOn.Name)
	}
	if dt == nil {
		dt = basedOn.Type
	}
	if err := checkBBIEType(basedOn, dt); err != nil {
		return nil, fmt.Errorf("core: BBIE %q of ABIE %q: %w", name, a.Name, err)
	}
	if !cardRestricts(card, basedOn.Card) {
		return nil, fmt.Errorf("core: BBIE %q of ABIE %q: cardinality %s widens BCC cardinality %s",
			name, a.Name, card, basedOn.Card)
	}
	if a.FindBBIE(name) != nil {
		return nil, fmt.Errorf("core: ABIE %q already has a BBIE %q", a.Name, name)
	}
	b := &BBIE{Name: name, BasedOn: basedOn, Type: dt, Card: card, owner: a}
	a.BBIEs = append(a.BBIEs, b)
	return b, nil
}

// cardRestricts reports whether the derived cardinality is a legal
// restriction of the base: a BIE may lower the lower bound (making a
// required component optional is weaker than omitting it, which
// derivation-by-restriction always allows — the paper's ABIE Application
// keeps CreatedDate as [0..1]) but must not widen the upper bound.
func cardRestricts(derived, base Cardinality) bool {
	if base.Upper == Unbounded {
		return true
	}
	return derived.Upper != Unbounded && derived.Upper <= base.Upper
}

// checkBBIEType verifies the BBIE data type is the BCC's CDT or a QDT
// derived from it.
func checkBBIEType(bcc *BCC, dt DataType) error {
	switch t := dt.(type) {
	case *CDT:
		if t != bcc.Type {
			return fmt.Errorf("CDT %q differs from the BCC's CDT %q", t.Name, bcc.Type.Name)
		}
	case *QDT:
		if t.BasedOn != bcc.Type {
			return fmt.Errorf("QDT %q is based on CDT %q, but the BCC uses CDT %q",
				t.Name, t.BasedOn.Name, bcc.Type.Name)
		}
	default:
		return fmt.Errorf("unsupported data type %T", dt)
	}
	return nil
}

// AddASBIE appends an association business information entity restricting
// the given ASCC. target must be an ABIE based on the ASCC's target ACC;
// card must be within the ASCC cardinality. Role defaults to the ASCC
// role (with the ABIE's qualifier, modelers often re-qualify, e.g.
// US_Private — any role is accepted, the basedOn link carries the
// semantics).
func (a *ABIE) AddASBIE(role string, basedOn *ASCC, target *ABIE, card Cardinality, kind uml.AggregationKind) (*ASBIE, error) {
	if basedOn == nil {
		return nil, fmt.Errorf("core: ASBIE %q of ABIE %q requires a basedOn ASCC", role, a.Name)
	}
	if a.BasedOn != nil && basedOn.Owner() != a.BasedOn {
		return nil, fmt.Errorf("core: ASBIE %q of ABIE %q: ASCC belongs to ACC %q, not to the underlying ACC %q",
			role, a.Name, basedOn.Owner().Name, a.BasedOn.Name)
	}
	if target == nil {
		return nil, fmt.Errorf("core: ASBIE %q of ABIE %q requires a target ABIE", role, a.Name)
	}
	if target.BasedOn != basedOn.Target {
		return nil, fmt.Errorf("core: ASBIE %q of ABIE %q: target ABIE %q is based on ACC %q, but the ASCC points at ACC %q",
			role, a.Name, target.Name, target.BasedOn.Name, basedOn.Target.Name)
	}
	if !cardRestricts(card, basedOn.Card) {
		return nil, fmt.Errorf("core: ASBIE %q of ABIE %q: cardinality %s widens ASCC cardinality %s",
			role, a.Name, card, basedOn.Card)
	}
	if a.FindASBIE(role, target.Name) != nil {
		return nil, fmt.Errorf("core: ABIE %q already has an ASBIE %q to %q", a.Name, role, target.Name)
	}
	s := &ASBIE{Role: role, BasedOn: basedOn, Target: target, Card: card, Kind: kind, owner: a}
	a.ASBIEs = append(a.ASBIEs, s)
	return s, nil
}

// FindBBIE returns the BBIE with the given name, or nil.
func (a *ABIE) FindBBIE(name string) *BBIE {
	for _, b := range a.BBIEs {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// FindASBIE returns the ASBIE with the given role and target ABIE name,
// or nil. As with ASCCs, the pair is the identity: HoardingPermit has two
// Included ASBIEs with different targets.
func (a *ABIE) FindASBIE(role, targetName string) *ASBIE {
	for _, s := range a.ASBIEs {
		if s.Role == role && s.Target.Name == targetName {
			return s
		}
	}
	return nil
}

// BBIE is a basic business information entity: an atomic business value
// restricting a BCC, typed by the BCC's CDT or a QDT derived from it.
type BBIE struct {
	Name       string
	Definition string
	BasedOn    *BCC
	Type       DataType
	Card       Cardinality

	owner *ABIE
}

// Owner returns the ABIE declaring this BBIE.
func (b *BBIE) Owner() *ABIE { return b.owner }

// ASBIE is an association business information entity: a restricted ASCC
// pointing at another ABIE. When transferred into a schema its element
// name is the role name plus the target ABIE name (IncludedAttachment).
type ASBIE struct {
	Role       string
	Definition string
	BasedOn    *ASCC
	Target     *ABIE
	Card       Cardinality
	// Kind selects the generation style: composite aggregations become
	// inline local elements; shared aggregations are declared globally
	// and referenced (Figure 7).
	Kind uml.AggregationKind

	owner *ABIE
}

// Owner returns the ABIE declaring this ASBIE.
func (s *ASBIE) Owner() *ABIE { return s.owner }

// ElementName returns the compound schema element name: role name + target
// ABIE name, e.g. Included + Attachment = "IncludedAttachment".
func (s *ASBIE) ElementName() string { return s.Role + s.Target.Name }
