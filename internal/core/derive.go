package core

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/uml"
)

// This file implements the derivation-by-restriction mechanism of CCTS
// (paper Section 2.3.1): "ABIEs are exclusively derived from ACCs by
// restriction" and "qualified data types (QDT) are created from core data
// types by restriction". The Derive* functions are the checked, intended
// way to create BIEs and QDTs; the low-level Add* constructors exist for
// the profile/XMI importers and are re-verified by internal/validate.

// BBIEPick selects one BCC of the underlying ACC for inclusion in a
// derived ABIE.
type BBIEPick struct {
	// BCC is the name of the basic core component to keep.
	BCC string
	// Rename optionally renames the BBIE; empty keeps the BCC name.
	Rename string
	// Type optionally narrows the data type to a QDT based on the BCC's
	// CDT; nil keeps the CDT.
	Type DataType
	// Card optionally narrows the cardinality; nil keeps the BCC's.
	Card *Cardinality
}

// ASBIEPick selects one ASCC of the underlying ACC for inclusion in a
// derived ABIE.
type ASBIEPick struct {
	// Role and TargetACC identify the ASCC (role names alone are not
	// unique). TargetACC may be empty when the role is unambiguous.
	Role      string
	TargetACC string
	// Target is the ABIE the ASBIE points at; it must be based on the
	// ASCC's target ACC.
	Target *ABIE
	// Rename optionally changes the role name (e.g. US_Private); empty
	// keeps the ASCC role.
	Rename string
	// Card optionally narrows the cardinality.
	Card *Cardinality
	// Kind optionally overrides the aggregation kind; nil keeps the
	// ASCC's.
	Kind *uml.AggregationKind
}

// Restriction describes how an ABIE restricts its underlying ACC.
type Restriction struct {
	// Qualifier is the business-context prefix ("US" produces
	// "US_Person"). Empty keeps the ACC name.
	Qualifier string
	// Name optionally overrides the derived name entirely.
	Name string
	// BBIEs are the basic components to keep. Every omitted BCC is
	// restricted away, like Country in the paper's US_Address.
	BBIEs []BBIEPick
	// ASBIEs are the association components to keep.
	ASBIEs []ASBIEPick
}

// QualifiedName applies the qualifier prefix convention of the paper
// ("the specific business context ... is shown by adding an optional
// prefix to the name of the underlying core component").
func QualifiedName(qualifier, base string) string {
	if qualifier == "" {
		return base
	}
	return qualifier + "_" + base
}

// DeriveABIE creates an ABIE in lib by restricting acc according to r.
// All restriction rules are checked; any violation aborts the derivation
// with an error and leaves lib unchanged.
func DeriveABIE(lib *Library, acc *ACC, r Restriction) (*ABIE, error) {
	if acc == nil {
		return nil, fmt.Errorf("core: DeriveABIE requires an ACC")
	}
	name := r.Name
	if name == "" {
		name = QualifiedName(r.Qualifier, acc.Name)
	}
	abie := &ABIE{Name: name, BasedOn: acc, library: lib}
	for _, pick := range r.BBIEs {
		bcc := acc.FindBCC(pick.BCC)
		if bcc == nil {
			return nil, fmt.Errorf("core: DeriveABIE %q: ACC %q has no BCC %q", name, acc.Name, pick.BCC)
		}
		bname := pick.Rename
		if bname == "" {
			bname = bcc.Name
		}
		card := bcc.Card
		if pick.Card != nil {
			card = *pick.Card
		}
		if _, err := abie.AddBBIE(bname, bcc, pick.Type, card); err != nil {
			return nil, err
		}
	}
	for _, pick := range r.ASBIEs {
		ascc := findASCCPick(acc, pick)
		if ascc == nil {
			return nil, fmt.Errorf("core: DeriveABIE %q: ACC %q has no ASCC %q (target %q)",
				name, acc.Name, pick.Role, pick.TargetACC)
		}
		role := pick.Rename
		if role == "" {
			role = ascc.Role
		}
		card := ascc.Card
		if pick.Card != nil {
			card = *pick.Card
		}
		kind := ascc.Kind
		if pick.Kind != nil {
			kind = *pick.Kind
		}
		if _, err := abie.AddASBIE(role, ascc, pick.Target, card, kind); err != nil {
			return nil, err
		}
	}
	// Attach only after every pick validated, so a failed derivation
	// leaves the library untouched.
	if err := lib.requireKind("ABIE", KindBIELibrary, KindDOCLibrary); err != nil {
		return nil, err
	}
	lib.ABIEs = append(lib.ABIEs, abie)
	return abie, nil
}

func findASCCPick(acc *ACC, pick ASBIEPick) *ASCC {
	if pick.TargetACC != "" {
		return acc.FindASCC(pick.Role, pick.TargetACC)
	}
	var found *ASCC
	for _, s := range acc.ASCCs {
		if s.Role == pick.Role {
			if found != nil {
				return nil // ambiguous without TargetACC
			}
			found = s
		}
	}
	return found
}

// SupPick selects one supplementary component of the underlying CDT for
// inclusion in a derived QDT.
type SupPick struct {
	// Sup is the name of the supplementary component to keep.
	Sup string
	// Enum optionally restricts the SUP's values to an enumeration.
	Enum *ENUM
	// Card optionally narrows the cardinality.
	Card *Cardinality
}

// QDTRestriction describes how a QDT restricts its underlying CDT.
type QDTRestriction struct {
	// Name is the qualified data type name (CountryType, CouncilType).
	Name string
	// ContentEnum optionally restricts the content component's values to
	// an enumeration; nil keeps the CDT's primitive content type.
	ContentEnum *ENUM
	// Sups are the supplementary components to keep; omitted SUPs are
	// restricted away (the paper keeps only CodeListName of Code's four
	// SUPs).
	Sups []SupPick
}

// DeriveQDT creates a QDT in lib by restricting cdt according to r.
func DeriveQDT(lib *Library, cdt *CDT, r QDTRestriction) (*QDT, error) {
	if cdt == nil {
		return nil, fmt.Errorf("core: DeriveQDT requires a CDT")
	}
	if r.Name == "" {
		return nil, fmt.Errorf("core: DeriveQDT requires a name")
	}
	content := cdt.Content
	if r.ContentEnum != nil {
		content = ContentComponent{Name: cdt.Content.Name, Type: r.ContentEnum}
	}
	qdt := &QDT{Name: r.Name, BasedOn: cdt, Content: content, library: lib}
	for _, pick := range r.Sups {
		base := cdt.Sup(pick.Sup)
		if base == nil {
			return nil, fmt.Errorf("core: DeriveQDT %q: CDT %q has no SUP %q", r.Name, cdt.Name, pick.Sup)
		}
		sup := *base
		if pick.Enum != nil {
			sup.Type = pick.Enum
		}
		if pick.Card != nil {
			sup.Card = *pick.Card
		}
		qdt.Sups = append(qdt.Sups, sup)
	}
	if err := qdt.CheckRestriction(); err != nil {
		return nil, err
	}
	if err := lib.requireKind("QDT", KindQDTLibrary); err != nil {
		return nil, err
	}
	lib.QDTs = append(lib.QDTs, qdt)
	return qdt, nil
}
