package core

// ModelIndex is the output of the generator pipeline's Resolve phase: a
// set of per-library symbol tables plus memoized NDR naming artifacts
// (schema file names, namespace URNs, element and "...Type" names,
// dictionary entry names). One index is built per model and then shared
// by the schema generator, the validation engine, the instance-sample
// generator and the command-line tools, replacing the ad-hoc name
// recomputation each of them used to do at every use site.
//
// Invariants: a ModelIndex is immutable after construction — every map
// is fully populated by NewModelIndex/IndexLibraries and never written
// afterwards — so it is safe for any number of concurrent readers (the
// parallel Emit phase reads it from every worker goroutine without
// locks). The index reflects the model at resolve time; mutating the
// model afterwards requires building a fresh index.
type ModelIndex struct {
	libs      []*Library
	lib       map[*Library]*LibraryIndex
	libByName map[string]*Library
	// names memoizes XML element names keyed by element pointer
	// (*ABIE root/global elements, *BBIE, *SupplementaryComponent); for
	// *ASBIE the compound role+target element name.
	names map[any]string
	// types memoizes the "...Type" names keyed by element pointer
	// (*ABIE, *CDT, *QDT, *ENUM).
	types map[any]string
	// dens memoizes dictionary entry names keyed by element pointer.
	dens map[any]string
}

// LibraryIndex is the symbol table of one library: constant-time lookup
// of its elements by name, the derived schema file name and the target
// namespace, plus the duplicate element names the validation engine
// reports.
type LibraryIndex struct {
	// Lib is the indexed library.
	Lib *Library
	// File is the memoized schema file name (SchemaFileName).
	File string
	// Namespace is the target namespace (the baseURN tagged value).
	Namespace string

	accs  map[string]*ACC
	abies map[string]*ABIE
	cdts  map[string]*CDT
	qdts  map[string]*QDT
	enums map[string]*ENUM
	prims map[string]*PRIM
	// dups lists every element name occurrence beyond the first, in
	// declaration order (ACCs, ABIEs, CDTs, QDTs, ENUMs, PRIMs).
	dups []string
}

// DENer is any model element with a dictionary entry name.
type DENer interface{ DEN() string }

// NewModelIndex resolves every library of the model into one shared
// index.
func NewModelIndex(m *Model) *ModelIndex {
	ix := newIndex()
	if m != nil {
		for _, lib := range m.Libraries() {
			ix.addLibrary(lib)
		}
	}
	return ix
}

// IndexLibraries resolves the given libraries plus everything they
// transitively reference (ASBIE target libraries, data-type libraries,
// enumeration libraries, underlying core-component libraries). It serves
// detached libraries that have no owning model; libraries attached to a
// model are usually indexed whole via NewModelIndex.
func IndexLibraries(seeds ...*Library) *ModelIndex {
	ix := newIndex()
	var queue []*Library
	enqueue := func(lib *Library) {
		if lib == nil {
			return
		}
		if _, done := ix.lib[lib]; done {
			return
		}
		ix.addLibrary(lib)
		queue = append(queue, lib)
	}
	for _, lib := range seeds {
		enqueue(lib)
	}
	for len(queue) > 0 {
		lib := queue[0]
		queue = queue[1:]
		for _, abie := range lib.ABIEs {
			if abie.BasedOn != nil {
				enqueue(abie.BasedOn.Library())
			}
			for _, bbie := range abie.BBIEs {
				if bbie.Type != nil {
					enqueue(bbie.Type.DataTypeLibrary())
				}
			}
			for _, asbie := range abie.ASBIEs {
				if asbie.Target != nil {
					enqueue(asbie.Target.Library())
				}
			}
		}
		for _, cdt := range lib.CDTs {
			enqueue(componentTypeLibrary(cdt.Content.Type))
			for i := range cdt.Sups {
				enqueue(componentTypeLibrary(cdt.Sups[i].Type))
			}
		}
		for _, qdt := range lib.QDTs {
			if qdt.BasedOn != nil {
				enqueue(qdt.BasedOn.DataTypeLibrary())
			}
			enqueue(componentTypeLibrary(qdt.Content.Type))
			for i := range qdt.Sups {
				enqueue(componentTypeLibrary(qdt.Sups[i].Type))
			}
		}
	}
	return ix
}

func componentTypeLibrary(t ComponentType) *Library {
	switch c := t.(type) {
	case *ENUM:
		return c.Library()
	case *PRIM:
		return c.Library()
	}
	return nil
}

func newIndex() *ModelIndex {
	return &ModelIndex{
		lib:       map[*Library]*LibraryIndex{},
		libByName: map[string]*Library{},
		names:     map[any]string{},
		types:     map[any]string{},
		dens:      map[any]string{},
	}
}

// addLibrary interns one library's symbol table and memoizes the naming
// artifacts of every element. Only called during construction.
func (ix *ModelIndex) addLibrary(lib *Library) {
	if _, done := ix.lib[lib]; done {
		return
	}
	li := &LibraryIndex{
		Lib:       lib,
		File:      SchemaFileName(lib),
		Namespace: lib.BaseURN,
		accs:      make(map[string]*ACC, len(lib.ACCs)),
		abies:     make(map[string]*ABIE, len(lib.ABIEs)),
		cdts:      make(map[string]*CDT, len(lib.CDTs)),
		qdts:      make(map[string]*QDT, len(lib.QDTs)),
		enums:     make(map[string]*ENUM, len(lib.ENUMs)),
		prims:     make(map[string]*PRIM, len(lib.PRIMs)),
	}
	seen := map[string]bool{}
	intern := func(name string) bool {
		dup := seen[name]
		if dup {
			li.dups = append(li.dups, name)
		}
		seen[name] = true
		return dup
	}
	for _, acc := range lib.ACCs {
		if !intern(acc.Name) {
			li.accs[acc.Name] = acc
		}
		ix.dens[acc] = acc.DEN()
		// DEN memoization is skipped for elements with missing members
		// (nil type or association target, detached owner): the
		// validation engine indexes deliberately malformed models to
		// diagnose them, and the accessor fallbacks are never reached
		// for such elements.
		for _, bcc := range acc.BCCs {
			if bcc.owner != nil && bcc.Type != nil {
				ix.dens[bcc] = bcc.DEN()
			}
		}
		for _, ascc := range acc.ASCCs {
			if ascc.owner != nil && ascc.Target != nil {
				ix.dens[ascc] = ascc.DEN()
			}
		}
	}
	for _, abie := range lib.ABIEs {
		if !intern(abie.Name) {
			li.abies[abie.Name] = abie
		}
		ix.names[abie] = XMLName(abie.Name)
		ix.types[abie] = TypeName(abie.Name)
		ix.dens[abie] = abie.DEN()
		for _, bbie := range abie.BBIEs {
			ix.names[bbie] = XMLName(bbie.Name)
			if bbie.owner != nil && bbie.Type != nil {
				ix.dens[bbie] = bbie.DEN()
			}
		}
		for _, asbie := range abie.ASBIEs {
			if asbie.Target != nil {
				ix.names[asbie] = ASBIEElementName(asbie.Role, asbie.Target.Name)
				if asbie.owner != nil {
					ix.dens[asbie] = asbie.DEN()
				}
			}
		}
	}
	for _, cdt := range lib.CDTs {
		if !intern(cdt.Name) {
			li.cdts[cdt.Name] = cdt
		}
		ix.types[cdt] = TypeName(cdt.Name)
		ix.dens[cdt] = cdt.DEN()
		for i := range cdt.Sups {
			ix.names[&cdt.Sups[i]] = XMLName(cdt.Sups[i].Name)
		}
	}
	for _, qdt := range lib.QDTs {
		if !intern(qdt.Name) {
			li.qdts[qdt.Name] = qdt
		}
		ix.types[qdt] = TypeName(qdt.Name)
		ix.dens[qdt] = qdt.DEN()
		for i := range qdt.Sups {
			ix.names[&qdt.Sups[i]] = XMLName(qdt.Sups[i].Name)
		}
	}
	for _, e := range lib.ENUMs {
		if !intern(e.Name) {
			li.enums[e.Name] = e
		}
		ix.types[e] = TypeName(e.Name)
	}
	for _, p := range lib.PRIMs {
		if !intern(p.Name) {
			li.prims[p.Name] = p
		}
	}
	ix.libs = append(ix.libs, lib)
	ix.lib[lib] = li
	if _, taken := ix.libByName[lib.Name]; !taken {
		ix.libByName[lib.Name] = lib
	}
}

// Libraries returns the indexed libraries in resolve order.
func (ix *ModelIndex) Libraries() []*Library { return ix.libs }

// Library returns the symbol table of the library, or nil when the
// library was not part of the resolve.
func (ix *ModelIndex) Library(lib *Library) *LibraryIndex { return ix.lib[lib] }

// FindLibrary locates an indexed library by name.
func (ix *ModelIndex) FindLibrary(name string) *Library { return ix.libByName[name] }

// SchemaFile returns the memoized schema file name of the library,
// deriving it on the fly for unindexed libraries.
func (ix *ModelIndex) SchemaFile(lib *Library) string {
	if li := ix.lib[lib]; li != nil {
		return li.File
	}
	return SchemaFileName(lib)
}

// Namespace returns the target namespace of the library.
func (ix *ModelIndex) Namespace(lib *Library) string {
	if li := ix.lib[lib]; li != nil {
		return li.Namespace
	}
	return lib.BaseURN
}

// ABIEElementName returns the memoized XML element name of the ABIE
// (used for DOC root elements).
func (ix *ModelIndex) ABIEElementName(a *ABIE) string {
	if n, ok := ix.names[a]; ok {
		return n
	}
	return XMLName(a.Name)
}

// ABIETypeName returns the memoized complexType name of the ABIE.
func (ix *ModelIndex) ABIETypeName(a *ABIE) string {
	if n, ok := ix.types[a]; ok {
		return n
	}
	return TypeName(a.Name)
}

// BBIEElementName returns the memoized XML element name of the BBIE.
func (ix *ModelIndex) BBIEElementName(b *BBIE) string {
	if n, ok := ix.names[b]; ok {
		return n
	}
	return XMLName(b.Name)
}

// ASBIEElementName returns the memoized compound element name of the
// ASBIE (role name + target ABIE name).
func (ix *ModelIndex) ASBIEElementName(s *ASBIE) string {
	if n, ok := ix.names[s]; ok {
		return n
	}
	return ASBIEElementName(s.Role, s.Target.Name)
}

// DataTypeName returns the memoized "...Type" name of a CDT or QDT.
func (ix *ModelIndex) DataTypeName(dt DataType) string {
	if n, ok := ix.types[dt]; ok {
		return n
	}
	return TypeName(dt.TypeName())
}

// ENUMTypeName returns the memoized simpleType name of the enumeration.
func (ix *ModelIndex) ENUMTypeName(e *ENUM) string {
	if n, ok := ix.types[e]; ok {
		return n
	}
	return TypeName(e.Name)
}

// SupAttributeName returns the memoized attribute name of a
// supplementary component.
func (ix *ModelIndex) SupAttributeName(sup *SupplementaryComponent) string {
	if n, ok := ix.names[sup]; ok {
		return n
	}
	return XMLName(sup.Name)
}

// DEN returns the memoized dictionary entry name of any model element,
// deriving it on the fly for unindexed elements. A nil index is allowed
// and always derives.
func (ix *ModelIndex) DEN(v DENer) string {
	if ix != nil {
		if d, ok := ix.dens[v]; ok {
			return d
		}
	}
	return v.DEN()
}

// FindACC looks the ACC up in the library's symbol table.
func (li *LibraryIndex) FindACC(name string) *ACC { return li.accs[name] }

// FindABIE looks the ABIE up in the library's symbol table.
func (li *LibraryIndex) FindABIE(name string) *ABIE { return li.abies[name] }

// FindCDT looks the CDT up in the library's symbol table.
func (li *LibraryIndex) FindCDT(name string) *CDT { return li.cdts[name] }

// FindQDT looks the QDT up in the library's symbol table.
func (li *LibraryIndex) FindQDT(name string) *QDT { return li.qdts[name] }

// FindENUM looks the enumeration up in the library's symbol table.
func (li *LibraryIndex) FindENUM(name string) *ENUM { return li.enums[name] }

// FindPRIM looks the primitive up in the library's symbol table.
func (li *LibraryIndex) FindPRIM(name string) *PRIM { return li.prims[name] }

// Duplicates returns every duplicate element name occurrence (beyond the
// first) in the library, in declaration order; the validation engine
// turns each into a SEM-LIB-4 finding.
func (li *LibraryIndex) Duplicates() []string { return li.dups }
