// Package core implements the conceptual model of the UN/CEFACT Core
// Components Technical Specification (CCTS) 2.01 as described in Section
// 2 of the paper: core components (ACC, BCC, ASCC), business information
// entities (ABIE, BBIE, ASBIE), core and qualified data types (CDT, QDT)
// with content (CON) and supplementary (SUP) components, enumerations
// (ENUM) and primitives (PRIM), organised into typed libraries that are
// grouped into business libraries.
//
// The model is transfer-syntax independent; internal/gen derives XML
// schemas from it and internal/profile maps it to and from the
// stereotyped UML representation.
package core

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/uml"
)

// Cardinality is the occurrence range of a component. It reuses the UML
// multiplicity implementation; CCTS derivation-by-restriction narrows
// cardinalities via Cardinality.Within.
type Cardinality = uml.Multiplicity

// Unbounded re-exports the unbounded upper bound for convenience.
const Unbounded = uml.Unbounded

// LibraryKind identifies the seven library stereotypes of the profile's
// Management package (Figure 3), minus BusinessLibrary which groups
// libraries rather than containing elements.
type LibraryKind int

const (
	// KindCCLibrary contains aggregate core components.
	KindCCLibrary LibraryKind = iota
	// KindBIELibrary contains aggregate business information entities for
	// reuse in DOC libraries.
	KindBIELibrary
	// KindCDTLibrary contains core data types.
	KindCDTLibrary
	// KindQDTLibrary contains qualified data types.
	KindQDTLibrary
	// KindENUMLibrary contains enumeration types.
	KindENUMLibrary
	// KindPRIMLibrary contains primitive types.
	KindPRIMLibrary
	// KindDOCLibrary assembles business information entities into a final
	// business document.
	KindDOCLibrary
)

var libraryKindNames = [...]string{
	KindCCLibrary:   "CCLibrary",
	KindBIELibrary:  "BIELibrary",
	KindCDTLibrary:  "CDTLibrary",
	KindQDTLibrary:  "QDTLibrary",
	KindENUMLibrary: "ENUMLibrary",
	KindPRIMLibrary: "PRIMLibrary",
	KindDOCLibrary:  "DOCLibrary",
}

// String returns the profile stereotype name for the kind.
func (k LibraryKind) String() string {
	if int(k) < len(libraryKindNames) {
		return libraryKindNames[k]
	}
	return fmt.Sprintf("LibraryKind(%d)", int(k))
}

// ParseLibraryKind is the inverse of String.
func ParseLibraryKind(s string) (LibraryKind, error) {
	for i, n := range libraryKindNames {
		if n == s {
			return LibraryKind(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown library kind %q", s)
}

// Model is the root of a core components repository. The paper notes that
// "a core components model can contain multiple business libraries".
type Model struct {
	Name              string
	BusinessLibraries []*BusinessLibrary
}

// NewModel returns an empty model.
func NewModel(name string) *Model { return &Model{Name: name} }

// AddBusinessLibrary appends a business library and returns it.
func (m *Model) AddBusinessLibrary(name string) *BusinessLibrary {
	b := &BusinessLibrary{Name: name, model: m}
	m.BusinessLibraries = append(m.BusinessLibraries, b)
	return b
}

// Libraries returns all libraries across all business libraries, in
// declaration order.
func (m *Model) Libraries() []*Library {
	var out []*Library
	for _, b := range m.BusinessLibraries {
		out = append(out, b.Libraries...)
	}
	return out
}

// FindLibrary locates a library by name across all business libraries.
func (m *Model) FindLibrary(name string) *Library {
	for _, l := range m.Libraries() {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// FindACC locates an aggregate core component by name anywhere in the
// model.
func (m *Model) FindACC(name string) *ACC {
	for _, l := range m.Libraries() {
		for _, a := range l.ACCs {
			if a.Name == name {
				return a
			}
		}
	}
	return nil
}

// FindABIE locates an aggregate business information entity by name
// anywhere in the model.
func (m *Model) FindABIE(name string) *ABIE {
	for _, l := range m.Libraries() {
		for _, a := range l.ABIEs {
			if a.Name == name {
				return a
			}
		}
	}
	return nil
}

// FindCDT locates a core data type by name anywhere in the model.
func (m *Model) FindCDT(name string) *CDT {
	for _, l := range m.Libraries() {
		for _, d := range l.CDTs {
			if d.Name == name {
				return d
			}
		}
	}
	return nil
}

// FindQDT locates a qualified data type by name anywhere in the model.
func (m *Model) FindQDT(name string) *QDT {
	for _, l := range m.Libraries() {
		for _, d := range l.QDTs {
			if d.Name == name {
				return d
			}
		}
	}
	return nil
}

// FindENUM locates an enumeration by name anywhere in the model.
func (m *Model) FindENUM(name string) *ENUM {
	for _, l := range m.Libraries() {
		for _, e := range l.ENUMs {
			if e.Name == name {
				return e
			}
		}
	}
	return nil
}

// FindPRIM locates a primitive type by name anywhere in the model.
func (m *Model) FindPRIM(name string) *PRIM {
	for _, l := range m.Libraries() {
		for _, p := range l.PRIMs {
			if p.Name == name {
				return p
			}
		}
	}
	return nil
}

// BusinessLibrary groups the typed libraries of one business domain, as
// in the left-hand tree of the paper's Figure 4 (the EasyBiz business
// library holding seven sub-libraries).
type BusinessLibrary struct {
	Name string
	// Tags carries annotation tagged values (e.g. copyright, owner).
	Tags      uml.TaggedValues
	Libraries []*Library

	model *Model
}

// Model returns the owning model.
func (b *BusinessLibrary) Model() *Model { return b.model }

// AddLibrary appends a typed library. BaseURN becomes the target
// namespace of the schema generated for the library; the paper: "The
// namespace of a specific schema ... is determined by the tagged value
// baseURN."
func (b *BusinessLibrary) AddLibrary(kind LibraryKind, name, baseURN string) *Library {
	l := &Library{Kind: kind, Name: name, BaseURN: baseURN, business: b}
	b.Libraries = append(b.Libraries, l)
	return l
}

// Library is one typed container of CCTS elements. Which element slices
// may be populated depends on Kind; Add* methods enforce the containment
// rules of the meta model (Figure 2).
type Library struct {
	Kind LibraryKind
	Name string
	// BaseURN is the target namespace of the generated schema.
	BaseURN string
	// NamespacePrefix is the user-chosen prefix for imports of this
	// library's schema; when empty a standard prefix (cdt1, qdt1, bie2,
	// ...) is generated, as in Figure 6 line 14.
	NamespacePrefix string
	// Version participates in generated file names
	// (data_draft_CommonAggregates_0.1.xsd).
	Version string
	// Tags carries annotation tagged values consumed when the generator
	// runs with annotations enabled.
	Tags uml.TaggedValues

	ACCs  []*ACC
	ABIEs []*ABIE
	CDTs  []*CDT
	QDTs  []*QDT
	ENUMs []*ENUM
	PRIMs []*PRIM

	business *BusinessLibrary
}

// Business returns the owning business library.
func (l *Library) Business() *BusinessLibrary { return l.business }

// Model returns the owning model, or nil for a detached library.
func (l *Library) Model() *Model {
	if l.business == nil {
		return nil
	}
	return l.business.model
}

func (l *Library) requireKind(op string, kinds ...LibraryKind) error {
	for _, k := range kinds {
		if l.Kind == k {
			return nil
		}
	}
	return fmt.Errorf("core: %s not allowed in %s %q", op, l.Kind, l.Name)
}

// AddACC creates an aggregate core component. Only CCLibraries contain
// ACCs.
func (l *Library) AddACC(name string) (*ACC, error) {
	if err := l.requireKind("ACC", KindCCLibrary); err != nil {
		return nil, err
	}
	a := &ACC{Name: name, library: l}
	l.ACCs = append(l.ACCs, a)
	return a, nil
}

// AddABIE creates an aggregate business information entity based on the
// given ACC. BIELibraries and DOCLibraries contain ABIEs (the paper's
// DOCLibrary HoardingPermit itself defines two ABIEs).
func (l *Library) AddABIE(name string, basedOn *ACC) (*ABIE, error) {
	if err := l.requireKind("ABIE", KindBIELibrary, KindDOCLibrary); err != nil {
		return nil, err
	}
	if basedOn == nil {
		return nil, fmt.Errorf("core: ABIE %q requires a basedOn ACC", name)
	}
	a := &ABIE{Name: name, BasedOn: basedOn, library: l}
	l.ABIEs = append(l.ABIEs, a)
	return a, nil
}

// AddCDT creates a core data type with the given content component. Only
// CDTLibraries contain CDTs.
func (l *Library) AddCDT(name string, content ContentComponent) (*CDT, error) {
	if err := l.requireKind("CDT", KindCDTLibrary); err != nil {
		return nil, err
	}
	d := &CDT{Name: name, Content: content, library: l}
	l.CDTs = append(l.CDTs, d)
	return d, nil
}

// AddQDT creates a qualified data type based on the given CDT. Only
// QDTLibraries contain QDTs. Restriction legality is enforced by
// DeriveQDT; AddQDT is the low-level constructor used by it and by the
// XMI importer (whose output is re-checked by internal/validate).
func (l *Library) AddQDT(name string, basedOn *CDT, content ContentComponent) (*QDT, error) {
	if err := l.requireKind("QDT", KindQDTLibrary); err != nil {
		return nil, err
	}
	if basedOn == nil {
		return nil, fmt.Errorf("core: QDT %q requires a basedOn CDT", name)
	}
	d := &QDT{Name: name, BasedOn: basedOn, Content: content, library: l}
	l.QDTs = append(l.QDTs, d)
	return d, nil
}

// AddENUM creates an enumeration type. Only ENUMLibraries contain ENUMs.
func (l *Library) AddENUM(name string) (*ENUM, error) {
	if err := l.requireKind("ENUM", KindENUMLibrary); err != nil {
		return nil, err
	}
	e := &ENUM{Name: name, library: l}
	l.ENUMs = append(l.ENUMs, e)
	return e, nil
}

// AddPRIM creates a primitive type. Only PRIMLibraries contain PRIMs.
func (l *Library) AddPRIM(name string) (*PRIM, error) {
	if err := l.requireKind("PRIM", KindPRIMLibrary); err != nil {
		return nil, err
	}
	p := &PRIM{Name: name, library: l}
	l.PRIMs = append(l.PRIMs, p)
	return p, nil
}

// FindABIE locates an ABIE of this library by name.
func (l *Library) FindABIE(name string) *ABIE {
	for _, a := range l.ABIEs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// FindACC locates an ACC of this library by name.
func (l *Library) FindACC(name string) *ACC {
	for _, a := range l.ACCs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ElementCount returns the number of elements contained in the library.
func (l *Library) ElementCount() int {
	return len(l.ACCs) + len(l.ABIEs) + len(l.CDTs) + len(l.QDTs) + len(l.ENUMs) + len(l.PRIMs)
}
