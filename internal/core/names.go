package core

import "strings"

// This file holds the transfer-syntax naming primitives of the UN/CEFACT
// XML Naming and Design Rules that depend only on the typed model: XML
// name derivation, the "Type" suffix, compound ASBIE element names,
// attribute use, schema file names and schema locations. internal/ndr
// re-exports them next to the XSD-specific pieces (prefix allocation,
// built-in mappings, annotations); keeping the primitives here lets the
// ModelIndex memoize them without an import cycle.

// XMLName turns a model element name into a legal XML NCName: spaces and
// dots are removed, other illegal characters become underscores, and a
// leading non-letter is prefixed with an underscore. Names like
// Person_Identification pass through unchanged, matching Figure 6.
func XMLName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9', r == '-':
			if b.Len() == 0 {
				b.WriteByte('_') // NCNames cannot start with a digit or hyphen
			}
			b.WriteRune(r)
		case r == ' ', r == '.':
			// removed entirely
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// TypeName derives the complex/simple type name: the XML name plus the
// Type suffix ("For every aggregate business information entity a
// complexType is defined which is named after the business entity plus a
// Type postfix").
func TypeName(name string) string { return XMLName(name) + "Type" }

// ASBIEElementName composes the element name of an ASBIE: "the role name
// of the ASBIE aggregation plus the name of the target ABIE" —
// Included + Attachment = IncludedAttachment, Billing +
// Person_Identification = BillingPerson_Identification.
func ASBIEElementName(role, targetABIE string) string {
	return XMLName(role) + XMLName(targetABIE)
}

// AttributeUse maps a supplementary component cardinality to the XSD
// attribute use: lower bound 1 is required, 0 is optional (Figure 8).
func AttributeUse(card Cardinality) string {
	if card.Lower >= 1 {
		return "required"
	}
	return "optional"
}

// SchemaFileName derives the generated file name for a library's schema:
// the sanitised library name plus the version, e.g.
// "EB005-HoardingPermit_0.4.xsd". Libraries without a version omit the
// suffix.
func SchemaFileName(lib *Library) string {
	name := fileSafe(lib.Name)
	if lib.Version != "" {
		name += "_" + fileSafe(lib.Version)
	}
	return name + ".xsd"
}

// SchemaLocation builds the schemaLocation for an import: the optional
// directory prefix (as chosen in the generator dialog) plus the file
// name.
func SchemaLocation(dirPrefix string, lib *Library) string {
	if dirPrefix == "" {
		return SchemaFileName(lib)
	}
	return strings.TrimSuffix(dirPrefix, "/") + "/" + SchemaFileName(lib)
}

func fileSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
