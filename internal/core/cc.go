package core

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/uml"
)

// ACC is an aggregate core component: "a collection of related pieces of
// business information, forming a distinct business meaning", e.g. Person
// or Address in the paper's Figure 1.
type ACC struct {
	Name       string
	Definition string
	BCCs       []*BCC
	ASCCs      []*ASCC

	library *Library
}

// Library returns the owning CCLibrary.
func (a *ACC) Library() *Library { return a.library }

// AddBCC appends a basic core component typed by a core data type.
func (a *ACC) AddBCC(name string, cdt *CDT, card Cardinality) (*BCC, error) {
	if cdt == nil {
		return nil, fmt.Errorf("core: BCC %q of ACC %q requires a CDT", name, a.Name)
	}
	if a.FindBCC(name) != nil {
		return nil, fmt.Errorf("core: ACC %q already has a BCC %q", a.Name, name)
	}
	b := &BCC{Name: name, Type: cdt, Card: card, owner: a}
	a.BCCs = append(a.BCCs, b)
	return b, nil
}

// AddASCC appends an association core component pointing at another ACC.
// Role is the association role name (Private, Work in Figure 1); kind is
// the UML aggregation kind the profile draws it with.
func (a *ACC) AddASCC(role string, target *ACC, card Cardinality, kind uml.AggregationKind) (*ASCC, error) {
	if target == nil {
		return nil, fmt.Errorf("core: ASCC %q of ACC %q requires a target ACC", role, a.Name)
	}
	if a.FindASCC(role, target.Name) != nil {
		return nil, fmt.Errorf("core: ACC %q already has an ASCC %q to %q", a.Name, role, target.Name)
	}
	s := &ASCC{Role: role, Target: target, Card: card, Kind: kind, owner: a}
	a.ASCCs = append(a.ASCCs, s)
	return s, nil
}

// FindBCC returns the BCC with the given name, or nil.
func (a *ACC) FindBCC(name string) *BCC {
	for _, b := range a.BCCs {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// FindASCC returns the ASCC with the given role name and target ACC name,
// or nil. Role names alone are not unique: Figure 4's HoardingPermit has
// two ASBIEs both named Included.
func (a *ACC) FindASCC(role, targetName string) *ASCC {
	for _, s := range a.ASCCs {
		if s.Role == role && s.Target.Name == targetName {
			return s
		}
	}
	return nil
}

// BCC is a basic core component: an atomic value such as Street or
// PostalCode, typed by a core data type.
type BCC struct {
	Name       string
	Definition string
	Type       *CDT
	Card       Cardinality

	owner *ACC
}

// Owner returns the ACC declaring this BCC.
func (b *BCC) Owner() *ACC { return b.owner }

// ASCC is an association core component: a dependency between two ACCs,
// such as Person -Private-> Address. "Association core components
// therefore are nothing more than basic core components representing a
// complex type."
type ASCC struct {
	// Role is the association role name ("Private", "Work").
	Role       string
	Definition string
	Target     *ACC
	Card       Cardinality
	// Kind records whether the profile draws the ASCC as a shared or
	// composite aggregation; the generator treats shared aggregations
	// with a global element + ref (Figure 7).
	Kind uml.AggregationKind

	owner *ACC
}

// Owner returns the ACC declaring this ASCC.
func (s *ASCC) Owner() *ACC { return s.owner }
