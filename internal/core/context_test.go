package core

import (
	"testing"
	"testing/quick"
)

func TestContextBasics(t *testing.T) {
	c := NewContext()
	if !c.IsDefault() || c.Specificity() != 0 {
		t.Error("fresh context should be default")
	}
	if c.String() != "(default)" {
		t.Errorf("String = %q", c.String())
	}
	c2 := c.With(CtxGeopolitical, "AT", "DE").With(CtxIndustryClassification, "Travel")
	if c2.IsDefault() || c2.Specificity() != 2 {
		t.Errorf("c2 = %v", c2)
	}
	if !c.IsDefault() {
		t.Error("With must not mutate the receiver")
	}
	want := "Geopolitical=AT,DE; IndustryClassification=Travel"
	if got := c2.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestContextWithPanicsOnUnknownCategory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewContext().With("Weather", "sunny")
}

func TestParseContext(t *testing.T) {
	c, err := ParseContext("Geopolitical=AT,DE; IndustryClassification=Travel")
	if err != nil {
		t.Fatal(err)
	}
	if len(c[CtxGeopolitical]) != 2 || c[CtxIndustryClassification][0] != "Travel" {
		t.Errorf("parsed = %v", c)
	}
	for _, in := range []string{"", "(default)"} {
		c, err := ParseContext(in)
		if err != nil || !c.IsDefault() {
			t.Errorf("ParseContext(%q) = %v, %v", in, c, err)
		}
	}
	for _, bad := range []string{"NoEquals", "Weather=sunny", "Geopolitical=, "} {
		if _, err := ParseContext(bad); err == nil {
			t.Errorf("ParseContext(%q) should fail", bad)
		}
	}
}

func TestContextStringRoundTrip(t *testing.T) {
	f := func(geo, ind bool, v1, v2 uint8) bool {
		c := NewContext()
		if geo {
			c = c.With(CtxGeopolitical, string(rune('A'+v1%26)))
		}
		if ind {
			c = c.With(CtxIndustryClassification, string(rune('A'+v2%26)))
		}
		back, err := ParseContext(c.String())
		return err == nil && back.String() == c.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContextMatches(t *testing.T) {
	at := NewContext().With(CtxGeopolitical, "AT")
	atOrDe := NewContext().With(CtxGeopolitical, "AT", "DE")
	travelAT := at.With(CtxIndustryClassification, "Travel")
	def := NewContext()

	situationAT := NewContext().With(CtxGeopolitical, "AT")
	situationTravelAT := situationAT.With(CtxIndustryClassification, "Travel")
	situationUS := NewContext().With(CtxGeopolitical, "US")

	cases := []struct {
		declared, situation Context
		want                bool
	}{
		{def, situationAT, true}, // default matches everything
		{def, def, true},
		{at, situationAT, true},
		{at, situationUS, false},
		{atOrDe, situationAT, true},    // one of the allowed values
		{at, def, false},               // constrained category unknown
		{travelAT, situationAT, false}, // industry not given
		{travelAT, situationTravelAT, true},
	}
	for i, c := range cases {
		if got := c.declared.Matches(c.situation); got != c.want {
			t.Errorf("case %d: (%s).Matches(%s) = %v, want %v",
				i, c.declared, c.situation, got, c.want)
		}
	}
}

func TestResolveInContext(t *testing.T) {
	f := newFixture(t)

	// Three address BIEs: a default one, an AT one, an AT travel one.
	def, err := DeriveABIE(f.bieLib, f.address, Restriction{Name: "Address"})
	if err != nil {
		t.Fatal(err)
	}
	atAddr, err := DeriveABIE(f.bieLib, f.address, Restriction{Name: "AT_Address"})
	if err != nil {
		t.Fatal(err)
	}
	atAddr.SetContext(NewContext().With(CtxGeopolitical, "AT"))
	travelAddr, err := DeriveABIE(f.bieLib, f.address, Restriction{Name: "ATTravel_Address"})
	if err != nil {
		t.Fatal(err)
	}
	travelAddr.SetContext(NewContext().
		With(CtxGeopolitical, "AT").
		With(CtxIndustryClassification, "Travel"))

	// Unknown situation: only the default applies.
	got, ok := f.model.ResolveInContext(f.address, NewContext())
	if !ok || got != def {
		t.Errorf("default resolution = %v, %v", got, ok)
	}
	// AT situation: the AT-specific BIE wins over the default.
	atSituation := NewContext().With(CtxGeopolitical, "AT")
	got, ok = f.model.ResolveInContext(f.address, atSituation)
	if !ok || got != atAddr {
		t.Errorf("AT resolution = %v", got)
	}
	// AT travel: the most specific BIE wins.
	travelSituation := atSituation.With(CtxIndustryClassification, "Travel")
	got, ok = f.model.ResolveInContext(f.address, travelSituation)
	if !ok || got != travelAddr {
		t.Errorf("travel resolution = %v", got)
	}
	// US situation still falls back to the default.
	got, ok = f.model.ResolveInContext(f.address, NewContext().With(CtxGeopolitical, "US"))
	if !ok || got != def {
		t.Errorf("US resolution = %v", got)
	}
	// An ACC without any BIEs resolves to nothing.
	other, err := f.ccLib.AddACC("Lonely")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.model.ResolveInContext(other, atSituation); ok {
		t.Error("resolution without candidates should fail")
	}
}

func TestABIEContextAccessors(t *testing.T) {
	f := newFixture(t)
	abie, err := DeriveABIE(f.bieLib, f.address, Restriction{Qualifier: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if !abie.Context().IsDefault() {
		t.Error("unset context should be default")
	}
	ctx := NewContext().With(CtxGeopolitical, "AT")
	abie.SetContext(ctx)
	ctx[CtxGeopolitical][0] = "MUTATED"
	if abie.Context()[CtxGeopolitical][0] != "AT" {
		t.Error("SetContext must clone")
	}
}
