package core

import (
	"strings"
	"unicode"
)

// This file implements the naming views the paper uses for core
// components and business information entities:
//
//   - the compact dotted entity paths of Figure 1, e.g.
//     "Person.Private.Address (ASCC)";
//   - CCTS-style dictionary entry names (DEN), e.g.
//     "Person. Date Of Birth. Date", used by the registry for search and
//     harmonisation.

// splitWords splits a CamelCase model name into space-separated words:
// "DateofBirth" -> "Dateof Birth", "CodeListAgName" -> "Code List Ag
// Name". Underscores also separate words.
func splitWords(name string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range name {
		switch {
		case r == '_':
			b.WriteByte(' ')
			prevLower = false
			continue
		case unicode.IsUpper(r) && prevLower:
			b.WriteByte(' ')
		}
		b.WriteRune(r)
		prevLower = unicode.IsLower(r) || unicode.IsDigit(r)
	}
	return b.String()
}

// DEN returns the CCTS dictionary entry name of the ACC:
// "ObjectClassTerm. Details".
func (a *ACC) DEN() string { return splitWords(a.Name) + ". Details" }

// DEN returns the CCTS dictionary entry name of the BCC:
// "ObjectClass. Property Term. Representation Term".
func (b *BCC) DEN() string {
	return splitWords(b.owner.Name) + ". " + splitWords(b.Name) + ". " + splitWords(b.Type.Name)
}

// DEN returns the CCTS dictionary entry name of the ASCC:
// "ObjectClass. Role. Target Object Class".
func (s *ASCC) DEN() string {
	return splitWords(s.owner.Name) + ". " + splitWords(s.Role) + ". " + splitWords(s.Target.Name)
}

// DEN returns the CCTS dictionary entry name of the ABIE:
// "Qualified Object Class. Details".
func (a *ABIE) DEN() string { return splitWords(a.Name) + ". Details" }

// DEN returns the CCTS dictionary entry name of the BBIE.
func (b *BBIE) DEN() string {
	return splitWords(b.owner.Name) + ". " + splitWords(b.Name) + ". " + splitWords(b.Type.TypeName())
}

// DEN returns the CCTS dictionary entry name of the ASBIE.
func (s *ASBIE) DEN() string {
	return splitWords(s.owner.Name) + ". " + splitWords(s.Role) + ". " + splitWords(s.Target.Name)
}

// DEN returns the CCTS dictionary entry name of the CDT:
// "Name. Type".
func (d *CDT) DEN() string { return splitWords(d.Name) + ". Type" }

// DEN returns the CCTS dictionary entry name of the QDT:
// "Qualified Name. Type".
func (d *QDT) DEN() string { return splitWords(d.Name) + ". Type" }

// EntitySet returns the flattened set of core components the ACC results
// in, in the notation of the paper's Section 2.1: "Person (ACC),
// Person.DateofBirth (BCC), Person.FirstName (BCC),
// Person.Private.Address (ASCC), Person.Work.Address (ASCC)".
func (a *ACC) EntitySet() []string {
	out := []string{a.Name + " (ACC)"}
	for _, b := range a.BCCs {
		out = append(out, a.Name+"."+b.Name+" (BCC)")
	}
	for _, s := range a.ASCCs {
		out = append(out, a.Name+"."+s.Role+"."+s.Target.Name+" (ASCC)")
	}
	return out
}

// EntitySet returns the flattened set of business information entities
// the ABIE results in, in the notation of the paper's Section 2.2:
// "US_Person (ABIE), US_Person.DateofBirth (BBIE), ...,
// US_Person.US_Private.US_Address (ASBIE)".
func (a *ABIE) EntitySet() []string {
	out := []string{a.Name + " (ABIE)"}
	for _, b := range a.BBIEs {
		out = append(out, a.Name+"."+b.Name+" (BBIE)")
	}
	for _, s := range a.ASBIEs {
		out = append(out, a.Name+"."+s.Role+"."+s.Target.Name+" (ASBIE)")
	}
	return out
}
