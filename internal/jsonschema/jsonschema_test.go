package jsonschema

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
)

func generateEUOrder(t *testing.T, opts gen.Options) *gen.Output {
	t.Helper()
	f, err := fixture.BuildPurchaseOrder()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gen.PlanDocument(f.EUDocLib, "EU_Order", opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.ExecuteBackend(Backend{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateValidJSON(t *testing.T) {
	out := generateEUOrder(t, gen.Options{})
	if out.Target != "jsonschema" || out.ContentType != ContentType {
		t.Errorf("target/content-type = %q/%q", out.Target, out.ContentType)
	}
	if len(out.Files) == 0 {
		t.Fatal("no files generated")
	}
	for _, file := range out.Files {
		if !strings.HasSuffix(file.Name, ".json") {
			t.Errorf("file %q does not use the .json extension", file.Name)
		}
		var doc map[string]any
		if err := json.Unmarshal(file.Data, &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", file.Name, err)
		}
		if doc["$schema"] != Draft {
			t.Errorf("%s: $schema = %v, want %s", file.Name, doc["$schema"], Draft)
		}
		if _, ok := doc["$defs"].(map[string]any); !ok {
			t.Errorf("%s: missing $defs object", file.Name)
		}
	}
}

func TestDocumentRootRef(t *testing.T) {
	out := generateEUOrder(t, gen.Options{})
	var doc map[string]any
	if err := json.Unmarshal(out.Files[0].Data, &doc); err != nil {
		t.Fatal(err)
	}
	ref, _ := doc["$ref"].(string)
	if !strings.HasPrefix(ref, "#/$defs/") {
		t.Fatalf("primary document $ref = %q, want a local root pointer", ref)
	}
	defs := doc["$defs"].(map[string]any)
	if _, ok := defs[strings.TrimPrefix(ref, "#/$defs/")]; !ok {
		t.Errorf("root $ref %q does not resolve within $defs", ref)
	}
}

// TestCrossFileRefsResolve checks every external $ref points at a file
// in the same output set and at a definition that file actually holds.
func TestCrossFileRefsResolve(t *testing.T) {
	out := generateEUOrder(t, gen.Options{})
	defsByFile := map[string]map[string]any{}
	for _, file := range out.Files {
		var doc struct {
			Defs map[string]any `json:"$defs"`
		}
		if err := json.Unmarshal(file.Data, &doc); err != nil {
			t.Fatal(err)
		}
		defsByFile[file.Name] = doc.Defs
	}
	for _, file := range out.Files {
		for _, ref := range collectRefs(t, file.Data) {
			doc, frag, ok := strings.Cut(ref, "#/$defs/")
			if !ok {
				t.Errorf("%s: $ref %q is not a $defs pointer", file.Name, ref)
				continue
			}
			target := file.Name
			if doc != "" {
				target = doc
			}
			defs, ok := defsByFile[target]
			if !ok {
				t.Errorf("%s: $ref %q points outside the generated set", file.Name, ref)
				continue
			}
			if _, ok := defs[frag]; !ok {
				t.Errorf("%s: $ref %q names a definition %s does not declare", file.Name, ref, target)
			}
		}
	}
}

func collectRefs(t *testing.T, data []byte) []string {
	t.Helper()
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var refs []string
	var walk func(v any)
	walk = func(v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, vv := range x {
				if k == "$ref" {
					if s, ok := vv.(string); ok {
						refs = append(refs, s)
					}
					continue
				}
				walk(vv)
			}
		case []any:
			for _, vv := range x {
				walk(vv)
			}
		}
	}
	walk(doc)
	return refs
}

func TestScalarMapping(t *testing.T) {
	cases := map[string]struct{ typ, format string }{
		"xsd:string":       {"string", ""},
		"xsd:decimal":      {"number", ""},
		"xsd:date":         {"string", "date"},
		"xsd:dateTime":     {"string", "date-time"},
		"xsd:boolean":      {"boolean", ""},
	}
	for in, want := range cases {
		n := scalarNode(in)
		if n.Type != want.typ {
			t.Errorf("scalarNode(%q).Type = %q, want %q", in, n.Type, want.typ)
		}
		if n.Format != want.format {
			t.Errorf("scalarNode(%q).Format = %q, want %q", in, n.Format, want.format)
		}
	}
	if n := scalarNode("xsd:base64Binary"); n.Type != "string" || n.ContentEncoding != "base64" {
		t.Errorf("scalarNode(xsd:base64Binary) = %+v, want base64-encoded string", n)
	}
	// Non-xsd names pass through as target-native types.
	if n := scalarNode("integer"); n.Type != "integer" {
		t.Errorf("passthrough scalarNode(\"integer\").Type = %q", n.Type)
	}
}
