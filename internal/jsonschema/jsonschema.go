// Package jsonschema is the JSON Schema (draft 2020-12) backend of the
// generation pipeline: the same Resolve/Plan phases that drive the XSD
// generator feed a gen.Backend that renders one schema document per
// planned library unit. Business information entities become object
// schemas under $defs, data types become value-object schemas
// (chardata value plus supplementary-component properties, mirroring
// the Figure 8 XSD pattern), enumerations become string enums, and
// cross-library references become cross-document "$ref"s — so a JSON
// consumer sees the same modular library structure an XML consumer
// gets from the xsd:import graph.
package jsonschema

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/ndr"
)

// Draft is the JSON Schema dialect every generated document declares.
const Draft = "https://json-schema.org/draft/2020-12/schema"

// ContentType is the media type of generated documents.
const ContentType = "application/schema+json"

// Node is one schema object. Fields marshal in declaration order, and
// the only maps ($defs, properties) marshal with encoding/json's
// sorted keys, so serialization is deterministic by construction.
type Node struct {
	Schema               string           `json:"$schema,omitempty"`
	ID                   string           `json:"$id,omitempty"`
	Title                string           `json:"title,omitempty"`
	Description          string           `json:"description,omitempty"`
	Ref                  string           `json:"$ref,omitempty"`
	Type                 string           `json:"type,omitempty"`
	Format               string           `json:"format,omitempty"`
	ContentEncoding      string           `json:"contentEncoding,omitempty"`
	Enum                 []string         `json:"enum,omitempty"`
	Properties           map[string]*Node `json:"properties,omitempty"`
	Required             []string         `json:"required,omitempty"`
	AdditionalProperties *bool            `json:"additionalProperties,omitempty"`
	Items                *Node            `json:"items,omitempty"`
	MinItems             int              `json:"minItems,omitempty"`
	Defs                 map[string]*Node `json:"$defs,omitempty"`
}

// def is the per-op fragment: one named entry of a unit's $defs.
type def struct {
	name string
	node *Node
}

// Backend implements gen.Backend for JSON Schema. EmitOp is pure — each
// operation derives its $defs entry from the immutable plan alone — so
// the pool parallelizes it, and Assemble merges fragments in plan
// order.
type Backend struct{}

// Target implements gen.Backend.
func (Backend) Target() string { return "jsonschema" }

// ContentType implements gen.Backend.
func (Backend) ContentType() string { return ContentType }

// FileName derives a unit's document name from its XSD file name.
func FileName(u *gen.Unit) string {
	return strings.TrimSuffix(u.File(), ".xsd") + ".json"
}

// EmitOp implements gen.Backend.
func (Backend) EmitOp(p *gen.Plan, u *gen.Unit, op gen.Op) (gen.Fragment, error) {
	ix := p.Index()
	switch {
	case op.ABIE() != nil:
		return emitABIE(p, u, op.ABIE()), nil
	case op.CDT() != nil:
		cdt := op.CDT()
		base := scalarOf(p, cdt.Name, ndr.ContentBuiltin(cdt))
		return def{name: ix.DataTypeName(cdt), node: valueObject(p, base, cdt.Definition, cdt.Sups)}, nil
	case op.QDT() != nil:
		return emitQDT(p, u, op.QDT()), nil
	default:
		e := op.ENUM()
		n := &Node{Type: "string", Enum: e.LiteralNames()}
		if p.Annotate() {
			n.Description = e.Definition
		}
		return def{name: ix.ENUMTypeName(e), node: n}, nil
	}
}

// Assemble implements gen.Backend: one document per unit, $defs filled
// from the fragments, the document plan's root ABIE promoted to the
// primary document's top-level $ref.
func (Backend) Assemble(p *gen.Plan, frags [][]gen.Fragment) (*gen.Output, error) {
	out := &gen.Output{}
	for i, u := range p.Units() {
		doc := &Node{
			Schema: Draft,
			ID:     p.Namespace(u.Library()),
			Defs:   map[string]*Node{},
		}
		for _, f := range frags[i] {
			d := f.(def)
			doc.Defs[d.name] = d.node
		}
		if i == 0 && p.Root() != nil {
			root := p.Root()
			doc.Title = p.Index().ABIEElementName(root)
			doc.Ref = "#/$defs/" + p.Index().ABIETypeName(root)
			out.RootElement = doc.Title
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("jsonschema: serializing %s: %w", FileName(u), err)
		}
		out.Files = append(out.Files, gen.OutFile{Name: FileName(u), Data: append(data, '\n')})
	}
	return out, nil
}

// refTo builds the $ref from a unit to a type defined in the unit of
// lib: same-document refs use a local pointer, foreign ones the target
// document name (overridable per namespace through the profile's
// import map).
func refTo(p *gen.Plan, from *gen.Unit, lib *core.Library, typeName string) string {
	if lib == from.Library() {
		return "#/$defs/" + typeName
	}
	doc := ""
	for _, u := range p.Units() {
		if u.Library() == lib {
			doc = FileName(u)
			break
		}
	}
	if override, ok := p.Profile().Import(p.Namespace(lib)); ok {
		doc = override
	}
	return doc + "#/$defs/" + typeName
}

// emitABIE maps an ABIE to an object schema: BBIEs and ASBIEs become
// properties named like the XML elements, cardinality maps to
// required/array.
func emitABIE(p *gen.Plan, u *gen.Unit, abie *core.ABIE) def {
	ix := p.Index()
	f := false
	n := &Node{Type: "object", Properties: map[string]*Node{}, AdditionalProperties: &f}
	if p.Annotate() {
		n.Description = abie.Definition
	}
	for _, bbie := range abie.BBIEs {
		dtLib := bbie.Type.DataTypeLibrary()
		prop := &Node{Ref: refTo(p, u, dtLib, ix.DataTypeName(bbie.Type))}
		name := ix.BBIEElementName(bbie)
		n.Properties[name] = withCard(prop, bbie.Card)
		if bbie.Card.Lower >= 1 {
			n.Required = append(n.Required, name)
		}
	}
	for _, asbie := range abie.ASBIEs {
		targetLib := asbie.Target.Library()
		prop := &Node{Ref: refTo(p, u, targetLib, ix.ABIETypeName(asbie.Target))}
		name := ix.ASBIEElementName(asbie)
		n.Properties[name] = withCard(prop, asbie.Card)
		if asbie.Card.Lower >= 1 {
			n.Required = append(n.Required, name)
		}
	}
	return def{name: ix.ABIETypeName(abie), node: n}
}

// emitQDT maps a qualified data type: enum-restricted content refers to
// the enumeration schema, primitive content inherits the CDT's
// representation-term refinement.
func emitQDT(p *gen.Plan, u *gen.Unit, qdt *core.QDT) def {
	ix := p.Index()
	var content *Node
	switch t := qdt.Content.Type.(type) {
	case *core.ENUM:
		content = &Node{Ref: refTo(p, u, t.Library(), ix.ENUMTypeName(t))}
	case *core.PRIM:
		base := ndr.XSDBuiltin(t)
		if qdt.BasedOn != nil {
			base = ndr.ContentBuiltin(qdt.BasedOn)
		}
		content = scalarOf(p, qdt.Name, base)
	}
	if override, ok := p.Datatype(qdt.Name); ok {
		content = scalarNode(override)
	}
	n := supObject(p, content, qdt.Definition, qdt.Sups, func(sup *core.SupplementaryComponent) *Node {
		if en, ok := sup.Type.(*core.ENUM); ok {
			return &Node{Ref: refTo(p, u, en.Library(), ix.ENUMTypeName(en))}
		}
		return nil
	})
	return def{name: ix.DataTypeName(qdt), node: n}
}

// valueObject maps a CDT: the content component becomes the "value"
// property, supplementary components become sibling properties
// (mirroring XSD's simpleContent extension with attributes).
func valueObject(p *gen.Plan, content *Node, definition string, sups []core.SupplementaryComponent) *Node {
	return supObject(p, content, definition, sups, func(*core.SupplementaryComponent) *Node { return nil })
}

func supObject(p *gen.Plan, content *Node, definition string, sups []core.SupplementaryComponent, special func(*core.SupplementaryComponent) *Node) *Node {
	f := false
	n := &Node{
		Type:                 "object",
		Properties:           map[string]*Node{"value": content},
		Required:             []string{"value"},
		AdditionalProperties: &f,
	}
	if p.Annotate() {
		n.Description = definition
	}
	ix := p.Index()
	for i := range sups {
		sup := &sups[i]
		prop := special(sup)
		if prop == nil {
			if prim, ok := sup.Type.(*core.PRIM); ok {
				prop = scalarNode(ndr.XSDBuiltin(prim))
			} else {
				prop = &Node{Type: "string"}
			}
		}
		name := ix.SupAttributeName(sup)
		n.Properties[name] = prop
		if sup.Card.Lower >= 1 {
			n.Required = append(n.Required, name)
		}
	}
	return n
}

// withCard wraps a property schema in an array when the cardinality
// allows more than one occurrence.
func withCard(n *Node, card core.Cardinality) *Node {
	if card.Upper == core.Unbounded || card.Upper > 1 {
		arr := &Node{Type: "array", Items: n}
		if card.Lower > 0 {
			arr.MinItems = card.Lower
		}
		return arr
	}
	return n
}

// scalarOf resolves a datatype's scalar schema, honouring the profile
// override for the named CDT/QDT.
func scalarOf(p *gen.Plan, typeName, xsdBuiltin string) *Node {
	if override, ok := p.Datatype(typeName); ok {
		return scalarNode(override)
	}
	return scalarNode(xsdBuiltin)
}

// scalarNode maps an XSD built-in name (xsd:decimal ...) to a JSON
// Schema scalar. Profile overrides may instead give a bare JSON type
// ("number"), which passes through.
func scalarNode(name string) *Node {
	switch name {
	case "xsd:string", "xsd:token", "xsd:normalizedString", "xsd:anyURI", "string":
		return &Node{Type: "string"}
	case "xsd:decimal", "xsd:double", "xsd:float", "number":
		return &Node{Type: "number"}
	case "xsd:integer", "xsd:int", "xsd:long", "xsd:short", "xsd:nonNegativeInteger", "integer":
		return &Node{Type: "integer"}
	case "xsd:boolean", "boolean":
		return &Node{Type: "boolean"}
	case "xsd:date":
		return &Node{Type: "string", Format: "date"}
	case "xsd:time":
		return &Node{Type: "string", Format: "time"}
	case "xsd:dateTime":
		return &Node{Type: "string", Format: "date-time"}
	case "xsd:duration":
		return &Node{Type: "string", Format: "duration"}
	case "xsd:base64Binary":
		return &Node{Type: "string", ContentEncoding: "base64"}
	default:
		if !strings.HasPrefix(name, "xsd:") && name != "" {
			// Profile override in the backend's own vocabulary.
			return &Node{Type: name}
		}
		return &Node{Type: "string"}
	}
}
