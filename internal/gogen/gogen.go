// Package gogen transforms business information entities into Go
// message-binding code. The paper describes exactly this step for the
// object-oriented world: "Similar to the concept pursued in object
// orientation, the two association core components Work and Private will
// become attributes of the aggregate core component Person once the
// model is transferred into code."
//
// For a DOCLibrary root the generator emits one self-contained Go file:
// a struct per reachable ABIE (BBIEs and ASBIEs become fields with
// encoding/xml tags matching the generated schemas), a struct per used
// data type (chardata value plus supplementary-component attributes),
// and constants for enumeration values. Values marshalled with
// encoding/xml validate against the XSD set generated from the same
// model; the test suite compiles and runs generated code to prove it.
package gogen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/ndr"
	"github.com/go-ccts/ccts/internal/uml"
)

// Options configure code generation.
type Options struct {
	// Package is the generated package name; default "messages".
	Package string
}

// GenerateDocument emits Go binding code for the document rooted at the
// named ABIE of a DOCLibrary.
func GenerateDocument(lib *core.Library, rootABIE string, opts Options) (string, error) {
	if lib == nil {
		return "", fmt.Errorf("gogen: nil library")
	}
	if lib.Kind != core.KindDOCLibrary {
		return "", fmt.Errorf("gogen: GenerateDocument requires a DOCLibrary, got %s %q", lib.Kind, lib.Name)
	}
	root := lib.FindABIE(rootABIE)
	if root == nil {
		return "", fmt.Errorf("gogen: DOCLibrary %q has no ABIE %q", lib.Name, rootABIE)
	}
	if opts.Package == "" {
		opts.Package = "messages"
	}
	g := newGenerator()
	rootType, err := g.abie(root)
	if err != nil {
		return "", err
	}
	g.markRoot(root, rootType)
	return g.render(opts.Package), nil
}

type typeDecl struct {
	name string
	code string
	doc  string
}

type generator struct {
	decls     []typeDecl
	usedNames map[string]bool
	typeName  map[any]string
	consts    []string
}

func newGenerator() *generator {
	return &generator{
		usedNames: map[string]bool{},
		typeName:  map[any]string{},
	}
}

// uniqueName allocates a collision-free exported Go identifier.
func (g *generator) uniqueName(base string) string {
	name := goIdent(base)
	candidate := name
	for i := 2; g.usedNames[candidate]; i++ {
		candidate = fmt.Sprintf("%s%d", name, i)
	}
	g.usedNames[candidate] = true
	return candidate
}

// goIdent sanitises a model name into an exported Go identifier.
func goIdent(name string) string {
	var b strings.Builder
	upperNext := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			if upperNext {
				b.WriteString(strings.ToUpper(string(r)))
				upperNext = false
			} else {
				b.WriteRune(r)
			}
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteString("N")
			}
			b.WriteRune(r)
			upperNext = false
		case r == '_':
			b.WriteRune(r)
			upperNext = true
		default:
			upperNext = true
		}
	}
	if b.Len() == 0 {
		return "X"
	}
	return b.String()
}

// abie emits the struct for an ABIE and returns its Go type name.
func (g *generator) abie(abie *core.ABIE) (string, error) {
	if name, ok := g.typeName[abie]; ok {
		return name, nil
	}
	lib := abie.Library()
	if lib == nil {
		return "", fmt.Errorf("gogen: ABIE %q has no owning library", abie.Name)
	}
	name := g.uniqueName(abie.Name)
	g.typeName[abie] = name // pre-register for recursive models

	var fields []string
	for _, bbie := range abie.BBIEs {
		ft, err := g.dataType(bbie.Type)
		if err != nil {
			return "", fmt.Errorf("gogen: BBIE %q of ABIE %q: %w", bbie.Name, abie.Name, err)
		}
		fields = append(fields, field(
			goIdent(bbie.Name),
			ft,
			lib.BaseURN, ndr.XMLName(bbie.Name),
			bbie.Card,
			bbie.DEN(),
		))
	}
	for _, asbie := range abie.ASBIEs {
		tt, err := g.abie(asbie.Target)
		if err != nil {
			return "", err
		}
		elementName := ndr.ASBIEElementName(asbie.Role, asbie.Target.Name)
		fields = append(fields, field(
			goIdent(elementName),
			tt,
			lib.BaseURN, elementName,
			asbie.Card,
			asbie.DEN(),
		))
	}
	code := fmt.Sprintf("type %s struct {\n%s}\n", name, strings.Join(fields, ""))
	g.decls = append(g.decls, typeDecl{
		name: name,
		code: code,
		doc:  fmt.Sprintf("// %s binds the ABIE %q (%s).\n", name, abie.Name, abie.DEN()),
	})
	return name, nil
}

// field renders one struct field with its xml tag.
func field(goName, goType, ns, element string, card core.Cardinality, den string) string {
	tag := fmt.Sprintf("%s %s", ns, element)
	typ := goType
	omit := ""
	switch {
	case card.Upper == uml.Unbounded || card.Upper > 1:
		typ = "[]" + goType
		omit = ",omitempty"
	case card.Lower == 0:
		typ = "*" + goType
		omit = ",omitempty"
	}
	return fmt.Sprintf("\t// %s\n\t%s %s `xml:\"%s%s\"`\n", den, goName, typ, tag, omit)
}

// dataType emits the struct for a CDT/QDT and returns its Go type name.
func (g *generator) dataType(dt core.DataType) (string, error) {
	if name, ok := g.typeName[dt]; ok {
		return name, nil
	}
	var (
		content core.ContentComponent
		sups    []core.SupplementaryComponent
		den     string
	)
	switch t := dt.(type) {
	case *core.CDT:
		content, sups, den = t.Content, t.Sups, t.DEN()
	case *core.QDT:
		content, sups, den = t.Content, t.Sups, t.DEN()
	default:
		return "", fmt.Errorf("unsupported data type %T", dt)
	}
	name := g.uniqueName(dt.TypeName() + "Type")
	g.typeName[dt] = name

	var fields []string
	fields = append(fields, fmt.Sprintf("\t// %s carries the content component.\n\tValue string `xml:\",chardata\"`\n", "Value"))
	for i := range sups {
		sup := &sups[i]
		omit := ""
		if sup.Card.Lower == 0 {
			omit = ",omitempty"
		}
		fields = append(fields, fmt.Sprintf("\t%s string `xml:\"%s,attr%s\"`\n",
			goIdent(sup.Name), ndr.XMLName(sup.Name), omit))
	}
	code := fmt.Sprintf("type %s struct {\n%s}\n", name, strings.Join(fields, ""))
	g.decls = append(g.decls, typeDecl{
		name: name,
		code: code,
		doc:  fmt.Sprintf("// %s binds the data type %q (%s).\n", name, dt.TypeName(), den),
	})
	if e, ok := content.Type.(*core.ENUM); ok {
		g.enumConstants(name, e)
	}
	return name, nil
}

// enumConstants emits one string constant per enumeration literal.
func (g *generator) enumConstants(typeName string, e *core.ENUM) {
	var b strings.Builder
	fmt.Fprintf(&b, "// Values allowed for the content of %s (%s).\nconst (\n", typeName, e.Name)
	seen := map[string]bool{}
	for _, l := range e.Literals {
		constName := goIdent(typeName + "_" + l.Name)
		if seen[constName] {
			continue
		}
		seen[constName] = true
		fmt.Fprintf(&b, "\t%s = %q // %s\n", constName, l.Name, l.Value)
	}
	b.WriteString(")\n")
	g.consts = append(g.consts, b.String())
}

// markRoot attaches the XMLName field to the root struct so marshalled
// documents carry the root element name.
func (g *generator) markRoot(root *core.ABIE, rootType string) {
	lib := root.Library()
	for i := range g.decls {
		if g.decls[i].name != rootType {
			continue
		}
		insert := fmt.Sprintf("\t// XMLName fixes the root element name.\n\tXMLName xml.Name `xml:\"%s %s\"`\n",
			lib.BaseURN, ndr.XMLName(root.Name))
		g.decls[i].code = strings.Replace(g.decls[i].code, "struct {\n", "struct {\n"+insert, 1)
		return
	}
}

// render assembles the final source file, deterministically ordered.
func (g *generator) render(pkg string) string {
	var b strings.Builder
	b.WriteString("// Code generated by go-ccts gogen; DO NOT EDIT.\n")
	b.WriteString("// Message bindings derived from a CCTS core components model.\n\n")
	fmt.Fprintf(&b, "package %s\n\nimport \"encoding/xml\"\n\n", pkg)
	// Keep generation order (root first, dependencies after) but make
	// the enum constants stable.
	for _, d := range g.decls {
		b.WriteString(d.doc)
		b.WriteString(d.code)
		b.WriteString("\n")
	}
	consts := append([]string(nil), g.consts...)
	sort.Strings(consts)
	for _, c := range consts {
		b.WriteString(c)
		b.WriteString("\n")
	}
	// encoding/xml is only referenced by the root struct; keep the
	// import always-used with a blank assertion.
	b.WriteString("// Ensure the xml import is used even for rootless fragments.\nvar _ = xml.Name{}\n")
	return b.String()
}
