package gogen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/xsd"
	"github.com/go-ccts/ccts/internal/xsdval"
)

func generated(t *testing.T) string {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateDocument(f.DOCLib, "HoardingPermit", Options{Package: "messages"})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestGeneratedStructure(t *testing.T) {
	src := generated(t)
	for _, want := range []string{
		"package messages",
		`import "encoding/xml"`,
		"type HoardingPermit struct {",
		"XMLName xml.Name `xml:\"urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit HoardingPermit\"`",
		// Optional BBIE -> pointer with omitempty.
		"ClosureReason *TextType `xml:\"urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit ClosureReason,omitempty\"`",
		// Unbounded ASBIE -> slice.
		"IncludedAttachment []Attachment `xml:\"urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit IncludedAttachment,omitempty\"`",
		// Required ASBIE -> plain field.
		"IncludedRegistration Registration `xml:\"urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit IncludedRegistration\"`",
		// Data types with content + SUP attributes.
		"type TextType struct {",
		"Value string `xml:\",chardata\"`",
		"LanguageIdentifier string `xml:\"LanguageIdentifier,attr,omitempty\"`",
		"type CountryTypeType struct {",
		"CodeListName string `xml:\"CodeListName,attr,omitempty\"`",
		// Enum constants.
		`CountryTypeType_AUT = "AUT" // Austria`,
		// The paper's sentence made code: ASBIEs become attributes
		// (fields) of the aggregate.
		"BillingPerson_Identification *Person_Identification",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// Unreachable ABIEs are not bound.
	if strings.Contains(src, "HoardingDetails") {
		t.Error("unreachable HoardingDetails bound")
	}
}

func TestGeneratedDeterministic(t *testing.T) {
	if generated(t) != generated(t) {
		t.Error("generation not deterministic")
	}
}

func TestGenerateErrors(t *testing.T) {
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateDocument(nil, "X", Options{}); err == nil {
		t.Error("nil library must fail")
	}
	if _, err := GenerateDocument(f.Common, "Address", Options{}); err == nil {
		t.Error("non-DOC library must fail")
	}
	if _, err := GenerateDocument(f.DOCLib, "Nope", Options{}); err == nil {
		t.Error("unknown root must fail")
	}
}

func TestGoIdent(t *testing.T) {
	cases := map[string]string{
		"HoardingPermit":        "HoardingPermit",
		"Person_Identification": "Person_Identification",
		"EB005-HoardingPermit":  "EB005HoardingPermit",
		"lower case":            "LowerCase",
		"9lives":                "N9lives",
		"":                      "X",
		"CodeListName":          "CodeListName",
	}
	for in, want := range cases {
		if got := goIdent(in); got != want {
			t.Errorf("goIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompileAndMarshalRoundTrip compiles the generated bindings with a
// driver that marshals a message, runs it, and validates the output
// against the XSD set generated from the same model — proving the
// "transferred into code" claim end to end.
func TestCompileAndMarshalRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateDocument(f.DOCLib, "HoardingPermit", Options{Package: "main"})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module bindingscheck\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bindings.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	driver := `package main

import (
	"encoding/xml"
	"fmt"
	"log"
)

func main() {
	closure := &TextType{Value: "Scaffolding"}
	msg := HoardingPermit{
		ClosureReason: closure,
		IncludedAttachment: []Attachment{
			{Description: &TextType{Value: "Site plan"}},
		},
		IncludedRegistration: Registration{
			Type: &RegistrationType_CodeType{Value: "local"},
		},
		BillingPerson_Identification: &Person_Identification{
			Designation:       IdentifierType{Value: "AU-552-19"},
			PersonalSignature: Signature{},
			AssignedAddress: Address{
				CountryName: &CountryTypeType{Value: CountryTypeType_AUS},
			},
		},
	}
	out, err := xml.MarshalIndent(msg, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(driver), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}

	// The marshalled message validates against the schema set.
	res, err := gen.GenerateDocument(f.DOCLib, "HoardingPermit", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*xsd.Schema
	for _, file := range res.Order {
		schemas = append(schemas, res.Schemas[file])
	}
	set, err := xsdval.NewSchemaSet(schemas...)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := set.ValidateString(string(out))
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, e := range vres.Errors {
		t.Errorf("marshalled message invalid: %s", e)
	}
	if vres.Valid() {
		t.Logf("marshalled message validates:\n%s", out)
	}
}
