package gogen

import (
	"fmt"
	"strings"

	"github.com/go-ccts/ccts/internal/gen"
)

// Backend adapts the Go binding generator to the gen.Backend
// interface. Go type names come from a stateful collision-avoiding
// allocator whose output depends on emission order, so EmitOp returns
// placeholder fragments and Assemble performs the whole (deterministic,
// sequential) walk — parallel and sequential runs are trivially
// byte-identical.
type Backend struct{}

// Target implements gen.Backend.
func (Backend) Target() string { return "go" }

// ContentType implements gen.Backend; generated Go source is text.
func (Backend) ContentType() string { return "text/plain; charset=utf-8" }

// EmitOp implements gen.Backend.
func (Backend) EmitOp(*gen.Plan, *gen.Unit, gen.Op) (gen.Fragment, error) { return nil, nil }

// Assemble implements gen.Backend: one self-contained Go file for the
// document rooted at the plan's root ABIE.
func (Backend) Assemble(p *gen.Plan, _ [][]gen.Fragment) (*gen.Output, error) {
	units := p.Units()
	if len(units) == 0 {
		return nil, fmt.Errorf("gogen: empty plan")
	}
	root := p.Root()
	if root == nil {
		return nil, fmt.Errorf("gogen: the go target requires a DOCLibrary document run with a root element")
	}
	lib := units[0].Library()
	code, err := GenerateDocument(lib, root.Name, Options{})
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(units[0].File(), ".xsd") + ".go"
	return &gen.Output{
		Files:       []gen.OutFile{{Name: name, Data: []byte(code)}},
		RootElement: p.Index().ABIEElementName(root),
	}, nil
}
