// Package diff compares two versions of a core components model and
// reports the changes per library — the information a harmonisation
// round needs before approving a revised library ("the standardization
// and harmonization process" of the paper's motivation). Elements are
// matched by name within libraries matched by name; member-level changes
// (added/removed BBIEs, retyped components, cardinality changes) are
// reported as modifications.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
)

// Change kinds.
const (
	Added    = "added"
	Removed  = "removed"
	Modified = "modified"
)

// Change is one reported difference.
type Change struct {
	// Kind is Added, Removed or Modified.
	Kind string
	// Element is "ElementKind Library::Name" ("ABIE CommonAggregates::Address").
	Element string
	// Details lists member-level modifications, empty for Added/Removed.
	Details []string
}

// String renders the change for reports.
func (c Change) String() string {
	if len(c.Details) == 0 {
		return c.Kind + " " + c.Element
	}
	return c.Kind + " " + c.Element + ": " + strings.Join(c.Details, "; ")
}

// Report collects all changes between two model versions.
type Report struct {
	Changes []Change
}

// Empty reports whether the models are equivalent under the comparison.
func (r *Report) Empty() bool { return len(r.Changes) == 0 }

// ByKind returns the changes of one kind.
func (r *Report) ByKind(kind string) []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

func (r *Report) add(kind, element string, details ...string) {
	r.Changes = append(r.Changes, Change{Kind: kind, Element: element, Details: details})
}

// Compare diffs two models (old → new).
func Compare(oldModel, newModel *core.Model) *Report {
	r := &Report{}
	oldLibs := libMap(oldModel)
	newLibs := libMap(newModel)

	for _, name := range sortedKeys(oldLibs) {
		newLib, ok := newLibs[name]
		if !ok {
			r.add(Removed, "Library "+name)
			continue
		}
		compareLibrary(r, oldLibs[name], newLib)
	}
	for _, name := range sortedKeys(newLibs) {
		if _, ok := oldLibs[name]; !ok {
			r.add(Added, "Library "+name)
		}
	}
	return r
}

func libMap(m *core.Model) map[string]*core.Library {
	out := map[string]*core.Library{}
	for _, lib := range m.Libraries() {
		out[lib.Name] = lib
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func compareLibrary(r *Report, oldLib, newLib *core.Library) {
	prefix := oldLib.Name + "::"
	var details []string
	if oldLib.BaseURN != newLib.BaseURN {
		details = append(details, fmt.Sprintf("baseURN %q -> %q", oldLib.BaseURN, newLib.BaseURN))
	}
	if oldLib.Version != newLib.Version {
		details = append(details, fmt.Sprintf("version %q -> %q", oldLib.Version, newLib.Version))
	}
	if oldLib.Kind != newLib.Kind {
		details = append(details, fmt.Sprintf("kind %s -> %s", oldLib.Kind, newLib.Kind))
	}
	if len(details) > 0 {
		r.add(Modified, "Library "+oldLib.Name, details...)
	}

	compareNamed(r, "ACC", prefix, accNames(oldLib), accNames(newLib), func(name string) []string {
		return diffACC(oldLib.FindACC(name), newLib.FindACC(name))
	})
	compareNamed(r, "ABIE", prefix, abieNames(oldLib), abieNames(newLib), func(name string) []string {
		return diffABIE(oldLib.FindABIE(name), newLib.FindABIE(name))
	})
	compareNamed(r, "CDT", prefix, cdtNames(oldLib), cdtNames(newLib), func(name string) []string {
		return diffDataType(findCDT(oldLib, name), findCDT(newLib, name))
	})
	compareNamed(r, "QDT", prefix, qdtNames(oldLib), qdtNames(newLib), func(name string) []string {
		return diffQDT(findQDT(oldLib, name), findQDT(newLib, name))
	})
	compareNamed(r, "ENUM", prefix, enumNames(oldLib), enumNames(newLib), func(name string) []string {
		return diffENUM(findENUM(oldLib, name), findENUM(newLib, name))
	})
	compareNamed(r, "PRIM", prefix, primNames(oldLib), primNames(newLib), func(string) []string {
		return nil
	})
}

// compareNamed applies the add/remove/modify pattern to one element
// kind.
func compareNamed(r *Report, kind, prefix string, oldNames, newNames []string, detail func(name string) []string) {
	oldSet := toSet(oldNames)
	newSet := toSet(newNames)
	for _, name := range oldNames {
		if !newSet[name] {
			r.add(Removed, kind+" "+prefix+name)
			continue
		}
		if details := detail(name); len(details) > 0 {
			r.add(Modified, kind+" "+prefix+name, details...)
		}
	}
	for _, name := range newNames {
		if !oldSet[name] {
			r.add(Added, kind+" "+prefix+name)
		}
	}
}

func toSet(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func accNames(lib *core.Library) []string {
	out := make([]string, len(lib.ACCs))
	for i, e := range lib.ACCs {
		out[i] = e.Name
	}
	return out
}

func abieNames(lib *core.Library) []string {
	out := make([]string, len(lib.ABIEs))
	for i, e := range lib.ABIEs {
		out[i] = e.Name
	}
	return out
}

func cdtNames(lib *core.Library) []string {
	out := make([]string, len(lib.CDTs))
	for i, e := range lib.CDTs {
		out[i] = e.Name
	}
	return out
}

func qdtNames(lib *core.Library) []string {
	out := make([]string, len(lib.QDTs))
	for i, e := range lib.QDTs {
		out[i] = e.Name
	}
	return out
}

func enumNames(lib *core.Library) []string {
	out := make([]string, len(lib.ENUMs))
	for i, e := range lib.ENUMs {
		out[i] = e.Name
	}
	return out
}

func primNames(lib *core.Library) []string {
	out := make([]string, len(lib.PRIMs))
	for i, e := range lib.PRIMs {
		out[i] = e.Name
	}
	return out
}

func findCDT(lib *core.Library, name string) *core.CDT {
	for _, d := range lib.CDTs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func findQDT(lib *core.Library, name string) *core.QDT {
	for _, d := range lib.QDTs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func findENUM(lib *core.Library, name string) *core.ENUM {
	for _, e := range lib.ENUMs {
		if e.Name == name {
			return e
		}
	}
	return nil
}

func diffACC(oldACC, newACC *core.ACC) []string {
	var out []string
	oldBCCs := map[string]*core.BCC{}
	for _, b := range oldACC.BCCs {
		oldBCCs[b.Name] = b
	}
	newBCCs := map[string]*core.BCC{}
	for _, b := range newACC.BCCs {
		newBCCs[b.Name] = b
	}
	for _, name := range sortedKeys(oldBCCs) {
		nb, ok := newBCCs[name]
		if !ok {
			out = append(out, "BCC "+name+" removed")
			continue
		}
		ob := oldBCCs[name]
		if ob.Type.Name != nb.Type.Name {
			out = append(out, fmt.Sprintf("BCC %s type %s -> %s", name, ob.Type.Name, nb.Type.Name))
		}
		if ob.Card != nb.Card {
			out = append(out, fmt.Sprintf("BCC %s cardinality %s -> %s", name, ob.Card, nb.Card))
		}
	}
	for _, name := range sortedKeys(newBCCs) {
		if _, ok := oldBCCs[name]; !ok {
			out = append(out, "BCC "+name+" added")
		}
	}
	out = append(out, diffASCCs(oldACC, newACC)...)
	return out
}

func diffASCCs(oldACC, newACC *core.ACC) []string {
	key := func(s *core.ASCC) string { return s.Role + ">" + s.Target.Name }
	oldSet := map[string]*core.ASCC{}
	for _, s := range oldACC.ASCCs {
		oldSet[key(s)] = s
	}
	newSet := map[string]*core.ASCC{}
	for _, s := range newACC.ASCCs {
		newSet[key(s)] = s
	}
	var out []string
	for _, k := range sortedKeys(oldSet) {
		ns, ok := newSet[k]
		if !ok {
			out = append(out, "ASCC "+k+" removed")
			continue
		}
		if oldSet[k].Card != ns.Card {
			out = append(out, fmt.Sprintf("ASCC %s cardinality %s -> %s", k, oldSet[k].Card, ns.Card))
		}
	}
	for _, k := range sortedKeys(newSet) {
		if _, ok := oldSet[k]; !ok {
			out = append(out, "ASCC "+k+" added")
		}
	}
	return out
}

func diffABIE(oldABIE, newABIE *core.ABIE) []string {
	var out []string
	if oldBase, newBase := baseName(oldABIE), baseName(newABIE); oldBase != newBase {
		out = append(out, fmt.Sprintf("basedOn %s -> %s", oldBase, newBase))
	}
	if oldABIE.Context().String() != newABIE.Context().String() {
		out = append(out, fmt.Sprintf("context %s -> %s", oldABIE.Context(), newABIE.Context()))
	}
	oldBBIEs := map[string]*core.BBIE{}
	for _, b := range oldABIE.BBIEs {
		oldBBIEs[b.Name] = b
	}
	newBBIEs := map[string]*core.BBIE{}
	for _, b := range newABIE.BBIEs {
		newBBIEs[b.Name] = b
	}
	for _, name := range sortedKeys(oldBBIEs) {
		nb, ok := newBBIEs[name]
		if !ok {
			out = append(out, "BBIE "+name+" removed")
			continue
		}
		ob := oldBBIEs[name]
		if ob.Type.TypeName() != nb.Type.TypeName() {
			out = append(out, fmt.Sprintf("BBIE %s type %s -> %s", name, ob.Type.TypeName(), nb.Type.TypeName()))
		}
		if ob.Card != nb.Card {
			out = append(out, fmt.Sprintf("BBIE %s cardinality %s -> %s", name, ob.Card, nb.Card))
		}
	}
	for _, name := range sortedKeys(newBBIEs) {
		if _, ok := oldBBIEs[name]; !ok {
			out = append(out, "BBIE "+name+" added")
		}
	}
	key := func(s *core.ASBIE) string { return s.Role + ">" + s.Target.Name }
	oldAS := map[string]bool{}
	for _, s := range oldABIE.ASBIEs {
		oldAS[key(s)] = true
	}
	newAS := map[string]bool{}
	for _, s := range newABIE.ASBIEs {
		newAS[key(s)] = true
	}
	for _, k := range sortedKeys(oldAS) {
		if !newAS[k] {
			out = append(out, "ASBIE "+k+" removed")
		}
	}
	for _, k := range sortedKeys(newAS) {
		if !oldAS[k] {
			out = append(out, "ASBIE "+k+" added")
		}
	}
	return out
}

func baseName(a *core.ABIE) string {
	if a.BasedOn == nil {
		return "(none)"
	}
	return a.BasedOn.Name
}

func diffDataType(oldCDT, newCDT *core.CDT) []string {
	var out []string
	if oldCDT.Content.Type.TypeName() != newCDT.Content.Type.TypeName() {
		out = append(out, fmt.Sprintf("content %s -> %s",
			oldCDT.Content.Type.TypeName(), newCDT.Content.Type.TypeName()))
	}
	out = append(out, diffSups(supsOf(oldCDT.Sups), supsOf(newCDT.Sups))...)
	return out
}

func diffQDT(oldQDT, newQDT *core.QDT) []string {
	var out []string
	if oldQDT.Content.Type.TypeName() != newQDT.Content.Type.TypeName() {
		out = append(out, fmt.Sprintf("content %s -> %s",
			oldQDT.Content.Type.TypeName(), newQDT.Content.Type.TypeName()))
	}
	oldBase, newBase := "", ""
	if oldQDT.BasedOn != nil {
		oldBase = oldQDT.BasedOn.Name
	}
	if newQDT.BasedOn != nil {
		newBase = newQDT.BasedOn.Name
	}
	if oldBase != newBase {
		out = append(out, fmt.Sprintf("basedOn %s -> %s", oldBase, newBase))
	}
	out = append(out, diffSups(supsOf(oldQDT.Sups), supsOf(newQDT.Sups))...)
	return out
}

func supsOf(sups []core.SupplementaryComponent) map[string]core.SupplementaryComponent {
	out := make(map[string]core.SupplementaryComponent, len(sups))
	for _, s := range sups {
		out[s.Name] = s
	}
	return out
}

func diffSups(oldSups, newSups map[string]core.SupplementaryComponent) []string {
	var out []string
	for _, name := range sortedKeys(oldSups) {
		ns, ok := newSups[name]
		if !ok {
			out = append(out, "SUP "+name+" removed")
			continue
		}
		os := oldSups[name]
		if os.Card != ns.Card {
			out = append(out, fmt.Sprintf("SUP %s cardinality %s -> %s", name, os.Card, ns.Card))
		}
	}
	for _, name := range sortedKeys(newSups) {
		if _, ok := oldSups[name]; !ok {
			out = append(out, "SUP "+name+" added")
		}
	}
	return out
}

func diffENUM(oldENUM, newENUM *core.ENUM) []string {
	oldLits := toSet(oldENUM.LiteralNames())
	newLits := toSet(newENUM.LiteralNames())
	var out []string
	for _, name := range sortedKeys(oldLits) {
		if !newLits[name] {
			out = append(out, "literal "+name+" removed")
		}
	}
	for _, name := range sortedKeys(newLits) {
		if !oldLits[name] {
			out = append(out, "literal "+name+" added")
		}
	}
	return out
}
