// Package diff compares two versions of a core components model and
// reports the changes per library — the information a harmonisation
// round needs before approving a revised library ("the standardization
// and harmonization process" of the paper's motivation). Elements are
// matched by name within libraries matched by name; member-level changes
// (added/removed BBIEs, retyped components, cardinality changes) are
// reported as modifications.
//
// Every Change additionally carries a machine-readable Breaking
// classification so automated gates (the schema repository's
// compatibility policy) can consume the report without parsing the
// human-readable details. A change is breaking when a consumer of the
// previously generated schemas could stop validating against the new
// ones: removed elements or members, retyped components, tightened
// cardinalities and removed enumeration literals. Purely additive
// changes (new elements, new members, widened cardinalities, new
// literals) are non-breaking.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
)

// Change kinds.
const (
	Added    = "added"
	Removed  = "removed"
	Modified = "modified"
)

// Change is one reported difference.
type Change struct {
	// Kind is Added, Removed or Modified.
	Kind string
	// Element is "ElementKind Library::Name" ("ABIE CommonAggregates::Address").
	Element string
	// Details lists member-level modifications, empty for Added/Removed.
	Details []string
	// Breaking reports whether the change can invalidate instances or
	// consumers of the previously generated schemas: Removed changes
	// always are; Added changes never are; Modified changes are breaking
	// when any member-level detail is (removal, retyping, tightened
	// cardinality, removed literal).
	Breaking bool
	// BreakingDetails is the subset of Details classified as breaking,
	// in Details order; empty when Breaking is false.
	BreakingDetails []string
}

// String renders the change for reports.
func (c Change) String() string {
	if len(c.Details) == 0 {
		return c.Kind + " " + c.Element
	}
	return c.Kind + " " + c.Element + ": " + strings.Join(c.Details, "; ")
}

// Report collects all changes between two model versions.
type Report struct {
	Changes []Change
}

// Empty reports whether the models are equivalent under the comparison.
func (r *Report) Empty() bool { return len(r.Changes) == 0 }

// ByKind returns the changes of one kind.
func (r *Report) ByKind(kind string) []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// Breaking returns the changes classified as breaking; an empty result
// means the new model is a backward-compatible revision of the old one.
func (r *Report) Breaking() []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Breaking {
			out = append(out, c)
		}
	}
	return out
}

// detail is one member-level modification with its classification.
type detail struct {
	text     string
	breaking bool
}

// brk formats a breaking detail.
func brk(format string, args ...any) detail {
	return detail{text: fmt.Sprintf(format, args...), breaking: true}
}

// add formats an additive (non-breaking) detail.
func add(format string, args ...any) detail {
	return detail{text: fmt.Sprintf(format, args...)}
}

// cardDetail classifies a cardinality change on member what: raising the
// lower bound or lowering the upper bound excludes instances the old
// schema accepted (breaking); pure widening is additive.
func cardDetail(what string, oldCard, newCard core.Cardinality) detail {
	text := fmt.Sprintf("%s cardinality %s -> %s", what, oldCard, newCard)
	return detail{text: text, breaking: tightens(oldCard, newCard)}
}

// tightens reports whether newCard permits fewer occurrences than
// oldCard in either direction.
func tightens(oldCard, newCard core.Cardinality) bool {
	if newCard.Lower > oldCard.Lower {
		return true
	}
	if oldCard.Upper == core.Unbounded {
		return newCard.Upper != core.Unbounded
	}
	return newCard.Upper != core.Unbounded && newCard.Upper < oldCard.Upper
}

func (r *Report) add(kind, element string, details ...detail) {
	c := Change{Kind: kind, Element: element, Breaking: kind == Removed}
	for _, d := range details {
		c.Details = append(c.Details, d.text)
		if d.breaking {
			c.Breaking = true
			c.BreakingDetails = append(c.BreakingDetails, d.text)
		}
	}
	r.Changes = append(r.Changes, c)
}

// Compare diffs two models (old → new).
func Compare(oldModel, newModel *core.Model) *Report {
	r := &Report{}
	oldLibs := libMap(oldModel)
	newLibs := libMap(newModel)

	for _, name := range sortedKeys(oldLibs) {
		newLib, ok := newLibs[name]
		if !ok {
			r.add(Removed, "Library "+name)
			continue
		}
		compareLibrary(r, oldLibs[name], newLib)
	}
	for _, name := range sortedKeys(newLibs) {
		if _, ok := oldLibs[name]; !ok {
			r.add(Added, "Library "+name)
		}
	}
	return r
}

func libMap(m *core.Model) map[string]*core.Library {
	out := map[string]*core.Library{}
	for _, lib := range m.Libraries() {
		out[lib.Name] = lib
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func compareLibrary(r *Report, oldLib, newLib *core.Library) {
	prefix := oldLib.Name + "::"
	var details []detail
	if oldLib.BaseURN != newLib.BaseURN {
		// The baseURN is the generated target namespace; changing it
		// breaks every reference into the library's schema.
		details = append(details, brk("baseURN %q -> %q", oldLib.BaseURN, newLib.BaseURN))
	}
	if oldLib.Version != newLib.Version {
		// Version bumps are the expected shape of a revision.
		details = append(details, add("version %q -> %q", oldLib.Version, newLib.Version))
	}
	if oldLib.Kind != newLib.Kind {
		details = append(details, brk("kind %s -> %s", oldLib.Kind, newLib.Kind))
	}
	if len(details) > 0 {
		r.add(Modified, "Library "+oldLib.Name, details...)
	}

	compareNamed(r, "ACC", prefix, accNames(oldLib), accNames(newLib), func(name string) []detail {
		return diffACC(oldLib.FindACC(name), newLib.FindACC(name))
	})
	compareNamed(r, "ABIE", prefix, abieNames(oldLib), abieNames(newLib), func(name string) []detail {
		return diffABIE(oldLib.FindABIE(name), newLib.FindABIE(name))
	})
	compareNamed(r, "CDT", prefix, cdtNames(oldLib), cdtNames(newLib), func(name string) []detail {
		return diffDataType(findCDT(oldLib, name), findCDT(newLib, name))
	})
	compareNamed(r, "QDT", prefix, qdtNames(oldLib), qdtNames(newLib), func(name string) []detail {
		return diffQDT(findQDT(oldLib, name), findQDT(newLib, name))
	})
	compareNamed(r, "ENUM", prefix, enumNames(oldLib), enumNames(newLib), func(name string) []detail {
		return diffENUM(findENUM(oldLib, name), findENUM(newLib, name))
	})
	compareNamed(r, "PRIM", prefix, primNames(oldLib), primNames(newLib), func(string) []detail {
		return nil
	})
}

// compareNamed applies the add/remove/modify pattern to one element
// kind.
func compareNamed(r *Report, kind, prefix string, oldNames, newNames []string, detailOf func(name string) []detail) {
	oldSet := toSet(oldNames)
	newSet := toSet(newNames)
	for _, name := range oldNames {
		if !newSet[name] {
			r.add(Removed, kind+" "+prefix+name)
			continue
		}
		if details := detailOf(name); len(details) > 0 {
			r.add(Modified, kind+" "+prefix+name, details...)
		}
	}
	for _, name := range newNames {
		if !oldSet[name] {
			r.add(Added, kind+" "+prefix+name)
		}
	}
}

func toSet(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func accNames(lib *core.Library) []string {
	out := make([]string, len(lib.ACCs))
	for i, e := range lib.ACCs {
		out[i] = e.Name
	}
	return out
}

func abieNames(lib *core.Library) []string {
	out := make([]string, len(lib.ABIEs))
	for i, e := range lib.ABIEs {
		out[i] = e.Name
	}
	return out
}

func cdtNames(lib *core.Library) []string {
	out := make([]string, len(lib.CDTs))
	for i, e := range lib.CDTs {
		out[i] = e.Name
	}
	return out
}

func qdtNames(lib *core.Library) []string {
	out := make([]string, len(lib.QDTs))
	for i, e := range lib.QDTs {
		out[i] = e.Name
	}
	return out
}

func enumNames(lib *core.Library) []string {
	out := make([]string, len(lib.ENUMs))
	for i, e := range lib.ENUMs {
		out[i] = e.Name
	}
	return out
}

func primNames(lib *core.Library) []string {
	out := make([]string, len(lib.PRIMs))
	for i, e := range lib.PRIMs {
		out[i] = e.Name
	}
	return out
}

func findCDT(lib *core.Library, name string) *core.CDT {
	for _, d := range lib.CDTs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func findQDT(lib *core.Library, name string) *core.QDT {
	for _, d := range lib.QDTs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func findENUM(lib *core.Library, name string) *core.ENUM {
	for _, e := range lib.ENUMs {
		if e.Name == name {
			return e
		}
	}
	return nil
}

func diffACC(oldACC, newACC *core.ACC) []detail {
	var out []detail
	oldBCCs := map[string]*core.BCC{}
	for _, b := range oldACC.BCCs {
		oldBCCs[b.Name] = b
	}
	newBCCs := map[string]*core.BCC{}
	for _, b := range newACC.BCCs {
		newBCCs[b.Name] = b
	}
	for _, name := range sortedKeys(oldBCCs) {
		nb, ok := newBCCs[name]
		if !ok {
			out = append(out, brk("BCC %s removed", name))
			continue
		}
		ob := oldBCCs[name]
		if ob.Type.Name != nb.Type.Name {
			out = append(out, brk("BCC %s type %s -> %s", name, ob.Type.Name, nb.Type.Name))
		}
		if ob.Card != nb.Card {
			out = append(out, cardDetail("BCC "+name, ob.Card, nb.Card))
		}
	}
	for _, name := range sortedKeys(newBCCs) {
		if _, ok := oldBCCs[name]; !ok {
			out = append(out, add("BCC %s added", name))
		}
	}
	out = append(out, diffASCCs(oldACC, newACC)...)
	return out
}

func diffASCCs(oldACC, newACC *core.ACC) []detail {
	key := func(s *core.ASCC) string { return s.Role + ">" + s.Target.Name }
	oldSet := map[string]*core.ASCC{}
	for _, s := range oldACC.ASCCs {
		oldSet[key(s)] = s
	}
	newSet := map[string]*core.ASCC{}
	for _, s := range newACC.ASCCs {
		newSet[key(s)] = s
	}
	var out []detail
	for _, k := range sortedKeys(oldSet) {
		ns, ok := newSet[k]
		if !ok {
			out = append(out, brk("ASCC %s removed", k))
			continue
		}
		if oldSet[k].Card != ns.Card {
			out = append(out, cardDetail("ASCC "+k, oldSet[k].Card, ns.Card))
		}
	}
	for _, k := range sortedKeys(newSet) {
		if _, ok := oldSet[k]; !ok {
			out = append(out, add("ASCC %s added", k))
		}
	}
	return out
}

func diffABIE(oldABIE, newABIE *core.ABIE) []detail {
	var out []detail
	if oldBase, newBase := baseName(oldABIE), baseName(newABIE); oldBase != newBase {
		out = append(out, brk("basedOn %s -> %s", oldBase, newBase))
	}
	if oldABIE.Context().String() != newABIE.Context().String() {
		// Context describes the business situation the BIE is derived
		// for; it does not change the generated schema shape.
		out = append(out, add("context %s -> %s", oldABIE.Context(), newABIE.Context()))
	}
	oldBBIEs := map[string]*core.BBIE{}
	for _, b := range oldABIE.BBIEs {
		oldBBIEs[b.Name] = b
	}
	newBBIEs := map[string]*core.BBIE{}
	for _, b := range newABIE.BBIEs {
		newBBIEs[b.Name] = b
	}
	for _, name := range sortedKeys(oldBBIEs) {
		nb, ok := newBBIEs[name]
		if !ok {
			out = append(out, brk("BBIE %s removed", name))
			continue
		}
		ob := oldBBIEs[name]
		if ob.Type.TypeName() != nb.Type.TypeName() {
			out = append(out, brk("BBIE %s type %s -> %s", name, ob.Type.TypeName(), nb.Type.TypeName()))
		}
		if ob.Card != nb.Card {
			out = append(out, cardDetail("BBIE "+name, ob.Card, nb.Card))
		}
	}
	for _, name := range sortedKeys(newBBIEs) {
		if _, ok := oldBBIEs[name]; !ok {
			out = append(out, add("BBIE %s added", name))
		}
	}
	key := func(s *core.ASBIE) string { return s.Role + ">" + s.Target.Name }
	oldAS := map[string]*core.ASBIE{}
	for _, s := range oldABIE.ASBIEs {
		oldAS[key(s)] = s
	}
	newAS := map[string]*core.ASBIE{}
	for _, s := range newABIE.ASBIEs {
		newAS[key(s)] = s
	}
	for _, k := range sortedKeys(oldAS) {
		ns, ok := newAS[k]
		if !ok {
			out = append(out, brk("ASBIE %s removed", k))
			continue
		}
		if oldAS[k].Card != ns.Card {
			out = append(out, cardDetail("ASBIE "+k, oldAS[k].Card, ns.Card))
		}
	}
	for _, k := range sortedKeys(newAS) {
		if _, ok := oldAS[k]; !ok {
			out = append(out, add("ASBIE %s added", k))
		}
	}
	return out
}

func baseName(a *core.ABIE) string {
	if a.BasedOn == nil {
		return "(none)"
	}
	return a.BasedOn.Name
}

func diffDataType(oldCDT, newCDT *core.CDT) []detail {
	var out []detail
	if oldCDT.Content.Type.TypeName() != newCDT.Content.Type.TypeName() {
		out = append(out, brk("content %s -> %s",
			oldCDT.Content.Type.TypeName(), newCDT.Content.Type.TypeName()))
	}
	out = append(out, diffSups(supsOf(oldCDT.Sups), supsOf(newCDT.Sups))...)
	return out
}

func diffQDT(oldQDT, newQDT *core.QDT) []detail {
	var out []detail
	if oldQDT.Content.Type.TypeName() != newQDT.Content.Type.TypeName() {
		out = append(out, brk("content %s -> %s",
			oldQDT.Content.Type.TypeName(), newQDT.Content.Type.TypeName()))
	}
	oldBase, newBase := "", ""
	if oldQDT.BasedOn != nil {
		oldBase = oldQDT.BasedOn.Name
	}
	if newQDT.BasedOn != nil {
		newBase = newQDT.BasedOn.Name
	}
	if oldBase != newBase {
		out = append(out, brk("basedOn %s -> %s", oldBase, newBase))
	}
	out = append(out, diffSups(supsOf(oldQDT.Sups), supsOf(newQDT.Sups))...)
	return out
}

func supsOf(sups []core.SupplementaryComponent) map[string]core.SupplementaryComponent {
	out := make(map[string]core.SupplementaryComponent, len(sups))
	for _, s := range sups {
		out[s.Name] = s
	}
	return out
}

func diffSups(oldSups, newSups map[string]core.SupplementaryComponent) []detail {
	var out []detail
	for _, name := range sortedKeys(oldSups) {
		ns, ok := newSups[name]
		if !ok {
			out = append(out, brk("SUP %s removed", name))
			continue
		}
		os := oldSups[name]
		if os.Card != ns.Card {
			out = append(out, cardDetail("SUP "+name, os.Card, ns.Card))
		}
	}
	for _, name := range sortedKeys(newSups) {
		if _, ok := oldSups[name]; !ok {
			out = append(out, add("SUP %s added", name))
		}
	}
	return out
}

func diffENUM(oldENUM, newENUM *core.ENUM) []detail {
	oldLits := toSet(oldENUM.LiteralNames())
	newLits := toSet(newENUM.LiteralNames())
	var out []detail
	for _, name := range sortedKeys(oldLits) {
		if !newLits[name] {
			out = append(out, brk("literal %s removed", name))
		}
	}
	for _, name := range sortedKeys(newLits) {
		if !oldLits[name] {
			out = append(out, add("literal %s added", name))
		}
	}
	return out
}
