package diff

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/catalog"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/fixture"
)

func TestIdenticalModels(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	r := Compare(a.Model, b.Model)
	if !r.Empty() {
		t.Errorf("identical models differ: %v", r.Changes)
	}
}

func hasChange(r *Report, fragment string) bool {
	for _, c := range r.Changes {
		if strings.Contains(c.String(), fragment) {
			return true
		}
	}
	return false
}

func TestLibraryChanges(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()

	// Remove a library, add a library, change version and URN.
	b.Biz.Libraries = b.Biz.Libraries[:len(b.Biz.Libraries)-1] // drop DOC lib
	extra := b.Biz.AddLibrary(core.KindBIELibrary, "Extra", "urn:extra")
	_ = extra
	b.Common.Version = "0.2"
	b.QDTLib.BaseURN = "urn:changed"

	r := Compare(a.Model, b.Model)
	for _, want := range []string{
		"removed Library EB005-HoardingPermit",
		"added Library Extra",
		`version "0.1" -> "0.2"`,
		`baseURN "urn:au:gov:vic:easybiz:types:draft:QualifiedDataTypes" -> "urn:changed"`,
	} {
		if !hasChange(r, want) {
			t.Errorf("missing change %q in %v", want, r.Changes)
		}
	}
	if len(r.ByKind(Removed)) == 0 || len(r.ByKind(Added)) == 0 || len(r.ByKind(Modified)) == 0 {
		t.Error("ByKind buckets empty")
	}
}

func TestElementChanges(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()

	// ACC: remove a BCC, add a BCC, change a cardinality, drop an ASCC.
	permit := b.Model.FindACC("Permit")
	permit.BCCs = permit.BCCs[1:] // drop ClosureReason
	if _, err := permit.AddBCC("NightWork", b.Catalog.CDT(catalog.CDTIndicator), core.Cardinality{Lower: 0, Upper: 1}); err != nil {
		t.Fatal(err)
	}
	permit.BCCs[0].Card = core.Cardinality{Lower: 1, Upper: 1} // IsClosedFootpath now required
	permit.ASCCs = permit.ASCCs[:3]                            // drop Billing

	// ABIE: retype a BBIE and remove an ASBIE.
	hp := b.Permit
	hp.BBIEs = hp.BBIEs[:3] // drop SafetyPrecaution
	hp.ASBIEs = hp.ASBIEs[1:]

	// ENUM: add a literal.
	b.Model.FindENUM("CountryType_Code").AddLiteral("NZL", "New Zealand")

	// QDT: drop a SUP.
	b.Model.FindQDT("CountryType").Sups = nil

	r := Compare(a.Model, b.Model)
	for _, want := range []string{
		"BCC ClosureReason removed",
		"BCC NightWork added",
		"BCC IsClosedFootpath cardinality 0..1 -> 1",
		"ASCC Billing>Person removed",
		"BBIE SafetyPrecaution removed",
		"ASBIE Included>Attachment removed",
		"literal NZL added",
		"SUP CodeListName removed",
	} {
		if !hasChange(r, want) {
			t.Errorf("missing change %q in:\n%v", want, r.Changes)
		}
	}
}

func TestRebasedABIE(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.USAddress.BasedOn = b.Person
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "basedOn Address -> Person") {
		t.Errorf("missing rebase change: %v", r.Changes)
	}
}

func TestContextChange(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.USAddress.SetContext(core.NewContext().With(core.CtxGeopolitical, "US"))
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "context (default) -> Geopolitical=US") {
		t.Errorf("missing context change: %v", r.Changes)
	}
}

func TestTypeAndKindChanges(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	// Retype a BCC.
	street := b.Address.FindBCC("Street")
	street.Type = b.Catalog.CDT(catalog.CDTName)
	// Retype a BBIE via the underlying map.
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "BCC Street type Text -> Name") {
		t.Errorf("missing retype change: %v", r.Changes)
	}
}

func TestASCCCardinalityChange(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.Person.FindASCC("Work", "Address").Card = core.Cardinality{Lower: 0, Upper: 1}
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "ASCC Work>Address cardinality 1 -> 0..1") {
		t.Errorf("missing cardinality change: %v", r.Changes)
	}
}

func TestQDTContentAndBaseChange(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	q := b.Model.FindQDT("Indicator_Code")
	q.BasedOn = b.Catalog.CDT(catalog.CDTText)
	q.Content = core.Content(b.Model.FindENUM("CountryType_Code"))
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "basedOn Code -> Text") {
		t.Errorf("missing QDT base change: %v", r.Changes)
	}
	if !hasChange(r, "content String -> CountryType_Code") {
		t.Errorf("missing QDT content change: %v", r.Changes)
	}
}

func TestChangeString(t *testing.T) {
	c := Change{Kind: Added, Element: "ACC X::Y"}
	if c.String() != "added ACC X::Y" {
		t.Errorf("String = %q", c.String())
	}
	c2 := Change{Kind: Modified, Element: "ACC X::Y", Details: []string{"a", "b"}}
	if c2.String() != "modified ACC X::Y: a; b" {
		t.Errorf("String = %q", c2.String())
	}
}

// changeFor finds the first change whose rendering contains fragment.
func changeFor(t *testing.T, r *Report, fragment string) Change {
	t.Helper()
	for _, c := range r.Changes {
		if strings.Contains(c.String(), fragment) {
			return c
		}
	}
	t.Fatalf("no change matching %q in %v", fragment, r.Changes)
	return Change{}
}

func TestTightens(t *testing.T) {
	one := core.Cardinality{Lower: 1, Upper: 1}
	opt := core.Cardinality{Lower: 0, Upper: 1}
	many := core.Cardinality{Lower: 0, Upper: core.Unbounded}
	oneOrMore := core.Cardinality{Lower: 1, Upper: core.Unbounded}
	cases := []struct {
		name     string
		old, new core.Cardinality
		want     bool
	}{
		{"raise lower", opt, one, true},
		{"lower upper", many, opt, true},
		{"unbounded to bounded", oneOrMore, one, true},
		{"widen lower", one, opt, false},
		{"widen upper", opt, many, false},
		{"bounded to unbounded", one, oneOrMore, false},
		{"unchanged", opt, opt, false},
	}
	for _, tc := range cases {
		if got := tightens(tc.old, tc.new); got != tc.want {
			t.Errorf("%s: tightens(%s, %s) = %t, want %t", tc.name, tc.old, tc.new, got, tc.want)
		}
	}
}

func TestBreakingClassification(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()

	// Breaking edits: remove a BCC, tighten a cardinality, retype a
	// BBIE's ACC base type, drop an ASBIE, remove an ENUM literal.
	permit := b.Model.FindACC("Permit")
	permit.BCCs = permit.BCCs[1:]                              // drop ClosureReason
	permit.BCCs[0].Card = core.Cardinality{Lower: 1, Upper: 1} // IsClosedFootpath required
	b.Permit.ASBIEs = b.Permit.ASBIEs[1:]                      // drop Included>Attachment
	enum := b.Model.FindENUM("CountryType_Code")
	enum.Literals = enum.Literals[1:]

	// Additive edits: new BCC, new ENUM literal, version bump.
	if _, err := permit.AddBCC("NightWork", b.Catalog.CDT(catalog.CDTIndicator), core.Cardinality{Lower: 0, Upper: 1}); err != nil {
		t.Fatal(err)
	}
	enum.AddLiteral("NZL", "New Zealand")
	b.Common.Version = "0.2"

	r := Compare(a.Model, b.Model)

	breaking := []string{
		"BCC ClosureReason removed",
		"BCC IsClosedFootpath cardinality 0..1 -> 1",
		"ASBIE Included>Attachment removed",
		"literal USA removed",
	}
	additive := []string{
		"BCC NightWork added",
		"literal NZL added",
		`version "0.1" -> "0.2"`,
	}
	for _, frag := range breaking {
		c := changeFor(t, r, frag)
		if !c.Breaking {
			t.Errorf("change %q must be breaking: %+v", frag, c)
		}
	}
	for _, frag := range additive {
		c := changeFor(t, r, frag)
		// The fragment may share a Change with a breaking detail (same
		// element); assert the detail is not listed as breaking.
		for _, bd := range c.BreakingDetails {
			if strings.Contains(frag, bd) {
				t.Errorf("detail %q wrongly classified breaking in %+v", bd, c)
			}
		}
	}

	// Report.Breaking must include every breaking change and only those.
	for _, c := range r.Breaking() {
		if !c.Breaking {
			t.Errorf("Breaking() returned non-breaking change %+v", c)
		}
	}
	if len(r.Breaking()) == 0 {
		t.Error("Breaking() empty despite breaking edits")
	}
}

func TestAdditiveRevisionIsNonBreaking(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	// Purely additive revision: a new ACC, a new literal, version bumps.
	if _, err := b.CCLib.AddACC("Inspection"); err != nil {
		t.Fatal(err)
	}
	b.Model.FindENUM("CountryType_Code").AddLiteral("NZL", "New Zealand")
	b.Common.Version = "0.2"

	r := Compare(a.Model, b.Model)
	if r.Empty() {
		t.Fatal("expected changes")
	}
	if got := r.Breaking(); len(got) != 0 {
		t.Errorf("additive revision reported breaking changes: %v", got)
	}
}

func TestRemovedElementIsBreaking(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	b.Common.ABIEs = b.Common.ABIEs[:1]
	r := Compare(a.Model, b.Model)
	removed := r.ByKind(Removed)
	if len(removed) == 0 {
		t.Fatal("expected a removed change")
	}
	for _, c := range removed {
		if !c.Breaking {
			t.Errorf("removed change not breaking: %+v", c)
		}
	}
	added := r.ByKind(Added)
	for _, c := range added {
		if c.Breaking {
			t.Errorf("added change marked breaking: %+v", c)
		}
	}
}

func TestPrimLibraryDiff(t *testing.T) {
	oldM := core.NewModel("A")
	bizA := oldM.AddBusinessLibrary("B")
	libA := bizA.AddLibrary(core.KindPRIMLibrary, "P", "urn:p")
	if _, err := libA.AddPRIM("String"); err != nil {
		t.Fatal(err)
	}
	newM := core.NewModel("B")
	bizB := newM.AddBusinessLibrary("B")
	libB := bizB.AddLibrary(core.KindPRIMLibrary, "P", "urn:p")
	if _, err := libB.AddPRIM("String"); err != nil {
		t.Fatal(err)
	}
	if _, err := libB.AddPRIM("Decimal"); err != nil {
		t.Fatal(err)
	}
	r := Compare(oldM, newM)
	if !hasChange(r, "added PRIM P::Decimal") {
		t.Errorf("missing PRIM addition: %v", r.Changes)
	}
}
