package diff

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/catalog"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/fixture"
)

func TestIdenticalModels(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	r := Compare(a.Model, b.Model)
	if !r.Empty() {
		t.Errorf("identical models differ: %v", r.Changes)
	}
}

func hasChange(r *Report, fragment string) bool {
	for _, c := range r.Changes {
		if strings.Contains(c.String(), fragment) {
			return true
		}
	}
	return false
}

func TestLibraryChanges(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()

	// Remove a library, add a library, change version and URN.
	b.Biz.Libraries = b.Biz.Libraries[:len(b.Biz.Libraries)-1] // drop DOC lib
	extra := b.Biz.AddLibrary(core.KindBIELibrary, "Extra", "urn:extra")
	_ = extra
	b.Common.Version = "0.2"
	b.QDTLib.BaseURN = "urn:changed"

	r := Compare(a.Model, b.Model)
	for _, want := range []string{
		"removed Library EB005-HoardingPermit",
		"added Library Extra",
		`version "0.1" -> "0.2"`,
		`baseURN "urn:au:gov:vic:easybiz:types:draft:QualifiedDataTypes" -> "urn:changed"`,
	} {
		if !hasChange(r, want) {
			t.Errorf("missing change %q in %v", want, r.Changes)
		}
	}
	if len(r.ByKind(Removed)) == 0 || len(r.ByKind(Added)) == 0 || len(r.ByKind(Modified)) == 0 {
		t.Error("ByKind buckets empty")
	}
}

func TestElementChanges(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()

	// ACC: remove a BCC, add a BCC, change a cardinality, drop an ASCC.
	permit := b.Model.FindACC("Permit")
	permit.BCCs = permit.BCCs[1:] // drop ClosureReason
	if _, err := permit.AddBCC("NightWork", b.Catalog.CDT(catalog.CDTIndicator), core.Cardinality{Lower: 0, Upper: 1}); err != nil {
		t.Fatal(err)
	}
	permit.BCCs[0].Card = core.Cardinality{Lower: 1, Upper: 1} // IsClosedFootpath now required
	permit.ASCCs = permit.ASCCs[:3]                            // drop Billing

	// ABIE: retype a BBIE and remove an ASBIE.
	hp := b.Permit
	hp.BBIEs = hp.BBIEs[:3] // drop SafetyPrecaution
	hp.ASBIEs = hp.ASBIEs[1:]

	// ENUM: add a literal.
	b.Model.FindENUM("CountryType_Code").AddLiteral("NZL", "New Zealand")

	// QDT: drop a SUP.
	b.Model.FindQDT("CountryType").Sups = nil

	r := Compare(a.Model, b.Model)
	for _, want := range []string{
		"BCC ClosureReason removed",
		"BCC NightWork added",
		"BCC IsClosedFootpath cardinality 0..1 -> 1",
		"ASCC Billing>Person removed",
		"BBIE SafetyPrecaution removed",
		"ASBIE Included>Attachment removed",
		"literal NZL added",
		"SUP CodeListName removed",
	} {
		if !hasChange(r, want) {
			t.Errorf("missing change %q in:\n%v", want, r.Changes)
		}
	}
}

func TestRebasedABIE(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.USAddress.BasedOn = b.Person
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "basedOn Address -> Person") {
		t.Errorf("missing rebase change: %v", r.Changes)
	}
}

func TestContextChange(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.USAddress.SetContext(core.NewContext().With(core.CtxGeopolitical, "US"))
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "context (default) -> Geopolitical=US") {
		t.Errorf("missing context change: %v", r.Changes)
	}
}

func TestTypeAndKindChanges(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	// Retype a BCC.
	street := b.Address.FindBCC("Street")
	street.Type = b.Catalog.CDT(catalog.CDTName)
	// Retype a BBIE via the underlying map.
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "BCC Street type Text -> Name") {
		t.Errorf("missing retype change: %v", r.Changes)
	}
}

func TestASCCCardinalityChange(t *testing.T) {
	a := fixture.MustBuildFigure1()
	b := fixture.MustBuildFigure1()
	b.Person.FindASCC("Work", "Address").Card = core.Cardinality{Lower: 0, Upper: 1}
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "ASCC Work>Address cardinality 1 -> 0..1") {
		t.Errorf("missing cardinality change: %v", r.Changes)
	}
}

func TestQDTContentAndBaseChange(t *testing.T) {
	a := fixture.MustBuildHoardingPermit()
	b := fixture.MustBuildHoardingPermit()
	q := b.Model.FindQDT("Indicator_Code")
	q.BasedOn = b.Catalog.CDT(catalog.CDTText)
	q.Content = core.Content(b.Model.FindENUM("CountryType_Code"))
	r := Compare(a.Model, b.Model)
	if !hasChange(r, "basedOn Code -> Text") {
		t.Errorf("missing QDT base change: %v", r.Changes)
	}
	if !hasChange(r, "content String -> CountryType_Code") {
		t.Errorf("missing QDT content change: %v", r.Changes)
	}
}

func TestChangeString(t *testing.T) {
	c := Change{Kind: Added, Element: "ACC X::Y"}
	if c.String() != "added ACC X::Y" {
		t.Errorf("String = %q", c.String())
	}
	c2 := Change{Kind: Modified, Element: "ACC X::Y", Details: []string{"a", "b"}}
	if c2.String() != "modified ACC X::Y: a; b" {
		t.Errorf("String = %q", c2.String())
	}
}

func TestPrimLibraryDiff(t *testing.T) {
	oldM := core.NewModel("A")
	bizA := oldM.AddBusinessLibrary("B")
	libA := bizA.AddLibrary(core.KindPRIMLibrary, "P", "urn:p")
	if _, err := libA.AddPRIM("String"); err != nil {
		t.Fatal(err)
	}
	newM := core.NewModel("B")
	bizB := newM.AddBusinessLibrary("B")
	libB := bizB.AddLibrary(core.KindPRIMLibrary, "P", "urn:p")
	if _, err := libB.AddPRIM("String"); err != nil {
		t.Fatal(err)
	}
	if _, err := libB.AddPRIM("Decimal"); err != nil {
		t.Fatal(err)
	}
	r := Compare(oldM, newM)
	if !hasChange(r, "added PRIM P::Decimal") {
		t.Errorf("missing PRIM addition: %v", r.Changes)
	}
}
