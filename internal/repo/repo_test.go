package repo

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/go-ccts/ccts/internal/contentaddr"
	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/metrics"
	"github.com/go-ccts/ccts/internal/profile"
	"github.com/go-ccts/ccts/internal/xmi"
)

const testSubject = "urn:au:gov:vic:easybiz:draft:doc:HoardingPermit"

// buildRequest exports the fixture's model as XMI, generates the
// HoardingPermit document schema set and assembles the publish request a
// pipeline client would send.
func buildRequest(t testing.TB, f *fixture.HoardingPermit) PublishRequest {
	t.Helper()
	var xb bytes.Buffer
	if err := xmi.Export(profile.Render(f.Model), &xb); err != nil {
		t.Fatalf("exporting XMI: %v", err)
	}
	res, err := gen.GenerateDocument(f.DOCLib, "HoardingPermit", gen.Options{})
	if err != nil {
		t.Fatalf("generating schemas: %v", err)
	}
	var files []File
	for _, name := range res.Order {
		var b bytes.Buffer
		if err := res.Schemas[name].Write(&b); err != nil {
			t.Fatalf("serializing %s: %v", name, err)
		}
		files = append(files, File{Name: name, Data: b.Bytes()})
	}
	return PublishRequest{
		Subject:     testSubject,
		Input:       xb.Bytes(),
		Fingerprint: "library=EB005-HoardingPermit&root=HoardingPermit",
		RootElement: res.RootElement,
		Files:       files,
		Diagnostics: []byte(`{"findings":[]}`),
		Model:       f.Model,
	}
}

// additive mutates the fixture compatibly: a new enumeration literal.
func additive(f *fixture.HoardingPermit) {
	f.Model.FindENUM("CountryType_Code").AddLiteral("NZL", "New Zealand")
}

// breaking mutates the fixture incompatibly: an enumeration literal is
// removed, so documents valid against the old schema can be rejected.
func breaking(f *fixture.HoardingPermit) {
	enum := f.Model.FindENUM("CountryType_Code")
	enum.Literals = enum.Literals[1:] // drops USA
}

func openRepo(t testing.TB, dir string, cfg Config) *Repo {
	t.Helper()
	r, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func mustPublish(t testing.TB, r *Repo, req PublishRequest) *Version {
	t.Helper()
	v, err := r.Publish(req)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return v
}

func TestPublishAndRead(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	v := mustPublish(t, r, req)
	if v.Number != 1 {
		t.Errorf("first version number = %d, want 1", v.Number)
	}
	if len(v.Files) != len(req.Files) {
		t.Fatalf("version has %d files, want %d", len(v.Files), len(req.Files))
	}
	if v.RootElement != req.RootElement || v.RootElement == "" {
		t.Errorf("RootElement = %q, want %q", v.RootElement, req.RootElement)
	}

	// Latest (number 0) resolves to the published version.
	got, err := r.Version(testSubject, 0)
	if err != nil {
		t.Fatalf("Version(latest): %v", err)
	}
	if got.Number != 1 || got.InputSHA256 != v.InputSHA256 {
		t.Errorf("latest = %+v, want published version", got)
	}

	// Every stored file reads back byte-identically.
	for i, f := range req.Files {
		data, err := r.VersionFile(testSubject, 1, f.Name)
		if err != nil {
			t.Fatalf("VersionFile(%s): %v", f.Name, err)
		}
		if !bytes.Equal(data, f.Data) {
			t.Errorf("file %s differs after round-trip", f.Name)
		}
		if v.Files[i].Name != f.Name {
			t.Errorf("file order: got %s at %d, want %s", v.Files[i].Name, i, f.Name)
		}
	}

	// The stored input is the canonicalized XMI.
	in, err := r.Blob(v.InputSHA256)
	if err != nil {
		t.Fatalf("Blob(input): %v", err)
	}
	if !bytes.Equal(in, contentaddr.Canonicalize(req.Input)) {
		t.Error("stored input is not the canonicalized XMI")
	}

	// Subject listing and default policy.
	if p, err := r.Policy(testSubject); err != nil || p != PolicyBackward {
		t.Errorf("Policy = %q, %v; want backward", p, err)
	}
	subs := r.Subjects()
	if len(subs) != 1 || subs[0].Name != testSubject || subs[0].Versions != 1 || subs[0].Latest != 1 {
		t.Errorf("Subjects = %+v", subs)
	}

	// Unknown lookups.
	if _, err := r.Version("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown subject: %v, want ErrNotFound", err)
	}
	if _, err := r.Version(testSubject, 99); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown version: %v, want ErrNotFound", err)
	}
	if _, err := r.VersionFile(testSubject, 1, "nope.xsd"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown file: %v, want ErrNotFound", err)
	}
}

func TestPublishValidation(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	if _, err := r.Publish(PublishRequest{Files: []File{{Name: "a.xsd"}}}); err == nil {
		t.Error("publish without subject must fail")
	}
	if _, err := r.Publish(PublishRequest{Subject: "s"}); err == nil {
		t.Error("publish without files must fail")
	}
	if _, err := r.Publish(PublishRequest{Subject: "s", Files: []File{{Name: "a.xsd"}}, Policy: "weird"}); err == nil {
		t.Error("publish with unknown policy must fail")
	}
	if _, err := ParsePolicy("forward"); err == nil {
		t.Error("ParsePolicy must reject unknown names")
	}
}

func TestBackwardPolicyRejectsBreaking(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))

	f2 := fixture.MustBuildHoardingPermit()
	breaking(f2)
	_, err := r.Publish(buildRequest(t, f2))
	var ce *CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("breaking publish returned %v, want *CompatError", err)
	}
	if ce.Subject != testSubject || ce.Against != 1 || ce.Policy != PolicyBackward {
		t.Errorf("CompatError = %+v", ce)
	}
	if len(ce.Report.Breaking()) == 0 {
		t.Error("CompatError carries no breaking changes")
	}
	if ce.Error() == "" {
		t.Error("CompatError.Error empty")
	}

	// Nothing was committed.
	vs, err := r.Versions(testSubject)
	if err != nil || len(vs) != 1 {
		t.Errorf("after rejection: %d versions, %v; want 1", len(vs), err)
	}
	if st := r.Stats(); st.Rejections != 1 || st.Publishes != 1 {
		t.Errorf("stats = %+v, want 1 publish, 1 rejection", st)
	}
}

func TestCompatGateImportsWhenModelMissing(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))

	// Same revision without a pre-imported model: the repository imports
	// the input itself and the identical model publishes cleanly.
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	req.Model = nil
	if v := mustPublish(t, r, req); v.Number != 2 {
		t.Errorf("number = %d, want 2", v.Number)
	}

	// Garbage input cannot be diffed and must fail before commit.
	bad := req
	bad.Model = nil
	bad.Input = []byte("<not-xmi/>")
	if _, err := r.Publish(bad); err == nil {
		t.Error("publish with unimportable input must fail under backward policy")
	}
}

func TestAdditivePublishSharesBlobs(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	v1 := mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))
	before := r.Stats()

	f2 := fixture.MustBuildHoardingPermit()
	additive(f2)
	v2 := mustPublish(t, r, buildRequest(t, f2))
	if v2.Number != 2 {
		t.Fatalf("number = %d, want 2", v2.Number)
	}

	// Only the enumeration library's schema changed; every other file of
	// v2 must reference the same blob as v1.
	shas1 := map[string]string{}
	for _, f := range v1.Files {
		shas1[f.Name] = f.SHA256
	}
	shared, changed := 0, 0
	for _, f := range v2.Files {
		switch shas1[f.Name] {
		case f.SHA256:
			shared++
		default:
			changed++
		}
	}
	if shared == 0 {
		t.Error("additive revision shares no schema blobs with its predecessor")
	}
	if changed == 0 {
		t.Error("additive revision changed no schema (mutation did not take)")
	}

	// The physical store grew by the changed content only: the new input
	// and the changed schemas, not the full set.
	after := r.Stats()
	newBlobs := after.Blobs - before.Blobs
	if want := int64(changed + 1); newBlobs != want {
		t.Errorf("publish added %d blobs, want %d (changed files + input)", newBlobs, want)
	}
	if after.DedupRatio() <= 1 {
		t.Errorf("DedupRatio = %v, want > 1 after a shared publish", after.DedupRatio())
	}
}

func TestPolicyNoneAcceptsBreaking(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{DefaultPolicy: PolicyNone})
	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))

	f2 := fixture.MustBuildHoardingPermit()
	breaking(f2)
	if v := mustPublish(t, r, buildRequest(t, f2)); v.Number != 2 {
		t.Errorf("number = %d, want 2", v.Number)
	}
	if p, _ := r.Policy(testSubject); p != PolicyNone {
		t.Errorf("policy = %q, want none", p)
	}
}

func TestPolicyOverridePersists(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{}) // default backward
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	req.Policy = PolicyNone
	mustPublish(t, r, req)
	if p, _ := r.Policy(testSubject); p != PolicyNone {
		t.Fatalf("policy = %q, want none after override", p)
	}

	// The override sticks: a later breaking publish with no explicit
	// policy inherits none and succeeds.
	f2 := fixture.MustBuildHoardingPermit()
	breaking(f2)
	if v := mustPublish(t, r, buildRequest(t, f2)); v.Number != 2 {
		t.Errorf("number = %d, want 2", v.Number)
	}
}

func TestDeleteTombstones(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))
	f2 := fixture.MustBuildHoardingPermit()
	additive(f2)
	mustPublish(t, r, buildRequest(t, f2))

	if err := r.Delete(testSubject, 2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := r.Version(testSubject, 2); !errors.Is(err, ErrDeleted) {
		t.Errorf("deleted version read: %v, want ErrDeleted", err)
	}
	if v, err := r.Version(testSubject, 0); err != nil || v.Number != 1 {
		t.Errorf("latest after delete = %+v, %v; want version 1", v, err)
	}
	vs, _ := r.Versions(testSubject)
	if len(vs) != 2 || !vs[1].Deleted {
		t.Errorf("Versions = %+v, want 2 entries with a tombstone", vs)
	}

	// Double delete and unknown targets.
	if err := r.Delete(testSubject, 2); !errors.Is(err, ErrDeleted) {
		t.Errorf("double delete: %v, want ErrDeleted", err)
	}
	if err := r.Delete(testSubject, 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete unknown version: %v, want ErrNotFound", err)
	}
	if err := r.Delete("nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete unknown subject: %v, want ErrNotFound", err)
	}

	// Numbers are never reused: the next publish is version 3, and it
	// gates against version 1 (the latest live).
	f3 := fixture.MustBuildHoardingPermit()
	additive(f3)
	if v := mustPublish(t, r, buildRequest(t, f3)); v.Number != 3 {
		t.Errorf("number after tombstone = %d, want 3", v.Number)
	}

	if st := r.Stats(); st.Deleted != 1 || st.Versions != 2 || st.Deletes != 1 {
		t.Errorf("stats = %+v, want 1 tombstone among 3", st)
	}
}

// TestReopenServesIdentical reopens the repository both through a clean
// Close (manifest checkpoint) and from the WAL alone (no checkpoint, as
// after a crash) and requires every stored file byte-identical.
func TestReopenServesIdentical(t *testing.T) {
	for _, clean := range []bool{true, false} {
		name := "after-close"
		if !clean {
			name = "from-wal"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			// A huge checkpoint interval keeps everything in the WAL for
			// the crash-like variant.
			r, err := Open(dir, Config{CheckpointEvery: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			req1 := buildRequest(t, fixture.MustBuildHoardingPermit())
			mustPublish(t, r, req1)
			f2 := fixture.MustBuildHoardingPermit()
			additive(f2)
			req2 := buildRequest(t, f2)
			mustPublish(t, r, req2)
			if err := r.Delete(testSubject, 1); err != nil {
				t.Fatal(err)
			}
			if clean {
				if err := r.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			} else {
				// Abandon the handle without checkpointing — state must
				// come back from manifest-less WAL replay.
				r.mu.Lock()
				r.closed = true
				r.wal.Close()
				r.mu.Unlock()
			}

			r2 := openRepo(t, dir, Config{})
			vs, err := r2.Versions(testSubject)
			if err != nil || len(vs) != 2 {
				t.Fatalf("after reopen: %d versions, %v; want 2", len(vs), err)
			}
			if !vs[0].Deleted {
				t.Error("tombstone lost across reopen")
			}
			if p, _ := r2.Policy(testSubject); p != PolicyBackward {
				t.Errorf("policy after reopen = %q", p)
			}
			for _, f := range req2.Files {
				data, err := r2.VersionFile(testSubject, 2, f.Name)
				if err != nil {
					t.Fatalf("VersionFile(%s) after reopen: %v", f.Name, err)
				}
				if !bytes.Equal(data, f.Data) {
					t.Errorf("file %s differs after reopen", f.Name)
				}
			}
			// The compat gate still works against recovered state.
			fb := fixture.MustBuildHoardingPermit()
			breaking(fb)
			var ce *CompatError
			if _, err := r2.Publish(buildRequest(t, fb)); !errors.As(err, &ce) {
				t.Errorf("breaking publish after reopen: %v, want *CompatError", err)
			}
		})
	}
}

func TestCheckDryRun(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})

	// Unknown subject: compatible (the publish would create it) but the
	// input must still import.
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	res, err := r.Check(testSubject, req.Input, nil)
	if err != nil || !res.Compatible || res.Against != 0 {
		t.Errorf("check new subject = %+v, %v; want compatible against 0", res, err)
	}
	if _, err := r.Check(testSubject, []byte("junk"), nil); err == nil {
		t.Error("check with unimportable input must fail")
	}
	if _, err := r.Check("", req.Input, nil); err == nil {
		t.Error("check without subject must fail")
	}

	mustPublish(t, r, req)

	fb := fixture.MustBuildHoardingPermit()
	breaking(fb)
	bad := buildRequest(t, fb)
	res, err = r.Check(testSubject, bad.Input, bad.Model)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Compatible || res.Against != 1 || len(res.Report.Breaking()) == 0 {
		t.Errorf("breaking check = %+v, want incompatible against 1", res)
	}

	fa := fixture.MustBuildHoardingPermit()
	additive(fa)
	good := buildRequest(t, fa)
	res, err = r.Check(testSubject, good.Input, good.Model)
	if err != nil || !res.Compatible {
		t.Errorf("additive check = %+v, %v; want compatible", res, err)
	}

	// Nothing was stored by any dry run.
	if vs, _ := r.Versions(testSubject); len(vs) != 1 {
		t.Errorf("check stored state: %d versions, want 1", len(vs))
	}
}

func TestCheckUnderPolicyNone(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{DefaultPolicy: PolicyNone})
	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))
	fb := fixture.MustBuildHoardingPermit()
	breaking(fb)
	bad := buildRequest(t, fb)
	res, err := r.Check(testSubject, bad.Input, bad.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Error("policy none must report breaking revisions compatible")
	}
	if len(res.Report.Breaking()) == 0 {
		t.Error("the report must still surface the breaking changes")
	}
}

func TestGC(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	v1 := mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))
	f2 := fixture.MustBuildHoardingPermit()
	additive(f2)
	req2 := buildRequest(t, f2)
	v2 := mustPublish(t, r, req2)

	// Nothing to collect while both versions live.
	res, err := r.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if res.Blobs != 0 {
		t.Errorf("GC reclaimed %d blobs from a fully live store", res.Blobs)
	}

	// Tombstone v1: its unique blobs (old input, old enum schema) become
	// garbage; everything shared with v2 must survive.
	if err := r.Delete(testSubject, 1); err != nil {
		t.Fatal(err)
	}
	res, err = r.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if res.Blobs == 0 || res.Bytes == 0 {
		t.Error("GC reclaimed nothing after a tombstone")
	}
	if _, err := r.Blob(v1.InputSHA256); !errors.Is(err, ErrNotFound) {
		t.Errorf("tombstoned input still resident: %v", err)
	}
	for _, f := range req2.Files {
		data, err := r.VersionFile(testSubject, 2, f.Name)
		if err != nil {
			t.Fatalf("VersionFile(%s) after GC: %v", f.Name, err)
		}
		if !bytes.Equal(data, f.Data) {
			t.Errorf("file %s corrupted by GC", f.Name)
		}
	}
	if _, err := r.Blob(v2.InputSHA256); err != nil {
		t.Errorf("live input reclaimed: %v", err)
	}

	// Counters track the sweep.
	st := r.Stats()
	count, bytes_, err := scanBlobs(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blobs != count || st.BlobBytes != bytes_ {
		t.Errorf("stats (%d blobs, %d B) disagree with disk (%d, %d)", st.Blobs, st.BlobBytes, count, bytes_)
	}
}

func TestMetrics(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	reg := metrics.NewRegistry()
	r.Instrument(reg)

	mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))
	fb := fixture.MustBuildHoardingPermit()
	breaking(fb)
	if _, err := r.Publish(buildRequest(t, fb)); err == nil {
		t.Fatal("breaking publish must fail")
	}
	if err := r.Delete(testSubject, 1); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"repo_publishes_total":        1,
		"repo_publish_rejected_total": 1,
		"repo_deletes_total":          1,
		"repo_subjects":               1,
	}
	for name, val := range want {
		if snap[name] != val {
			t.Errorf("%s = %d, want %d", name, snap[name], val)
		}
	}
	if snap["repo_blobs"] <= 0 || snap["repo_blob_bytes"] <= 0 {
		t.Errorf("blob gauges not exported: %v", snap)
	}
}

func TestClosedRepoRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := r.Publish(req); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v, want ErrClosed", err)
	}
	if err := r.Delete(testSubject, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("delete after close: %v, want ErrClosed", err)
	}
	if err := r.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint after close: %v, want ErrClosed", err)
	}
}

func TestCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{DefaultPolicy: PolicyNone, CheckpointEvery: 2})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	// Two publishes trigger the automatic checkpoint: the manifest
	// appears and the WAL is emptied.
	mustPublish(t, r, req)
	mustPublish(t, r, req)
	if fi, err := os.Stat(filepath.Join(dir, manifestName)); err != nil || fi.Size() == 0 {
		t.Fatalf("manifest after auto-checkpoint: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("WAL not compacted: size %d, %v", fi.Size(), err)
	}

	// A third publish lands in the fresh WAL; reopening merges manifest
	// and WAL into the full sequence.
	mustPublish(t, r, req)
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() == 0 {
		t.Error("post-checkpoint publish wrote no WAL record")
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatalf("manual checkpoint: %v", err)
	}
	r.Close()

	r2 := openRepo(t, dir, Config{})
	vs, err := r2.Versions(testSubject)
	if err != nil || len(vs) != 3 {
		t.Fatalf("after reopen: %d versions, %v; want 3", len(vs), err)
	}
}

func TestConcurrentPublishesOneSubject(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{DefaultPolicy: PolicyNone})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Publish(req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("publisher %d: %v", i, err)
		}
	}
	vs, err := r.Versions(testSubject)
	if err != nil || len(vs) != n {
		t.Fatalf("%d versions, %v; want %d", len(vs), err, n)
	}
	for i, v := range vs {
		if v.Number != i+1 {
			t.Errorf("version %d has number %d", i, v.Number)
		}
	}
	// Identical content: the store holds one copy of every blob.
	st := r.Stats()
	wantBlobs := int64(len(req.Files)) + 2 // schemas + input + diagnostics
	if st.Blobs != wantBlobs {
		t.Errorf("store holds %d blobs, want %d (full dedup)", st.Blobs, wantBlobs)
	}
}

func TestConcurrentSubjects(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{DefaultPolicy: PolicyNone})
	base := buildRequest(t, fixture.MustBuildHoardingPermit())

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := base
			req.Subject = fmt.Sprintf("%s/%d", base.Subject, i)
			_, errs[i] = r.Publish(req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("publisher %d: %v", i, err)
		}
	}
	if subs := r.Subjects(); len(subs) != n {
		t.Errorf("%d subjects, want %d", len(subs), n)
	}
	if st := r.Stats(); st.DedupRatio() < float64(n)-0.5 {
		t.Errorf("DedupRatio = %v, want close to %d for identical content", st.DedupRatio(), n)
	}
}

func TestBlobVerifiesDigest(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	v := mustPublish(t, r, buildRequest(t, fixture.MustBuildHoardingPermit()))

	// Flip a byte on disk: the read must detect the corruption.
	path := blobPath(r.dir, v.InputSHA256)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Blob(v.InputSHA256); err == nil {
		t.Error("corrupt blob read succeeded")
	}
	if _, err := r.Blob("zz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("malformed address: %v, want ErrNotFound", err)
	}
}
