package repo

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the WAL scanner and the
// replication frame decoder — the two paths that parse untrusted input
// after a crash (torn tails) or off the replication wire (corrupt,
// truncated or reordered frames). Invariants: no panic, the valid
// prefix never exceeds the input, decoded records are strictly
// contiguous, and rescanning the valid prefix is a fixed point.
func FuzzWALDecode(f *testing.F) {
	// A healthy two-record log.
	rec1, _ := encodeRecord(&walRecord{Seq: 1, Op: opPublish, Subject: "s", Policy: PolicyNone,
		Version: &Version{Number: 1, InputSHA256: "aa", Files: []FileRef{{Name: "a.xsd", SHA256: "bb"}}}})
	rec2, _ := encodeRecord(&walRecord{Seq: 2, Op: opDelete, Subject: "s", Number: 1})
	valid := append(append([]byte{}, rec1...), rec2...)
	f.Add(valid)
	// Truncated mid-record (torn tail).
	f.Add(valid[:len(valid)-7])
	// Corrupt CRC on the second record.
	flipped := append([]byte{}, valid...)
	flipped[len(rec1)] ^= 0xff
	f.Add(flipped)
	// Reordered sequence numbers (2 before 1).
	f.Add(append(append([]byte{}, rec2...), rec1...))
	// Repeated sequence number.
	f.Add(append(append([]byte{}, rec1...), rec1...))
	// Structural garbage.
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("not a wal\n\x00\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen := scanWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		for i, rec := range recs {
			if rec.Seq <= 0 {
				t.Fatalf("record %d has non-positive seq %d", i, rec.Seq)
			}
			if i > 0 && rec.Seq != recs[i-1].Seq+1 {
				t.Fatalf("records %d,%d break contiguity: %d then %d — out-of-order frames must never apply",
					i-1, i, recs[i-1].Seq, rec.Seq)
			}
		}
		// The valid prefix is a fixed point: rescanning it reproduces
		// exactly the same records.
		again, againLen := scanWAL(data[:goodLen])
		if againLen != goodLen || len(again) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), againLen, len(recs), goodLen)
		}
		for i := range recs {
			if again[i].Seq != recs[i].Seq || again[i].Op != recs[i].Op || again[i].Subject != recs[i].Subject {
				t.Fatalf("rescan record %d differs: %+v vs %+v", i, again[i], recs[i])
			}
		}
		// The replication frame decoder sees single lines from the same
		// byte stream; it must never panic either.
		for _, line := range bytes.SplitAfter(data, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if fr, err := DecodeFrame(line); err == nil && fr.Seq <= 0 {
				t.Fatalf("DecodeFrame accepted non-positive seq %d", fr.Seq)
			}
		}
	})
}
