package repo

// Adopt is the receiving half of a shard migration: it commits a
// version record produced by another primary verbatim — same number,
// same content addresses, same tombstone flag — through the normal
// commit path, so adopted history is WAL-durable, checkpointed, and
// ships to this primary's own replica chain like any local publish.
// Unlike Publish it runs no generation and no compatibility gate: the
// source primary already gated these versions, and a migration must
// reproduce its history bit-for-bit, not re-litigate it.

import (
	"errors"
	"fmt"
	"reflect"
)

// Adopt commits one shipped version of subject. It is idempotent: a
// version already present with identical metadata is acknowledged
// without effect (false, nil). A version that conflicts with local
// state — same number but different content, or a number behind the
// local head — answers ErrDiverged; the caller must not guess which
// history wins. Every blob a live version references must already be
// resident (PutBlob); tombstoned versions need only their metadata.
func (r *Repo) Adopt(subject string, policy Policy, v Version) (adopted bool, err error) {
	if subject == "" {
		return false, errors.New("repo: adopt needs a subject")
	}
	if v.Number < 1 {
		return false, fmt.Errorf("repo: adopt needs a positive version number, got %d", v.Number)
	}
	if policy != "" {
		if _, err := ParsePolicy(string(policy)); err != nil {
			return false, err
		}
	}
	if err := r.writesAllowed(); err != nil {
		return false, err
	}
	if !v.Deleted {
		for _, sha := range v.BlobRefs() {
			if !r.HasBlob(sha) {
				return false, fmt.Errorf("%w: %s (adopting %s/%d)", ErrMissingBlob, sha, subject, v.Number)
			}
		}
	}

	// Same locking discipline as Publish: the GC read-lock keeps the
	// blobs checked above alive through the commit, the subject lock
	// serializes against concurrent mutations of the same subject.
	r.gcMu.RLock()
	defer r.gcMu.RUnlock()
	lock := r.subjectLock(subject)
	lock.Lock()
	defer lock.Unlock()

	st := r.stateP.Load()
	if sub := st.subjects[subject]; sub != nil {
		if have := sub.find(v.Number); have != nil {
			if reflect.DeepEqual(*have, v) {
				return false, nil
			}
			return false, fmt.Errorf("%w: adopted version %s/%d differs from the stored one", ErrDiverged, subject, v.Number)
		}
		if last := len(sub.versions); last > 0 && v.Number < sub.versions[last-1].Number {
			return false, fmt.Errorf("%w: adopting %s/%d behind the local head %d", ErrDiverged, subject, v.Number, sub.versions[last-1].Number)
		}
	}

	if err := r.commit(&walRecord{Op: opPublish, Subject: subject, Policy: policy, Version: &v}); err != nil {
		return false, err
	}
	r.syncMetrics()
	return true, nil
}

// BlobRefs lists the content addresses this version references: the
// canonicalized input, every schema file, and the diagnostics report
// when present.
func (v *Version) BlobRefs() []string { return versionBlobs(v) }
