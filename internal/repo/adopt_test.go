package repo

import (
	"errors"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
)

// shipBlobs copies every blob a version references from src into dst,
// the way a shard migration's pull does before adopting the record.
func shipBlobs(t *testing.T, src, dst *Repo, v *Version) {
	t.Helper()
	for _, sha := range v.BlobRefs() {
		data, err := src.Blob(sha)
		if err != nil {
			t.Fatalf("reading blob %s: %v", sha, err)
		}
		got, err := dst.PutBlob(data)
		if err != nil {
			t.Fatalf("PutBlob: %v", err)
		}
		if got != sha {
			t.Fatalf("blob %s rehashed to %s", sha, got)
		}
	}
}

func TestAdoptShipsHistoryByteIdentically(t *testing.T) {
	src := openRepo(t, t.TempDir(), Config{})
	dst := openRepo(t, t.TempDir(), Config{})

	f := fixture.MustBuildHoardingPermit()
	v1 := mustPublish(t, src, buildRequest(t, f))
	additive(f)
	v2 := mustPublish(t, src, buildRequest(t, f))

	pol, err := src.Policy(testSubject)
	if err != nil {
		t.Fatal(err)
	}

	// Blob residency is a precondition: adopting before shipping blobs
	// must refuse with ErrMissingBlob, not commit a hole.
	if _, err := dst.Adopt(testSubject, pol, *v1); !errors.Is(err, ErrMissingBlob) {
		t.Fatalf("adopt without blobs: %v, want ErrMissingBlob", err)
	}

	for _, v := range []*Version{v1, v2} {
		shipBlobs(t, src, dst, v)
		adopted, err := dst.Adopt(testSubject, pol, *v)
		if err != nil {
			t.Fatalf("Adopt(%d): %v", v.Number, err)
		}
		if !adopted {
			t.Fatalf("Adopt(%d) reported no-op on first arrival", v.Number)
		}
	}

	// Idempotence: re-adopting the same record is acknowledged silently.
	if adopted, err := dst.Adopt(testSubject, pol, *v2); err != nil || adopted {
		t.Fatalf("re-adopt = (%v, %v), want (false, nil)", adopted, err)
	}

	// The adopted history reads back byte-identically at the same
	// numbers, and the policy survived.
	for _, v := range []*Version{v1, v2} {
		for _, fl := range v.Files {
			want, err := src.VersionFile(testSubject, v.Number, fl.Name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dst.VersionFile(testSubject, v.Number, fl.Name)
			if err != nil {
				t.Fatalf("adopted VersionFile(%d, %s): %v", v.Number, fl.Name, err)
			}
			if string(want) != string(got) {
				t.Fatalf("file %s of version %d differs after adoption", fl.Name, v.Number)
			}
		}
	}
	if p, err := dst.Policy(testSubject); err != nil || p != pol {
		t.Fatalf("adopted policy = %q, %v; want %q", p, err, pol)
	}

	// Future publishes continue the adopted history.
	got, err := dst.Version(testSubject, 0)
	if err != nil || got.Number != 2 {
		t.Fatalf("latest after adoption = %+v, %v", got, err)
	}
}

func TestAdoptDiverged(t *testing.T) {
	src := openRepo(t, t.TempDir(), Config{})
	dst := openRepo(t, t.TempDir(), Config{})

	f := fixture.MustBuildHoardingPermit()
	v1 := mustPublish(t, src, buildRequest(t, f))
	mustPublish(t, dst, buildRequest(t, fixture.MustBuildHoardingPermit()))

	// Same number, different content (timestamps differ at minimum):
	// the receiver must refuse rather than guess which history wins.
	shipBlobs(t, src, dst, v1)
	bad := *v1
	bad.RootElement = "SomethingElse"
	if _, err := dst.Adopt(testSubject, "", bad); !errors.Is(err, ErrDiverged) {
		t.Fatalf("conflicting adopt: %v, want ErrDiverged", err)
	}

	// A number behind the local head is equally divergent.
	additive(f)
	v2 := mustPublish(t, src, buildRequest(t, f))
	local := openRepo(t, t.TempDir(), Config{})
	shipBlobs(t, src, local, v2)
	if adopted, err := local.Adopt(testSubject, "", *v2); err != nil || !adopted {
		t.Fatalf("adopting head first: %v", err)
	}
	shipBlobs(t, src, local, v1)
	if _, err := local.Adopt(testSubject, "", *v1); !errors.Is(err, ErrDiverged) {
		t.Fatalf("adopt behind head: %v, want ErrDiverged", err)
	}
}

func TestAdoptTombstoneNeedsNoBlobs(t *testing.T) {
	src := openRepo(t, t.TempDir(), Config{})
	dst := openRepo(t, t.TempDir(), Config{})

	f := fixture.MustBuildHoardingPermit()
	mustPublish(t, src, buildRequest(t, f))
	if err := src.Delete(testSubject, 1); err != nil {
		t.Fatal(err)
	}
	// Version() hides tombstones (ErrDeleted); the migration pull reads
	// the full listing, which carries them.
	var rec *Version
	vs, err := src.Versions(testSubject)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if vs[i].Number == 1 {
			rec = &vs[i]
		}
	}
	if rec == nil || !rec.Deleted {
		t.Fatalf("tombstone record not listed: %+v", vs)
	}

	// Adopting the tombstone must not demand the (possibly GC'd) blobs.
	if adopted, err := dst.Adopt(testSubject, "", *rec); err != nil || !adopted {
		t.Fatalf("adopting tombstone = (%v, %v)", adopted, err)
	}
	got, err := dst.Versions(testSubject)
	if err != nil || len(got) != 1 || !got[0].Deleted {
		t.Fatalf("adopted tombstone listing = %+v, %v", got, err)
	}
}

func TestAdoptValidation(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	if _, err := r.Adopt("", "", Version{Number: 1}); err == nil {
		t.Error("empty subject accepted")
	}
	if _, err := r.Adopt("s", "", Version{Number: 0}); err == nil {
		t.Error("zero version number accepted")
	}
	if _, err := r.Adopt("s", Policy("nonsense"), Version{Number: 1}); err == nil {
		t.Error("bogus policy accepted")
	}
}
