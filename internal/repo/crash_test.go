package repo

// Crash-recovery harness: every durability seam (WAL append, manifest
// checkpoint, blob write) is killed mid-stream via the faultio hooks,
// and torn WAL tails are produced byte-by-byte, to prove the guarantee
// the package documents — a publish that returned success survives any
// crash, a publish that failed leaves no trace, and recovery never
// leaves temp files behind.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/faultio"
	"github.com/go-ccts/ccts/internal/fixture"
)

// assertNoTempFiles fails if any *.tmp* residue exists under dir.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// copyTree clones a repository directory so a truncation sweep can
// destroy each copy independently.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// abandon simulates a crash: the WAL handle is closed without a
// checkpoint and the Repo is never used again.
func abandon(r *Repo) {
	r.mu.Lock()
	r.closed = true
	r.wal.Close()
	r.mu.Unlock()
}

func TestWALAppendFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{DefaultPolicy: PolicyNone})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)

	// Kill the append at several offsets, including a short write that
	// lands part of the record before failing.
	for _, limit := range []int64{0, 1, 40} {
		wrapWALWriter = func(w io.Writer) io.Writer { return &faultio.Writer{W: w, Limit: limit} }
		_, err := r.Publish(req)
		wrapWALWriter = nil
		if err == nil {
			t.Fatalf("limit %d: publish succeeded through a failing WAL", limit)
		}
		if errors.Is(err, ErrWAL) {
			t.Fatalf("limit %d: rollback failed, WAL poisoned", limit)
		}
	}

	// The failed appends were rolled back: state did not advance and the
	// WAL accepts the next publish at the right number.
	if vs, _ := r.Versions(testSubject); len(vs) != 1 {
		t.Fatalf("%d versions after failed appends, want 1", len(vs))
	}
	if v := mustPublish(t, r, req); v.Number != 2 {
		t.Errorf("number = %d, want 2 after rollback", v.Number)
	}

	// Reopen: only the two successful publishes exist.
	abandon(r)
	r2 := openRepo(t, dir, Config{})
	if vs, _ := r2.Versions(testSubject); len(vs) != 2 {
		t.Errorf("%d versions after reopen, want 2", len(vs))
	}
	assertNoTempFiles(t, dir)
}

// TestTornWALTailSweep truncates the log after every record boundary
// and at points inside each record; recovery must serve exactly the
// versions whose record survived intact and stay writable.
func TestTornWALTailSweep(t *testing.T) {
	seed := t.TempDir()
	r := openRepo(t, seed, Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	for i := 0; i < 3; i++ {
		mustPublish(t, r, req)
	}
	abandon(r)

	wal, err := os.ReadFile(filepath.Join(seed, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries are the newline offsets.
	var bounds []int
	for i, b := range wal {
		if b == '\n' {
			bounds = append(bounds, i+1)
		}
	}
	if len(bounds) != 3 {
		t.Fatalf("expected 3 WAL records, found %d", len(bounds))
	}

	type cut struct {
		name string
		at   int
		want int // surviving versions
	}
	cuts := []cut{
		{"empty", 0, 0},
		{"mid-first-record", bounds[0] / 2, 0},
		{"after-first", bounds[0], 1},
		{"torn-second", bounds[1] - 1, 1},
		{"after-second", bounds[1], 2},
		{"torn-third", bounds[2] - 1, 2},
		{"intact", bounds[2], 3},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			dir := copyTree(t, seed)
			if err := os.Truncate(filepath.Join(dir, walName), int64(c.at)); err != nil {
				t.Fatal(err)
			}
			r2 := openRepo(t, dir, Config{DefaultPolicy: PolicyNone})
			var got int
			if vs, err := r2.Versions(testSubject); err == nil {
				got = len(vs)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("cut at %d: %d versions, want %d", c.at, got, c.want)
			}
			// The torn tail was truncated away on a record boundary: the
			// repository accepts a new publish and numbers it correctly.
			v := mustPublish(t, r2, req)
			if v.Number != c.want+1 {
				t.Errorf("post-recovery number = %d, want %d", v.Number, c.want+1)
			}
			// Surviving versions serve their files byte-identically.
			for n := 1; n <= c.want; n++ {
				for _, f := range req.Files {
					data, err := r2.VersionFile(testSubject, n, f.Name)
					if err != nil {
						t.Fatalf("VersionFile(%d, %s): %v", n, f.Name, err)
					}
					if !bytes.Equal(data, f.Data) {
						t.Errorf("version %d file %s differs after recovery", n, f.Name)
					}
				}
			}
			assertNoTempFiles(t, dir)
		})
	}
}

func TestCorruptWALRecordDropsTail(t *testing.T) {
	seed := t.TempDir()
	r := openRepo(t, seed, Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	mustPublish(t, r, req)
	abandon(r)

	// Flip one byte inside the first record's payload: its CRC fails,
	// and the intact second record behind it must NOT be served (it
	// would be a gap in the sequence).
	path := filepath.Join(seed, walName)
	wal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wal[20] ^= 0xff
	if err := os.WriteFile(path, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openRepo(t, seed, Config{DefaultPolicy: PolicyNone})
	if _, err := r2.Versions(testSubject); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt first record: %v, want no recovered versions", err)
	}
	if v := mustPublish(t, r2, req); v.Number != 1 {
		t.Errorf("restart number = %d, want 1", v.Number)
	}
}

func TestCrashBetweenCheckpointAndCompaction(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	mustPublish(t, r, req)

	// Keep the pre-checkpoint WAL image, checkpoint (which empties the
	// log), then put the old records back — exactly the disk state of a
	// crash after the manifest rename but before the WAL truncate.
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	abandon(r)
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery must skip the already-absorbed records (their Seq is
	// covered by the manifest) instead of double-applying them.
	r2 := openRepo(t, dir, Config{DefaultPolicy: PolicyNone})
	vs, err := r2.Versions(testSubject)
	if err != nil || len(vs) != 2 {
		t.Fatalf("%d versions, %v; want 2", len(vs), err)
	}
	if v := mustPublish(t, r2, req); v.Number != 3 {
		t.Errorf("number = %d, want 3", v.Number)
	}
}

func TestWALSeqGapDiscardsLog(t *testing.T) {
	// A WAL whose first record does not continue the manifest's
	// sequence means records were lost; recovery must serve the
	// checkpoint alone rather than a state with holes.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	rec := &walRecord{Seq: 5, Op: opPublish, Subject: "s", Policy: PolicyNone,
		Version: &Version{Number: 1, InputSHA256: strings.Repeat("0", 64), Files: []FileRef{{Name: "a.xsd", SHA256: strings.Repeat("0", 64)}}}}
	line, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), line, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openRepo(t, dir, Config{})
	if subs := r.Subjects(); len(subs) != 0 {
		t.Errorf("gapped WAL produced subjects: %+v", subs)
	}
	// The bogus log was truncated away.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("gapped WAL not discarded: %v, %v", fi, err)
	}
}

func TestManifestCheckpointFault(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	mustPublish(t, r, req)

	wrapManifestWriter = func(w io.Writer) io.Writer { return &faultio.Writer{W: w, Limit: 16} }
	err := r.Checkpoint()
	wrapManifestWriter = nil
	if err == nil {
		t.Fatal("checkpoint succeeded through a failing manifest writer")
	}
	assertNoTempFiles(t, dir)
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Errorf("partial manifest left behind: %v", err)
	}

	// The records stayed in the WAL: a crash now loses nothing.
	abandon(r)
	r2 := openRepo(t, dir, Config{DefaultPolicy: PolicyNone})
	if vs, _ := r2.Versions(testSubject); len(vs) != 2 {
		t.Errorf("%d versions after failed checkpoint + reopen, want 2", len(vs))
	}

	// And a later checkpoint (no fault) still works on the recovered
	// repository.
	if err := r2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
}

func TestBlobWriteFault(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{DefaultPolicy: PolicyNone})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	wrapBlobWriter = func(w io.Writer) io.Writer { return &faultio.Writer{W: w, Limit: 128} }
	_, err := r.Publish(req)
	wrapBlobWriter = nil
	if err == nil {
		t.Fatal("publish succeeded through a failing blob writer")
	}
	if vs, err := r.Versions(testSubject); !errors.Is(err, ErrNotFound) {
		t.Errorf("failed publish committed %d versions: %v", len(vs), err)
	}
	assertNoTempFiles(t, dir)

	// The store is consistent: the same publish succeeds afterwards and
	// serves intact content.
	v := mustPublish(t, r, req)
	data, err := r.VersionFile(testSubject, v.Number, req.Files[0].Name)
	if err != nil || !bytes.Equal(data, req.Files[0].Data) {
		t.Errorf("content after recovered publish differs: %v", err)
	}
	if st := r.Stats(); st.Blobs != int64(len(req.Files))+2 {
		t.Errorf("blob count %d after fault + retry, want %d", st.Blobs, len(req.Files)+2)
	}
}

func TestOpenRemovesTempResidue(t *testing.T) {
	dir := t.TempDir()
	fan := filepath.Join(dir, blobDirName, "ab")
	if err := os.MkdirAll(fan, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, manifestName+".tmp123"),
		filepath.Join(dir, walName+".tmp9"),
		filepath.Join(fan, "deadbeef.tmp42"),
	} {
		if err := os.WriteFile(p, []byte("residue"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	openRepo(t, dir, Config{})
	assertNoTempFiles(t, dir)
}
