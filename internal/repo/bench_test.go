package repo

import (
	"fmt"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
)

// BenchmarkRepoPublishCold measures a publish whose content is new every
// iteration: every blob misses the store, so the run prices the full
// canonicalize + hash + fsync + WAL pipeline.
func BenchmarkRepoPublishCold(b *testing.B) {
	r := openRepo(b, b.TempDir(), Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(b, fixture.MustBuildHoardingPermit())
	var total int64
	for _, f := range req.Files {
		total += int64(len(f.Data))
	}
	b.SetBytes(total + int64(len(req.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter := req
		iter.Input = append([]byte(fmt.Sprintf("<!--%d-->", i)), req.Input...)
		iter.Files = append([]File(nil), req.Files...)
		iter.Files[0] = File{Name: req.Files[0].Name, Data: append([]byte(fmt.Sprintf("<!--%d-->", i)), req.Files[0].Data...)}
		if _, err := r.Publish(iter); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepoPublishWarm measures a publish whose content already
// resides in the store: every blob write short-circuits on the stat, so
// the run prices the dedup fast path plus the WAL record.
func BenchmarkRepoPublishWarm(b *testing.B) {
	r := openRepo(b, b.TempDir(), Config{DefaultPolicy: PolicyNone, CheckpointEvery: 1 << 20})
	req := buildRequest(b, fixture.MustBuildHoardingPermit())
	var total int64
	for _, f := range req.Files {
		total += int64(len(f.Data))
	}
	b.SetBytes(total + int64(len(req.Input)))
	if _, err := r.Publish(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Publish(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepoVersionFile measures the lock-free read path: snapshot
// lookup plus a verified blob read.
func BenchmarkRepoVersionFile(b *testing.B) {
	r := openRepo(b, b.TempDir(), Config{DefaultPolicy: PolicyNone})
	req := buildRequest(b, fixture.MustBuildHoardingPermit())
	if _, err := r.Publish(req); err != nil {
		b.Fatal(err)
	}
	name := req.Files[0].Name
	b.SetBytes(int64(len(req.Files[0].Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.VersionFile(testSubject, 1, name); err != nil {
			b.Fatal(err)
		}
	}
}
