package repo

// Replication support. The repository's durability discipline — a
// CRC-framed WAL with contiguous sequence numbers ahead of an fsync'd
// manifest checkpoint — doubles as a replication log: a primary ships
// committed frames byte-for-byte to followers, which append them to
// their own WAL and fold them through the same state-transition code
// path as local commits (state.apply), so a follower's snapshot is the
// primary's snapshot.
//
// The primary side keeps an in-memory tail of recently committed
// frames (Config.ReplTail) that survives checkpoints, so a follower
// that lags a little rides through WAL compaction; one that lags past
// the tail gets ErrSeqGap and re-bootstraps from a snapshot
// (SnapshotManifest + the blobs it references, resuming the stream
// from the snapshot's WALSeq).
//
// The follower side is three calls: PutBlob stores fetched content,
// InstallSnapshot replaces the whole state with a primary snapshot,
// and ApplyFrame verifies (CRC, sequence continuity, blob presence,
// state consistency) and commits one shipped frame. A frame that fails
// verification is divergence — the caller discards local state and
// re-bootstraps rather than guessing.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Replication sentinels.
var (
	// ErrSeqGap reports a replication position the primary can no longer
	// serve linearly (behind the retained tail, or ahead of the log —
	// a diverged pair). The follower must re-bootstrap from a snapshot.
	ErrSeqGap = errors.New("repo: replication sequence gap")
	// ErrBadFrame reports a replicated WAL frame that failed CRC or
	// structural validation — divergence, not a transient fault.
	ErrBadFrame = errors.New("repo: replication frame corrupt")
	// ErrMissingBlob reports a publish frame whose content blobs are not
	// in the local store; fetch and PutBlob them before ApplyFrame.
	ErrMissingBlob = errors.New("repo: replication frame references a blob missing from the local store")
	// ErrDiverged reports a frame that decoded cleanly but conflicts
	// with the local state (e.g. an out-of-order version number): the
	// follower's history is not a prefix of the primary's.
	ErrDiverged = errors.New("repo: replicated frame conflicts with local state")
)

// Frame is the decoded metadata view of one replicated WAL frame —
// what a follower needs to prepare for ApplyFrame without knowing the
// record encoding.
type Frame struct {
	Seq     int64
	Op      string
	Subject string
	// Blobs lists the content addresses a publish frame references
	// (input, schema files, diagnostics); they must be resident locally
	// before the frame can be applied.
	Blobs []string
}

// DecodeFrame parses one CRC-framed WAL line (with or without its
// trailing newline). A frame that fails CRC or structural validation
// answers ErrBadFrame.
func DecodeFrame(line []byte) (*Frame, error) {
	rec, ok := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
	if !ok {
		return nil, ErrBadFrame
	}
	f := &Frame{Seq: rec.Seq, Op: rec.Op, Subject: rec.Subject}
	// Tombstones (adopted deleted versions) carry metadata only; their
	// content may be long reclaimed at the source, so a follower must
	// not try to fetch it.
	if rec.Op == opPublish && !rec.Version.Deleted {
		f.Blobs = versionBlobs(rec.Version)
	}
	return f, nil
}

// versionBlobs lists the content addresses one version references.
func versionBlobs(v *Version) []string {
	blobs := make([]string, 0, len(v.Files)+2)
	blobs = append(blobs, v.InputSHA256)
	for _, fr := range v.Files {
		blobs = append(blobs, fr.SHA256)
	}
	if v.DiagnosticsSHA256 != "" {
		blobs = append(blobs, v.DiagnosticsSHA256)
	}
	return blobs
}

// WALSeq returns the sequence number of the last committed record.
func (r *Repo) WALSeq() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.walSeq
}

// WALTail returns up to max committed frames with sequence numbers
// beyond from, each a complete CRC-framed line including its newline —
// concatenating them reproduces the primary's WAL bytes. The returned
// channel is closed on the next commit (or on Close), so a caller that
// got no frames can wait for more. A position the tail no longer
// covers, or one beyond the log, answers ErrSeqGap: the follower must
// re-bootstrap from a snapshot.
func (r *Repo) WALTail(from int64, max int) (frames [][]byte, notify <-chan struct{}, err error) {
	if max <= 0 {
		max = 256
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, ErrClosed
	}
	if from > r.walSeq || from+1 < r.tailStart {
		return nil, nil, fmt.Errorf("%w: from %d, retained [%d, %d]", ErrSeqGap, from, r.tailStart, r.walSeq)
	}
	lo := int(from + 1 - r.tailStart)
	hi := len(r.tail)
	if hi-lo > max {
		hi = lo + max
	}
	if lo < hi {
		frames = make([][]byte, hi-lo)
		copy(frames, r.tail[lo:hi])
	}
	return frames, r.commitCh, nil
}

// SnapshotManifest serializes the current state in the manifest format
// together with the WAL sequence number it covers — the bootstrap
// payload for a new follower. The pair is taken under the commit lock,
// so resuming the stream from walSeq+1 observes every later record
// exactly once.
func (r *Repo) SnapshotManifest() (data []byte, walSeq int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClosed
	}
	man := r.buildManifestLocked()
	data, err = json.Marshal(man)
	if err != nil {
		return nil, 0, fmt.Errorf("repo: encoding snapshot manifest: %w", err)
	}
	return data, r.walSeq, nil
}

// SnapshotBlobs parses a snapshot manifest and returns the WAL
// sequence it covers plus the deduplicated content addresses its live
// versions reference — the fetch list for a bootstrapping follower
// (tombstoned versions keep their metadata but need no content).
func SnapshotBlobs(data []byte) (walSeq int64, blobs []string, err error) {
	man, err := parseManifest(data)
	if err != nil {
		return 0, nil, err
	}
	seen := map[string]bool{}
	for _, sub := range man.Subjects {
		for i := range sub.Versions {
			v := &sub.Versions[i]
			if v.Deleted {
				continue
			}
			for _, sha := range versionBlobs(v) {
				if !seen[sha] {
					seen[sha] = true
					blobs = append(blobs, sha)
				}
			}
		}
	}
	return man.WALSeq, blobs, nil
}

// InstallSnapshot replaces the repository's entire state with a
// primary's snapshot manifest: the manifest is written atomically, the
// local WAL is emptied, and the replication position becomes the
// snapshot's WALSeq. Every blob a live version references must already
// be resident (PutBlob); a missing one fails the install before any
// state changes. Concurrent readers cut over atomically from the old
// state to the new.
func (r *Repo) InstallSnapshot(data []byte) error {
	man, err := parseManifest(data)
	if err != nil {
		return err
	}
	st := &state{subjects: map[string]*subjectState{}}
	for _, ms := range man.Subjects {
		versions := make([]Version, len(ms.Versions))
		copy(versions, ms.Versions)
		st.subjects[ms.Name] = &subjectState{name: ms.Name, policy: ms.Policy, versions: versions}
		for i := range versions {
			if versions[i].Deleted {
				continue
			}
			for _, sha := range versionBlobs(&versions[i]) {
				if !r.HasBlob(sha) {
					return fmt.Errorf("%w: %s (version %s/%d)", ErrMissingBlob, sha, ms.Name, versions[i].Number)
				}
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if err := atomicWrite(r.dir, manifestPath(r.dir), data, r.manifestWrap()); err != nil {
		r.reportFault(err)
		return err
	}
	if err := r.wal.Truncate(0); err != nil {
		return fmt.Errorf("repo: resetting WAL for snapshot: %w", err)
	}
	if _, err := r.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("repo: resetting WAL for snapshot: %w", err)
	}
	r.walSize = 0
	r.walSeq = man.WALSeq
	r.walBad = false // the log is empty again and usable
	r.sinceCkp = 0
	r.tail = nil
	r.tailStart = man.WALSeq + 1
	r.stateP.Store(st)
	if r.commitCh != nil {
		close(r.commitCh)
		r.commitCh = make(chan struct{})
	}
	return nil
}

// ApplyFrame verifies and commits one replicated WAL frame: the CRC
// and structure must hold (ErrBadFrame), the sequence must continue
// the local log (ErrSeqGap; a frame at or below the local position is
// acknowledged without effect, so re-delivery is idempotent), every
// referenced blob must be resident (ErrMissingBlob), and the record
// must fold cleanly into the local state (ErrDiverged). The frame is
// appended to the local WAL byte-for-byte as shipped and fsync'd
// before it becomes visible, so a restarted follower resumes from
// exactly the frames it acknowledged.
func (r *Repo) ApplyFrame(line []byte) (seq int64, err error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	rec, ok := decodeLine(line)
	if !ok {
		return 0, ErrBadFrame
	}
	if rec.Op == opPublish && !rec.Version.Deleted {
		for _, sha := range versionBlobs(rec.Version) {
			if !r.HasBlob(sha) {
				return 0, fmt.Errorf("%w: %s (frame %d)", ErrMissingBlob, sha, rec.Seq)
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	if r.walBad {
		return 0, ErrWAL
	}
	if rec.Seq <= r.walSeq {
		return r.walSeq, nil // re-delivered frame: already applied
	}
	if rec.Seq != r.walSeq+1 {
		return 0, fmt.Errorf("%w: have %d, frame %d", ErrSeqGap, r.walSeq, rec.Seq)
	}
	next := r.stateP.Load().clone(rec.Subject)
	if aerr := next.apply(rec); aerr != nil {
		return 0, fmt.Errorf("%w: %v", ErrDiverged, aerr)
	}
	framed := make([]byte, 0, len(line)+1)
	framed = append(framed, line...)
	framed = append(framed, '\n')
	if err := r.commitLocked(rec.Seq, framed, next); err != nil {
		return 0, err
	}
	return rec.Seq, nil
}

// PutBlob stores data in the content-addressed blob store (fsync'd,
// idempotent) and returns its address — the follower half of snapshot
// bootstrap and frame application. Callers fetching by address should
// verify the returned sum matches the one requested.
func (r *Repo) PutBlob(data []byte) (string, error) {
	return r.writeBlob(data)
}

// HasBlob reports whether a content address is resident locally.
func (r *Repo) HasBlob(sha string) bool {
	if len(sha) != 64 {
		return false
	}
	_, err := os.Stat(blobPath(r.dir, sha))
	return err == nil
}
