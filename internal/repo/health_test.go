package repo

import (
	"bytes"
	"errors"
	"io"
	"syscall"
	"testing"

	"github.com/go-ccts/ccts/internal/faultio"
	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/health"
)

// TestReadOnlyModeRefusesWrites: with the tracker in read-only, Publish
// and Delete answer health.ErrReadOnly before touching the WAL, while
// snapshot reads keep serving.
func TestReadOnlyModeRefusesWrites(t *testing.T) {
	tr := health.NewTracker(health.Options{})
	r := openRepo(t, t.TempDir(), Config{Health: tr})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	v := mustPublish(t, r, req)

	tr.ReportWriteFault(faultio.ErrNoSpace)

	if _, err := r.Publish(req); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("Publish in read-only = %v, want health.ErrReadOnly", err)
	}
	if err := r.Delete(testSubject, v.Number); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("Delete in read-only = %v, want health.ErrReadOnly", err)
	}

	// Reads still serve byte-identical content.
	for _, f := range req.Files {
		data, err := r.VersionFile(testSubject, v.Number, f.Name)
		if err != nil {
			t.Fatalf("VersionFile(%s) in read-only: %v", f.Name, err)
		}
		if !bytes.Equal(data, f.Data) {
			t.Errorf("file %s differs in read-only mode", f.Name)
		}
	}
}

// TestBlobFaultFlipsTrackerReadOnly: an injected ENOSPC on the blob
// writer fails the publish, reports the fault, and disables writes.
func TestBlobFaultFlipsTrackerReadOnly(t *testing.T) {
	inj := &faultio.Injector{}
	inj.Set(faultio.ErrNoSpace)
	tr := health.NewTracker(health.Options{})
	r := openRepo(t, t.TempDir(), Config{
		Health:    tr,
		FaultBlob: func(w io.Writer) io.Writer { return inj.Wrap(w) },
	})

	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	_, err := r.Publish(req)
	if err == nil {
		t.Fatal("Publish succeeded through an ENOSPC blob writer")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("publish error %v does not classify as ENOSPC", err)
	}
	if got := tr.State(); got != health.ReadOnly {
		t.Fatalf("tracker state = %v after blob fault, want ReadOnly", got)
	}
	if tr.Reason() != "disk-full" {
		t.Errorf("reason = %q, want disk-full", tr.Reason())
	}
	// The very next publish is refused up front — no second disk hit.
	if _, err := r.Publish(req); !errors.Is(err, health.ErrReadOnly) {
		t.Fatalf("second Publish = %v, want health.ErrReadOnly", err)
	}
}

// TestWALFaultFlipsTrackerReadOnly: same contract for the WAL seam.
func TestWALFaultFlipsTrackerReadOnly(t *testing.T) {
	inj := &faultio.Injector{}
	tr := health.NewTracker(health.Options{})
	r := openRepo(t, t.TempDir(), Config{
		Health:   tr,
		FaultWAL: func(w io.Writer) io.Writer { return inj.Wrap(w) },
	})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req) // seam healthy: baseline publish works

	inj.Set(faultio.ErrNoSpace)
	f := fixture.MustBuildHoardingPermit()
	additive(f)
	if _, err := r.Publish(buildRequest(t, f)); err == nil {
		t.Fatal("Publish succeeded through a failing WAL writer")
	}
	if tr.State() != health.ReadOnly {
		t.Fatalf("tracker state = %v after WAL fault, want ReadOnly", tr.State())
	}
}

// TestRecoveryReenablesPublish: once the fault clears and probes
// succeed, the tracker climbs back and publishes work again; a
// successful publish while degraded counts toward full recovery.
func TestRecoveryReenablesPublish(t *testing.T) {
	inj := &faultio.Injector{}
	tr := health.NewTracker(health.Options{RecoverAfter: 1})
	r := openRepo(t, t.TempDir(), Config{
		Health:    tr,
		FaultBlob: func(w io.Writer) io.Writer { return inj.Wrap(w) },
	})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	inj.Set(faultio.ErrNoSpace)
	if _, err := r.Publish(req); err == nil {
		t.Fatal("publish succeeded under injected fault")
	}
	if tr.State() != health.ReadOnly {
		t.Fatalf("state = %v, want ReadOnly", tr.State())
	}

	// Fault clears; a probe success promotes read-only → degraded,
	// where writes are allowed again.
	inj.Clear()
	tr.ReportProbe(nil)
	if tr.State() != health.Degraded {
		t.Fatalf("state = %v after probe success, want Degraded", tr.State())
	}
	v := mustPublish(t, r, req)

	// The successful commit reported write-OK and finished recovery.
	if tr.State() != health.Healthy {
		t.Errorf("state = %v after degraded publish, want Healthy", tr.State())
	}
	// And the stored bytes are intact despite the earlier failed attempt.
	for _, f := range req.Files {
		data, err := r.VersionFile(testSubject, v.Number, f.Name)
		if err != nil {
			t.Fatalf("VersionFile(%s): %v", f.Name, err)
		}
		if !bytes.Equal(data, f.Data) {
			t.Errorf("file %s differs after recovery", f.Name)
		}
	}
}
