// Package repo is a crash-safe, disk-backed, versioned repository of
// published schema sets — the persistence the paper's "standardization
// and harmonization process" needs: business libraries are revised over
// time and the derived XSD artifacts must stay consistent across
// revisions. A subject (one named pipeline of a business library,
// typically its baseURN) holds an append-only sequence of versions;
// each version records the canonicalized XMI input, the generation
// options fingerprint, the full generated schema set and its
// diagnostics, all stored as content-addressed blobs shared across
// versions (an unchanged schema costs no new bytes).
//
// Publishing a new version runs the model comparison of internal/diff
// against the previous version and enforces the subject's compatibility
// policy: under PolicyBackward a revision with breaking changes
// (removed or retyped components, tightened cardinalities, removed
// literals) is rejected with a structured *CompatError; under
// PolicyNone everything publishes. Deletions tombstone a version —
// the number is never reused and the sequence stays auditable.
//
// Durability follows the write-ahead discipline of the schema writer:
// blobs are fsync'd before the WAL record that references them, the WAL
// is fsync'd before the in-memory state advances, and the manifest
// checkpoint is an fsync'd temp-file+rename. Reopening after a crash —
// including one that tore the WAL tail mid-record — recovers exactly
// the versions whose publish had completed. Concurrent publishes to one
// subject are serialized; reads are lock-free snapshots.
package repo

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/go-ccts/ccts/internal/contentaddr"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/diff"
	"github.com/go-ccts/ccts/internal/health"
	"github.com/go-ccts/ccts/internal/limits"
	"github.com/go-ccts/ccts/internal/metrics"
	"github.com/go-ccts/ccts/internal/profile"
	"github.com/go-ccts/ccts/internal/xmi"
)

// Policy is a subject's compatibility gate for new versions.
type Policy string

const (
	// PolicyNone accepts every revision.
	PolicyNone Policy = "none"
	// PolicyBackward rejects revisions whose diff against the previous
	// version contains breaking changes (diff.Change.Breaking).
	PolicyBackward Policy = "backward"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyNone, PolicyBackward:
		return Policy(s), nil
	}
	return "", fmt.Errorf("repo: unknown compatibility policy %q (want %q or %q)", s, PolicyNone, PolicyBackward)
}

// FileRef names one schema document of a version and the blob holding
// its bytes.
type FileRef struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Version is one published schema set. Versions are immutable once
// published; Deleted marks a tombstone (the content may be reclaimed by
// GC, the metadata and number remain).
type Version struct {
	// Number is 1-based and strictly increasing per subject; tombstoned
	// numbers are never reused.
	Number int `json:"number"`
	// InputSHA256 addresses the canonicalized XMI the version was
	// generated from.
	InputSHA256 string `json:"inputSha256"`
	InputSize   int64  `json:"inputSize"`
	// Fingerprint is the generation-options part of the content address
	// (library, root, style, annotation — everything that changes the
	// output).
	Fingerprint string `json:"fingerprint,omitempty"`
	// RootElement is the selected root element for DOCLibrary runs.
	RootElement string `json:"rootElement,omitempty"`
	// Files lists the schema documents in generation order.
	Files []FileRef `json:"files"`
	// DiagnosticsSHA256 addresses the serialized diagnostics report.
	DiagnosticsSHA256 string `json:"diagnosticsSha256,omitempty"`
	DiagnosticsSize   int64  `json:"diagnosticsSize,omitempty"`
	// Deleted marks a tombstone.
	Deleted bool `json:"deleted,omitempty"`
}

// File is one named schema document to publish.
type File struct {
	Name string
	Data []byte
}

// PublishRequest is the input to Publish. The caller provides the
// already-generated schema set; the repository stores it and gates it.
type PublishRequest struct {
	// Subject names the pipeline (typically the library's baseURN).
	Subject string
	// Input is the XMI document the schemas were generated from; it is
	// canonicalized (contentaddr.Canonicalize) before storage.
	Input []byte
	// Fingerprint is the generation-options fingerprint.
	Fingerprint string
	// RootElement, for DOCLibrary runs, names the chosen root.
	RootElement string
	// Files is the generated schema set in generation order.
	Files []File
	// Diagnostics is the serialized diagnostics report, optional.
	Diagnostics []byte
	// Policy, when non-empty, sets the subject's compatibility policy
	// as of this publish; empty inherits the subject's current policy
	// (or the repository default for a new subject).
	Policy Policy
	// Model is the imported model of Input, when the caller already has
	// it; nil makes the repository import Input itself for the
	// compatibility diff.
	Model *core.Model
}

// CompatError reports a publish rejected by the subject's policy.
type CompatError struct {
	Subject string
	// Against is the version number the revision was compared with.
	Against int
	Policy  Policy
	// Report is the full model diff; Report.Breaking() holds the
	// changes that caused the rejection.
	Report *diff.Report
}

// Error summarizes the rejection.
func (e *CompatError) Error() string {
	return fmt.Sprintf("repo: publish to subject %q rejected by %s policy: %d breaking change(s) against version %d",
		e.Subject, e.Policy, len(e.Report.Breaking()), e.Against)
}

// Sentinel errors.
var (
	// ErrNotFound reports an unknown subject or version number.
	ErrNotFound = errors.New("repo: not found")
	// ErrDeleted reports access to a tombstoned version.
	ErrDeleted = errors.New("repo: version deleted")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("repo: closed")
	// ErrWAL reports a write-ahead log this process could not repair
	// after a failed append; reopen the repository to recover.
	ErrWAL = errors.New("repo: write-ahead log unusable; reopen the repository")
)

// Config tunes a repository.
type Config struct {
	// DefaultPolicy applies to subjects created without an explicit
	// policy; empty means PolicyBackward (the safe default for a
	// harmonization pipeline).
	DefaultPolicy Policy
	// Limits bounds the XMI imports the compatibility gate performs;
	// the zero value means limits.Default().
	Limits limits.Limits
	// CheckpointEvery is the number of WAL records between manifest
	// checkpoints; 0 means 64. Checkpoints compact the WAL.
	CheckpointEvery int
	// ReplTail is how many committed WAL frames the repository retains
	// in memory for replication (WALTail); 0 means 1024. The tail
	// survives manifest checkpoints so a lagging follower rides through
	// WAL compaction without re-bootstrapping.
	ReplTail int
	// Health, when non-nil, couples the repository to the process's
	// degradation state machine: every WAL, manifest and blob write
	// fault is reported to it, successful commits feed its recovery
	// hysteresis, and Publish/Delete refuse with health.ErrReadOnly
	// while it is in read-only mode (reads are unaffected).
	Health *health.Tracker
	// FaultWAL, FaultManifest and FaultBlob interpose on the
	// corresponding write streams of this repository instance. They are
	// fault-injection seams for tests (chaos soaks flip them mid-run via
	// faultio.Injector); leave nil in production.
	FaultWAL      func(io.Writer) io.Writer
	FaultManifest func(io.Writer) io.Writer
	FaultBlob     func(io.Writer) io.Writer
}

// subjectState is the immutable per-subject snapshot; commits replace
// the whole struct, readers never see partial updates.
type subjectState struct {
	name     string
	policy   Policy
	versions []Version // ascending Number
}

// latestLive returns the newest non-tombstoned version, or nil.
func (s *subjectState) latestLive() *Version {
	for i := len(s.versions) - 1; i >= 0; i-- {
		if !s.versions[i].Deleted {
			return &s.versions[i]
		}
	}
	return nil
}

func (s *subjectState) find(number int) *Version {
	for i := range s.versions {
		if s.versions[i].Number == number {
			return &s.versions[i]
		}
	}
	return nil
}

// state is the repository-wide immutable snapshot.
type state struct {
	subjects map[string]*subjectState
}

// clone prepares a copy-on-write mutation of one subject: the map is
// copied, the target subject (if present) gets a fresh struct with a
// copied versions slice, every other subject is shared.
func (st *state) clone(subject string) *state {
	out := &state{subjects: make(map[string]*subjectState, len(st.subjects)+1)}
	for k, v := range st.subjects {
		out.subjects[k] = v
	}
	if sub, ok := out.subjects[subject]; ok {
		cp := &subjectState{name: sub.name, policy: sub.policy}
		cp.versions = make([]Version, len(sub.versions))
		copy(cp.versions, sub.versions)
		out.subjects[subject] = cp
	}
	return out
}

// apply folds one WAL record into the state (which must be private to
// the caller: a recovery build or a clone). Recovery and live commits
// share this single code path so a replayed log always reproduces the
// live process's state.
func (st *state) apply(rec *walRecord) error {
	sub := st.subjects[rec.Subject]
	switch rec.Op {
	case opPublish:
		if sub == nil {
			sub = &subjectState{name: rec.Subject, policy: rec.Policy}
			st.subjects[rec.Subject] = sub
		}
		if rec.Policy != "" {
			sub.policy = rec.Policy
		}
		if last := len(sub.versions); last > 0 && rec.Version.Number <= sub.versions[last-1].Number {
			return fmt.Errorf("repo: WAL publish %s/%d out of order", rec.Subject, rec.Version.Number)
		}
		sub.versions = append(sub.versions, *rec.Version)
	case opDelete:
		if sub == nil {
			return fmt.Errorf("repo: WAL delete for unknown subject %q", rec.Subject)
		}
		v := sub.find(rec.Number)
		if v == nil {
			return fmt.Errorf("repo: WAL delete for unknown version %s/%d", rec.Subject, rec.Number)
		}
		v.Deleted = true
	default:
		return fmt.Errorf("repo: unknown WAL op %q", rec.Op)
	}
	return nil
}

// Repo is the repository handle. Create with Open; all methods are safe
// for concurrent use.
type Repo struct {
	dir             string
	defaultPolicy   Policy
	lim             limits.Limits
	checkpointEvery int
	health          *health.Tracker

	// Per-instance fault seams (Config.Fault*); the package-level
	// wrap*Writer vars remain as the in-package test hooks.
	fWAL, fManifest, fBlob func(io.Writer) io.Writer

	// stateP is the lock-free read snapshot.
	stateP atomic.Pointer[state]

	// mu guards the WAL file, sequence numbers, checkpoint counter,
	// the replication tail, the subject-lock table and the closed flag.
	mu       sync.Mutex
	wal      *os.File
	walSeq   int64
	walSize  int64
	walBad   bool
	sinceCkp int
	closed   bool
	subLocks map[string]*sync.Mutex

	// Replication state: tail holds the encoded frames for sequence
	// numbers [tailStart, walSeq], capped at replTail and retained
	// across checkpoints; commitCh is closed (and renewed) on every
	// commit so replication streams can long-poll for new frames.
	replTail  int
	tailStart int64
	tail      [][]byte
	commitCh  chan struct{}

	// gcMu lets publishes (readers) overlap each other while GC
	// (writer) gets exclusivity over the blob store.
	gcMu sync.RWMutex

	// blobMu serializes blob-store writes and the counters below.
	blobMu    sync.Mutex
	blobCount int64
	blobBytes int64

	publishes  atomic.Int64
	rejections atomic.Int64
	deletes    atomic.Int64

	// Optional instruments; nil until Instrument is called.
	mSubjects, mVersions, mBlobs, mBlobBytes, mLogicalBytes *metrics.Gauge
	mPublishes, mRejections, mDeletes                       *metrics.Counter
}

// Open loads (or initializes) the repository at dir: abandoned temp
// files are removed, the manifest snapshot is loaded, the WAL's valid
// prefix is replayed on top of it (a torn or corrupt tail is truncated
// away), and the blob store is inventoried.
func Open(dir string, cfg Config) (*Repo, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		return nil, fmt.Errorf("repo: creating %s: %w", dir, err)
	}
	if err := removeTempFiles(dir); err != nil {
		return nil, fmt.Errorf("repo: cleaning temp files: %w", err)
	}

	r := &Repo{
		dir:             dir,
		defaultPolicy:   cfg.DefaultPolicy,
		lim:             cfg.Limits,
		checkpointEvery: cfg.CheckpointEvery,
		health:          cfg.Health,
		fWAL:            cfg.FaultWAL,
		fManifest:       cfg.FaultManifest,
		fBlob:           cfg.FaultBlob,
		subLocks:        map[string]*sync.Mutex{},
	}
	if r.defaultPolicy == "" {
		r.defaultPolicy = PolicyBackward
	}
	if _, err := ParsePolicy(string(r.defaultPolicy)); err != nil {
		return nil, err
	}
	if r.lim == (limits.Limits{}) {
		r.lim = limits.Default()
	}
	if r.checkpointEvery <= 0 {
		r.checkpointEvery = 64
	}
	r.replTail = cfg.ReplTail
	if r.replTail <= 0 {
		r.replTail = 1024
	}
	r.commitCh = make(chan struct{})

	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	st := &state{subjects: map[string]*subjectState{}}
	for _, ms := range man.Subjects {
		versions := make([]Version, len(ms.Versions))
		copy(versions, ms.Versions)
		st.subjects[ms.Name] = &subjectState{name: ms.Name, policy: ms.Policy, versions: versions}
	}
	r.walSeq = man.WALSeq
	r.tailStart = man.WALSeq + 1

	walPath := filepath.Join(dir, walName)
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repo: opening WAL: %w", err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("repo: reading WAL: %w", err)
	}
	recs, goodLen := scanWAL(data)
	for _, rec := range recs {
		if rec.Seq <= man.WALSeq {
			// Already absorbed by the manifest (crash between a
			// checkpoint and the WAL compaction that follows it).
			continue
		}
		if rec.Seq != r.walSeq+1 {
			// A gap against the manifest's checkpoint: records were
			// lost; serve the checkpoint rather than a state with holes.
			goodLen = 0
			break
		}
		if err := st.apply(rec); err != nil {
			wal.Close()
			return nil, err
		}
		r.walSeq = rec.Seq
		// Rebuild the replication tail from the replayed records.
		// encodeRecord is deterministic, so the re-encoded frame is
		// byte-identical to the one originally appended.
		if line, err := encodeRecord(rec); err == nil {
			r.tail = append(r.tail, line)
			if len(r.tail) > r.replTail {
				r.tail = r.tail[1:]
				r.tailStart++
			}
		}
	}
	if goodLen < len(data) {
		// Torn or corrupt tail (crash mid-append): drop it so future
		// appends start on a record boundary.
		if err := wal.Truncate(int64(goodLen)); err != nil {
			wal.Close()
			return nil, fmt.Errorf("repo: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := wal.Seek(0, io.SeekEnd); err != nil {
		wal.Close()
		return nil, fmt.Errorf("repo: seeking WAL: %w", err)
	}
	r.wal = wal
	if goodLen < len(data) {
		r.walSize = int64(goodLen)
	} else {
		r.walSize = int64(len(data))
	}

	count, bytes, err := scanBlobs(dir)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("repo: scanning blob store: %w", err)
	}
	r.blobCount, r.blobBytes = count, bytes

	r.stateP.Store(st)
	return r, nil
}

// Close checkpoints the manifest (best-effort) and closes the WAL.
// Close is idempotent and safe concurrently with any other method
// (including an in-flight Checkpoint — both serialize on the commit
// lock); the repository must not be used afterwards. Replication
// long-pollers blocked in WALTail waits are woken.
func (r *Repo) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	ckpErr := r.checkpointLocked()
	closeErr := r.wal.Close()
	if r.commitCh != nil {
		close(r.commitCh)
		r.commitCh = nil
	}
	if ckpErr != nil {
		return ckpErr
	}
	return closeErr
}

// Instrument registers the repository's gauges and counters with a
// metrics registry under the repo_* names.
func (r *Repo) Instrument(reg *metrics.Registry) {
	r.mSubjects = reg.Gauge("repo_subjects", "Subjects in the schema repository.")
	r.mVersions = reg.Gauge("repo_versions", "Live (non-tombstoned) versions in the schema repository.")
	r.mBlobs = reg.Gauge("repo_blobs", "Content-addressed blobs resident in the repository store.")
	r.mBlobBytes = reg.Gauge("repo_blob_bytes", "Bytes resident in the repository blob store.")
	r.mLogicalBytes = reg.Gauge("repo_logical_bytes", "Bytes all live versions would occupy without blob sharing.")
	r.mPublishes = reg.Counter("repo_publishes_total", "Versions published to the repository.")
	r.mRejections = reg.Counter("repo_publish_rejected_total", "Publishes rejected by a compatibility policy.")
	r.mDeletes = reg.Counter("repo_deletes_total", "Versions tombstoned.")
	r.mPublishes.Add(r.publishes.Load())
	r.mRejections.Add(r.rejections.Load())
	r.mDeletes.Add(r.deletes.Load())
	r.syncMetrics()
}

// syncMetrics refreshes the gauges from the current snapshot.
func (r *Repo) syncMetrics() {
	if r.mSubjects == nil {
		return
	}
	st := r.Stats()
	r.mSubjects.Set(int64(st.Subjects))
	r.mVersions.Set(int64(st.Versions))
	r.mBlobs.Set(st.Blobs)
	r.mBlobBytes.Set(st.BlobBytes)
	r.mLogicalBytes.Set(st.LogicalBytes)
}

// reportFault feeds a write-path failure to the health tracker: the
// repository flips the process to read-only mode rather than letting
// every subsequent publish rediscover the broken disk.
func (r *Repo) reportFault(err error) {
	if r.health != nil && err != nil {
		r.health.ReportWriteFault(err)
	}
}

// reportWriteOK feeds a durable commit to the recovery hysteresis.
func (r *Repo) reportWriteOK() {
	if r.health != nil {
		r.health.ReportWriteOK()
	}
}

// writesAllowed guards the mutation entry points while degraded
// operation is active.
func (r *Repo) writesAllowed() error {
	if r.health != nil && !r.health.AllowWrites() {
		return fmt.Errorf("repo: %w (reason: %s)", health.ErrReadOnly, r.health.Reason())
	}
	return nil
}

// subjectLock returns the mutex serializing mutations of one subject.
func (r *Repo) subjectLock(subject string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.subLocks[subject]
	if !ok {
		l = &sync.Mutex{}
		r.subLocks[subject] = l
	}
	return l
}

// Publish gates, stores and commits one new version of a subject. On a
// policy violation it returns a *CompatError carrying the full diff
// report and stores nothing. The returned Version is the committed
// record (durable before return).
func (r *Repo) Publish(req PublishRequest) (*Version, error) {
	if req.Subject == "" {
		return nil, errors.New("repo: publish needs a subject")
	}
	if len(req.Files) == 0 {
		return nil, errors.New("repo: publish needs at least one schema file")
	}
	if req.Policy != "" {
		if _, err := ParsePolicy(string(req.Policy)); err != nil {
			return nil, err
		}
	}
	if err := r.writesAllowed(); err != nil {
		return nil, err
	}
	canon := contentaddr.Canonicalize(req.Input)

	// Publishes hold the GC read-lock across blob writes and the WAL
	// commit so the collector can never reclaim blobs referenced by a
	// publish that is about to commit.
	r.gcMu.RLock()
	defer r.gcMu.RUnlock()

	lock := r.subjectLock(req.Subject)
	lock.Lock()
	defer lock.Unlock()

	st := r.stateP.Load()
	sub := st.subjects[req.Subject]
	policy := r.defaultPolicy
	if sub != nil {
		policy = sub.policy
	}
	if req.Policy != "" {
		policy = req.Policy
	}

	var prev *Version
	if sub != nil {
		prev = sub.latestLive()
	}
	if prev != nil && policy == PolicyBackward {
		report, err := r.compatReport(prev, canon, req.Model)
		if err != nil {
			return nil, err
		}
		if len(report.Breaking()) > 0 {
			r.rejections.Add(1)
			if r.mRejections != nil {
				r.mRejections.Inc()
			}
			return nil, &CompatError{Subject: req.Subject, Against: prev.Number, Policy: policy, Report: report}
		}
	}

	v := Version{
		Number:      1,
		InputSize:   int64(len(canon)),
		Fingerprint: req.Fingerprint,
		RootElement: req.RootElement,
	}
	if sub != nil && len(sub.versions) > 0 {
		v.Number = sub.versions[len(sub.versions)-1].Number + 1
	}

	// Blob writes precede the WAL record that references them; each
	// blob is fsync'd, so a durable record implies durable content.
	var err error
	if v.InputSHA256, err = r.writeBlob(canon); err != nil {
		return nil, err
	}
	for _, f := range req.Files {
		sha, err := r.writeBlob(f.Data)
		if err != nil {
			return nil, err
		}
		v.Files = append(v.Files, FileRef{Name: f.Name, SHA256: sha, Size: int64(len(f.Data))})
	}
	if len(req.Diagnostics) > 0 {
		if v.DiagnosticsSHA256, err = r.writeBlob(req.Diagnostics); err != nil {
			return nil, err
		}
		v.DiagnosticsSize = int64(len(req.Diagnostics))
	}

	rec := &walRecord{Op: opPublish, Subject: req.Subject, Policy: policy, Version: &v}
	if err := r.commit(rec); err != nil {
		return nil, err
	}
	r.publishes.Add(1)
	if r.mPublishes != nil {
		r.mPublishes.Inc()
	}
	r.syncMetrics()
	return &v, nil
}

// compatReport diffs the stored previous input against the new one.
func (r *Repo) compatReport(prev *Version, canon []byte, newModel *core.Model) (*diff.Report, error) {
	oldData, err := r.Blob(prev.InputSHA256)
	if err != nil {
		return nil, fmt.Errorf("repo: loading version %d input: %w", prev.Number, err)
	}
	oldModel, err := r.importModel(oldData)
	if err != nil {
		return nil, fmt.Errorf("repo: reimporting version %d input: %w", prev.Number, err)
	}
	if newModel == nil {
		if newModel, err = r.importModel(canon); err != nil {
			return nil, fmt.Errorf("repo: importing revision: %w", err)
		}
	}
	return diff.Compare(oldModel, newModel), nil
}

// importModel runs the hardened XMI import and profile extraction.
func (r *Repo) importModel(data []byte) (*core.Model, error) {
	um, _, err := xmi.ImportWithOptions(bytes.NewReader(data), xmi.ImportOptions{Limits: r.lim})
	if err != nil {
		return nil, err
	}
	return profile.Extract(um)
}

// Check is the dry-run form of the compatibility gate: it reports
// whether publishing input to subject would pass, without storing
// anything. An unknown subject is always compatible (the publish would
// create it).
func (r *Repo) Check(subject string, input []byte, model *core.Model) (*CompatResult, error) {
	if subject == "" {
		return nil, errors.New("repo: check needs a subject")
	}
	canon := contentaddr.Canonicalize(input)
	st := r.stateP.Load()
	sub := st.subjects[subject]
	policy := r.defaultPolicy
	if sub != nil {
		policy = sub.policy
	}
	res := &CompatResult{Subject: subject, Policy: policy, Compatible: true}
	var prev *Version
	if sub != nil {
		prev = sub.latestLive()
	}
	if prev == nil {
		// Still validate that the input imports: a dry run should fail
		// where the publish would.
		if model == nil {
			if _, err := r.importModel(canon); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	report, err := r.compatReport(prev, canon, model)
	if err != nil {
		return nil, err
	}
	res.Against = prev.Number
	res.Report = report
	res.Compatible = policy != PolicyBackward || len(report.Breaking()) == 0
	return res, nil
}

// CompatResult is the outcome of a dry-run compatibility check.
type CompatResult struct {
	Subject string
	Policy  Policy
	// Against is the version compared with; 0 when the subject has no
	// live versions (first publish, always compatible).
	Against    int
	Compatible bool
	// Report is the full diff (nil when Against is 0).
	Report *diff.Report
}

// Delete tombstones one version: its metadata and number remain, reads
// of it answer ErrDeleted, and GC may reclaim blobs only it referenced.
func (r *Repo) Delete(subject string, number int) error {
	if err := r.writesAllowed(); err != nil {
		return err
	}
	lock := r.subjectLock(subject)
	lock.Lock()
	defer lock.Unlock()

	st := r.stateP.Load()
	sub := st.subjects[subject]
	if sub == nil {
		return fmt.Errorf("%w: subject %q", ErrNotFound, subject)
	}
	v := sub.find(number)
	if v == nil {
		return fmt.Errorf("%w: version %s/%d", ErrNotFound, subject, number)
	}
	if v.Deleted {
		return fmt.Errorf("%w: version %s/%d", ErrDeleted, subject, number)
	}
	if err := r.commit(&walRecord{Op: opDelete, Subject: subject, Number: number}); err != nil {
		return err
	}
	r.deletes.Add(1)
	if r.mDeletes != nil {
		r.mDeletes.Inc()
	}
	r.syncMetrics()
	return nil
}

// commit appends one record to the WAL (fsync'd) and only then swaps in
// the new state snapshot. A failed append is rolled back by truncating
// the WAL to its previous size; if even that fails the WAL is marked
// unusable and every later mutation returns ErrWAL until reopen.
func (r *Repo) commit(rec *walRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.walBad {
		return ErrWAL
	}
	rec.Seq = r.walSeq + 1
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	next := r.stateP.Load().clone(rec.Subject)
	if err := next.apply(rec); err != nil {
		// A local record the state cannot absorb is a programming error,
		// not a runtime condition (replicated frames go through
		// ApplyFrame, which treats the same failure as divergence).
		panic(err)
	}
	return r.commitLocked(rec.Seq, line, next)
}

// commitLocked makes one already-validated frame durable and visible:
// the line is appended to the WAL and fsync'd (rolled back by truncation
// on failure; an unrollbackable log is marked unusable until reopen),
// then the prepared state snapshot is published, the replication tail
// advances and long-pollers are woken. Shared by local commits and
// replicated ApplyFrame so both paths have identical durability.
// r.mu held; seq must be r.walSeq+1 and next must already reflect the
// frame.
func (r *Repo) commitLocked(seq int64, line []byte, next *state) error {
	var w io.Writer = r.wal
	if wrap := r.walWrap(); wrap != nil {
		w = wrap(r.wal)
	}
	if _, werr := w.Write(line); werr != nil {
		if terr := r.wal.Truncate(r.walSize); terr != nil {
			r.walBad = true
		} else {
			r.wal.Seek(r.walSize, 0)
		}
		r.reportFault(werr)
		return fmt.Errorf("repo: appending WAL record: %w", werr)
	}
	if serr := r.wal.Sync(); serr != nil {
		if terr := r.wal.Truncate(r.walSize); terr != nil {
			r.walBad = true
		} else {
			r.wal.Seek(r.walSize, 0)
		}
		r.reportFault(serr)
		return fmt.Errorf("repo: syncing WAL: %w", serr)
	}
	r.walSeq = seq
	r.walSize += int64(len(line))
	r.stateP.Store(next)
	r.appendTailLocked(line)

	r.reportWriteOK()
	r.sinceCkp++
	if r.sinceCkp >= r.checkpointEvery {
		// Best-effort: a failed checkpoint leaves the records in the
		// WAL, and the next commit retries.
		if err := r.checkpointLocked(); err == nil {
			r.sinceCkp = 0
		}
	}
	return nil
}

// appendTailLocked records one committed frame in the replication tail
// (trimmed to the retention cap) and wakes long-polling streams. r.mu
// held.
func (r *Repo) appendTailLocked(line []byte) {
	cp := make([]byte, len(line))
	copy(cp, line)
	r.tail = append(r.tail, cp)
	if drop := len(r.tail) - r.replTail; drop > 0 {
		kept := make([][]byte, len(r.tail)-drop)
		copy(kept, r.tail[drop:])
		r.tail = kept
		r.tailStart += int64(drop)
	}
	if r.commitCh != nil {
		close(r.commitCh)
		r.commitCh = make(chan struct{})
	}
}

// walWrap resolves the WAL fault seam: the per-instance Config seam
// wins, then the package-level test hook.
func (r *Repo) walWrap() func(io.Writer) io.Writer {
	if r.fWAL != nil {
		return r.fWAL
	}
	return wrapWALWriter
}

func (r *Repo) manifestWrap() func(io.Writer) io.Writer {
	if r.fManifest != nil {
		return r.fManifest
	}
	return wrapManifestWriter
}

func (r *Repo) blobWrap() func(io.Writer) io.Writer {
	if r.fBlob != nil {
		return r.fBlob
	}
	return wrapBlobWriter
}

// Checkpoint compacts the log: the current state is written as the
// manifest (atomic, fsync'd) and the WAL is emptied. Also called
// automatically every CheckpointEvery records and on Close.
func (r *Repo) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if err := r.checkpointLocked(); err != nil {
		return err
	}
	r.sinceCkp = 0
	return nil
}

// buildManifestLocked snapshots the current state in manifest form,
// covering WAL records through r.walSeq; r.mu held.
func (r *Repo) buildManifestLocked() manifest {
	st := r.stateP.Load()
	man := manifest{Format: manifestFormat, WALSeq: r.walSeq}
	names := make([]string, 0, len(st.subjects))
	for name := range st.subjects {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sub := st.subjects[name]
		man.Subjects = append(man.Subjects, manifestSubject{Name: sub.name, Policy: sub.policy, Versions: sub.versions})
	}
	return man
}

// checkpointLocked writes the manifest and truncates the WAL; the
// in-memory replication tail is retained so followers keep streaming
// across compactions. r.mu held.
func (r *Repo) checkpointLocked() error {
	man := r.buildManifestLocked()
	data, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("repo: encoding manifest: %w", err)
	}
	if err := atomicWrite(r.dir, filepath.Join(r.dir, manifestName), data, r.manifestWrap()); err != nil {
		r.reportFault(err)
		return err
	}
	// The manifest now covers every WAL record; empty the log. A crash
	// before the truncate is safe: recovery skips records with
	// Seq <= manifest.WALSeq.
	if err := r.wal.Truncate(0); err != nil {
		return fmt.Errorf("repo: compacting WAL: %w", err)
	}
	if _, err := r.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("repo: compacting WAL: %w", err)
	}
	r.walSize = 0
	return nil
}

// writeBlob stores data under its content address (idempotent) and
// returns the address. New blobs are fsync'd before the store's
// counters advance.
func (r *Repo) writeBlob(data []byte) (string, error) {
	sha := contentaddr.BlobSum(data)
	path := blobPath(r.dir, sha)
	r.blobMu.Lock()
	defer r.blobMu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return sha, nil // dedup: shared with an earlier version
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		r.reportFault(err)
		return "", fmt.Errorf("repo: creating blob directory: %w", err)
	}
	if err := atomicWrite(dir, path, data, r.blobWrap()); err != nil {
		r.reportFault(err)
		return "", err
	}
	r.blobCount++
	r.blobBytes += int64(len(data))
	return sha, nil
}

// Blob returns the bytes stored under a content address, verifying them
// against it (a mismatch means on-disk corruption).
func (r *Repo) Blob(sha string) ([]byte, error) {
	if len(sha) != 64 {
		return nil, fmt.Errorf("%w: blob %q", ErrNotFound, sha)
	}
	data, err := os.ReadFile(blobPath(r.dir, sha))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: blob %s", ErrNotFound, sha)
	}
	if err != nil {
		return nil, fmt.Errorf("repo: reading blob %s: %w", sha, err)
	}
	if contentaddr.BlobSum(data) != sha {
		return nil, fmt.Errorf("repo: blob %s corrupt on disk", sha)
	}
	return data, nil
}

// SubjectInfo summarizes one subject for listings.
type SubjectInfo struct {
	Name   string
	Policy Policy
	// Versions counts live versions; Latest is the newest live number
	// (0 when all are tombstoned).
	Versions int
	Latest   int
}

// Subjects lists every subject, sorted by name.
func (r *Repo) Subjects() []SubjectInfo {
	st := r.stateP.Load()
	out := make([]SubjectInfo, 0, len(st.subjects))
	for _, sub := range st.subjects {
		info := SubjectInfo{Name: sub.name, Policy: sub.policy}
		for i := range sub.versions {
			if !sub.versions[i].Deleted {
				info.Versions++
				info.Latest = sub.versions[i].Number
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Policy returns a subject's compatibility policy.
func (r *Repo) Policy(subject string) (Policy, error) {
	sub := r.stateP.Load().subjects[subject]
	if sub == nil {
		return "", fmt.Errorf("%w: subject %q", ErrNotFound, subject)
	}
	return sub.policy, nil
}

// Versions returns a subject's full version sequence (tombstones
// included, marked Deleted) in ascending order.
func (r *Repo) Versions(subject string) ([]Version, error) {
	sub := r.stateP.Load().subjects[subject]
	if sub == nil {
		return nil, fmt.Errorf("%w: subject %q", ErrNotFound, subject)
	}
	out := make([]Version, len(sub.versions))
	copy(out, sub.versions)
	return out, nil
}

// Version returns one version's metadata. Tombstoned versions answer
// ErrDeleted; number 0 means the latest live version.
func (r *Repo) Version(subject string, number int) (Version, error) {
	sub := r.stateP.Load().subjects[subject]
	if sub == nil {
		return Version{}, fmt.Errorf("%w: subject %q", ErrNotFound, subject)
	}
	if number == 0 {
		if v := sub.latestLive(); v != nil {
			return *v, nil
		}
		return Version{}, fmt.Errorf("%w: subject %q has no live versions", ErrNotFound, subject)
	}
	v := sub.find(number)
	if v == nil {
		return Version{}, fmt.Errorf("%w: version %s/%d", ErrNotFound, subject, number)
	}
	if v.Deleted {
		return Version{}, fmt.Errorf("%w: version %s/%d", ErrDeleted, subject, number)
	}
	return *v, nil
}

// VersionFile returns the bytes of one named schema file of a version.
func (r *Repo) VersionFile(subject string, number int, name string) ([]byte, error) {
	v, err := r.Version(subject, number)
	if err != nil {
		return nil, err
	}
	for _, f := range v.Files {
		if f.Name == name {
			return r.Blob(f.SHA256)
		}
	}
	return nil, fmt.Errorf("%w: file %q in version %s/%d", ErrNotFound, name, subject, v.Number)
}

// Stats is a point-in-time snapshot of repository occupancy.
type Stats struct {
	// Subjects counts subjects; Versions counts live versions across
	// them; Deleted counts tombstones.
	Subjects int
	Versions int
	Deleted  int
	// Blobs and BlobBytes describe the physical store; LogicalBytes is
	// what live versions would occupy without content-address sharing.
	Blobs        int64
	BlobBytes    int64
	LogicalBytes int64
	// Publishes, Rejections and Deletes count lifetime operations of
	// this process.
	Publishes  int64
	Rejections int64
	Deletes    int64
}

// DedupRatio is logical over physical bytes: 1.0 means no sharing, 2.0
// means versions share half their content.
func (s Stats) DedupRatio() float64 {
	if s.BlobBytes == 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.BlobBytes)
}

// Stats computes the current snapshot.
func (r *Repo) Stats() Stats {
	st := r.stateP.Load()
	out := Stats{
		Subjects:   len(st.subjects),
		Publishes:  r.publishes.Load(),
		Rejections: r.rejections.Load(),
		Deletes:    r.deletes.Load(),
	}
	for _, sub := range st.subjects {
		for i := range sub.versions {
			v := &sub.versions[i]
			if v.Deleted {
				out.Deleted++
				continue
			}
			out.Versions++
			out.LogicalBytes += v.InputSize + v.DiagnosticsSize
			for _, f := range v.Files {
				out.LogicalBytes += f.Size
			}
		}
	}
	r.blobMu.Lock()
	out.Blobs, out.BlobBytes = r.blobCount, r.blobBytes
	r.blobMu.Unlock()
	return out
}

// GCResult reports what a collection reclaimed.
type GCResult struct {
	Blobs int64
	Bytes int64
}

// GC removes blobs referenced by no live version — orphans from crashed
// publishes and content only tombstoned versions used. It excludes
// publishers for its duration.
func (r *Repo) GC() (GCResult, error) {
	r.gcMu.Lock()
	defer r.gcMu.Unlock()

	st := r.stateP.Load()
	live := map[string]bool{}
	for _, sub := range st.subjects {
		for i := range sub.versions {
			v := &sub.versions[i]
			if v.Deleted {
				continue
			}
			live[v.InputSHA256] = true
			if v.DiagnosticsSHA256 != "" {
				live[v.DiagnosticsSHA256] = true
			}
			for _, f := range v.Files {
				live[f.SHA256] = true
			}
		}
	}

	var res GCResult
	root := filepath.Join(r.dir, blobDirName)
	entries, err := os.ReadDir(root)
	if err != nil {
		return res, fmt.Errorf("repo: scanning blob store: %w", err)
	}
	r.blobMu.Lock()
	defer r.blobMu.Unlock()
	for _, fan := range entries {
		if !fan.IsDir() {
			continue
		}
		fanDir := filepath.Join(root, fan.Name())
		blobs, err := os.ReadDir(fanDir)
		if err != nil {
			return res, fmt.Errorf("repo: scanning blob store: %w", err)
		}
		for _, b := range blobs {
			if live[b.Name()] {
				continue
			}
			info, err := b.Info()
			if err != nil {
				continue
			}
			if err := os.Remove(filepath.Join(fanDir, b.Name())); err != nil {
				return res, fmt.Errorf("repo: removing blob %s: %w", b.Name(), err)
			}
			res.Blobs++
			res.Bytes += info.Size()
			r.blobCount--
			r.blobBytes -= info.Size()
		}
	}
	r.syncMetricsAfterGC()
	return res, nil
}

// syncMetricsAfterGC refreshes gauges without re-taking blobMu.
func (r *Repo) syncMetricsAfterGC() {
	if r.mBlobs == nil {
		return
	}
	r.mBlobs.Set(r.blobCount)
	r.mBlobBytes.Set(r.blobBytes)
}
