package repo

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/go-ccts/ccts/internal/fixture"
)

// replicate ships every frame the follower is missing from primary and
// applies it (fetching referenced blobs first), returning the follower's
// new applied seq.
func replicate(t *testing.T, primary, follower *Repo) int64 {
	t.Helper()
	for {
		frames, _, err := primary.WALTail(follower.WALSeq(), 0)
		if err != nil {
			t.Fatalf("WALTail(%d): %v", follower.WALSeq(), err)
		}
		if len(frames) == 0 {
			return follower.WALSeq()
		}
		for _, line := range frames {
			fr, err := DecodeFrame(line)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			for _, sha := range fr.Blobs {
				if follower.HasBlob(sha) {
					continue
				}
				data, err := primary.Blob(sha)
				if err != nil {
					t.Fatalf("fetching blob %s: %v", sha, err)
				}
				if got, err := follower.PutBlob(data); err != nil || got != sha {
					t.Fatalf("PutBlob: %s, %v (want %s)", got, err, sha)
				}
			}
			if _, err := follower.ApplyFrame(line); err != nil {
				t.Fatalf("ApplyFrame(seq %d): %v", fr.Seq, err)
			}
		}
	}
}

// bootstrap installs a primary snapshot into the follower, fetching the
// blobs it references.
func bootstrap(t *testing.T, primary, follower *Repo) {
	t.Helper()
	data, _, err := primary.SnapshotManifest()
	if err != nil {
		t.Fatalf("SnapshotManifest: %v", err)
	}
	_, blobs, err := SnapshotBlobs(data)
	if err != nil {
		t.Fatalf("SnapshotBlobs: %v", err)
	}
	for _, sha := range blobs {
		b, err := primary.Blob(sha)
		if err != nil {
			t.Fatalf("fetching blob %s: %v", sha, err)
		}
		if _, err := follower.PutBlob(b); err != nil {
			t.Fatalf("PutBlob: %v", err)
		}
	}
	if err := follower.InstallSnapshot(data); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
}

// assertIdentical compares every subject, version and file byte-for-byte
// between two repositories.
func assertIdentical(t *testing.T, primary, follower *Repo) {
	t.Helper()
	ps, fs := primary.Subjects(), follower.Subjects()
	if len(ps) != len(fs) {
		t.Fatalf("subject count: primary %d, follower %d", len(ps), len(fs))
	}
	for i := range ps {
		if ps[i] != fs[i] {
			t.Fatalf("subject %d: primary %+v, follower %+v", i, ps[i], fs[i])
		}
		pv, err := primary.Versions(ps[i].Name)
		if err != nil {
			t.Fatalf("primary Versions: %v", err)
		}
		fv, err := follower.Versions(ps[i].Name)
		if err != nil {
			t.Fatalf("follower Versions: %v", err)
		}
		if len(pv) != len(fv) {
			t.Fatalf("version count %s: primary %d, follower %d", ps[i].Name, len(pv), len(fv))
		}
		for j := range pv {
			if pv[j].Number != fv[j].Number || pv[j].Deleted != fv[j].Deleted || pv[j].InputSHA256 != fv[j].InputSHA256 {
				t.Fatalf("version %s/%d diverges: %+v vs %+v", ps[i].Name, pv[j].Number, pv[j], fv[j])
			}
			if pv[j].Deleted {
				continue
			}
			for _, f := range pv[j].Files {
				want, err := primary.VersionFile(ps[i].Name, pv[j].Number, f.Name)
				if err != nil {
					t.Fatalf("primary VersionFile: %v", err)
				}
				got, err := follower.VersionFile(ps[i].Name, pv[j].Number, f.Name)
				if err != nil {
					t.Fatalf("follower VersionFile: %v", err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("file %s of %s/%d differs between primary and follower", f.Name, ps[i].Name, pv[j].Number)
				}
			}
		}
	}
}

func TestWALTailStreamsCommits(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())

	frames, notify, err := r.WALTail(0, 0)
	if err != nil {
		t.Fatalf("WALTail on empty repo: %v", err)
	}
	if len(frames) != 0 {
		t.Fatalf("empty repo returned %d frames", len(frames))
	}
	select {
	case <-notify:
		t.Fatal("notify fired before any commit")
	default:
	}

	mustPublish(t, r, req)
	select {
	case <-notify:
	case <-time.After(5 * time.Second):
		t.Fatal("notify did not fire on commit")
	}
	mustPublish(t, r, req)

	frames, _, err = r.WALTail(0, 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	// Frames are the WAL bytes: concatenating them must rescan cleanly
	// with contiguous sequence numbers.
	recs, goodLen := scanWAL(bytes.Join(frames, nil))
	if len(recs) != 2 || goodLen != len(bytes.Join(frames, nil)) {
		t.Fatalf("frame concatenation did not rescan: %d recs, goodLen %d", len(recs), goodLen)
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Fatalf("frame %d has seq %d", i, rec.Seq)
		}
	}

	// A partial read resumes mid-tail.
	frames, _, err = r.WALTail(1, 0)
	if err != nil || len(frames) != 1 {
		t.Fatalf("WALTail(1): %d frames, %v", len(frames), err)
	}
	if fr, err := DecodeFrame(frames[0]); err != nil || fr.Seq != 2 {
		t.Fatalf("resumed frame: %+v, %v", fr, err)
	}
}

func TestWALTailGapAndCap(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{ReplTail: 2})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	for i := 0; i < 3; i++ {
		mustPublish(t, r, req)
	}
	// Seq 1 left the capped tail: streaming from 0 must demand a
	// re-bootstrap, not serve a gapped stream.
	if _, _, err := r.WALTail(0, 0); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("WALTail(0) after cap eviction: %v, want ErrSeqGap", err)
	}
	if frames, _, err := r.WALTail(1, 0); err != nil || len(frames) != 2 {
		t.Fatalf("WALTail(1): %d frames, %v", len(frames), err)
	}
	// Ahead of the log = diverged pair.
	if _, _, err := r.WALTail(99, 0); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("WALTail(99): %v, want ErrSeqGap", err)
	}
}

func TestTailSurvivesCheckpoint(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	mustPublish(t, r, req)
	if err := r.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The WAL file is empty now, but replication must keep serving the
	// retained tail.
	frames, _, err := r.WALTail(0, 0)
	if err != nil {
		t.Fatalf("WALTail after checkpoint: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames after checkpoint, want 2", len(frames))
	}
}

func TestReplicationByteIdentical(t *testing.T) {
	primary := openRepo(t, t.TempDir(), Config{})
	follower := openRepo(t, t.TempDir(), Config{})

	f := fixture.MustBuildHoardingPermit()
	mustPublish(t, primary, buildRequest(t, f))
	additive(f)
	mustPublish(t, primary, buildRequest(t, f))

	replicate(t, primary, follower)
	assertIdentical(t, primary, follower)

	// Later mutations (including tombstones) keep streaming.
	mustPublish(t, primary, buildRequest(t, f))
	if err := primary.Delete(testSubject, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	replicate(t, primary, follower)
	assertIdentical(t, primary, follower)
	if follower.WALSeq() != primary.WALSeq() {
		t.Fatalf("seq mismatch: primary %d, follower %d", primary.WALSeq(), follower.WALSeq())
	}
}

func TestSnapshotBootstrapAndResume(t *testing.T) {
	primary := openRepo(t, t.TempDir(), Config{})
	f := fixture.MustBuildHoardingPermit()
	mustPublish(t, primary, buildRequest(t, f))
	mustPublish(t, primary, buildRequest(t, f))
	if err := primary.Delete(testSubject, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	followerDir := t.TempDir()
	follower := openRepo(t, followerDir, Config{})
	bootstrap(t, primary, follower)
	if follower.WALSeq() != primary.WALSeq() {
		t.Fatalf("after bootstrap: follower seq %d, primary %d", follower.WALSeq(), primary.WALSeq())
	}
	assertIdentical(t, primary, follower)

	// Stream resumes from the snapshot's seq.
	mustPublish(t, primary, buildRequest(t, f))
	replicate(t, primary, follower)
	assertIdentical(t, primary, follower)

	// A restarted follower resumes from its applied seq: the installed
	// manifest plus its own WAL reproduce the state without a new
	// bootstrap.
	seq := follower.WALSeq()
	if err := follower.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened := openRepo(t, followerDir, Config{})
	if reopened.WALSeq() != seq {
		t.Fatalf("reopened follower at seq %d, want %d", reopened.WALSeq(), seq)
	}
	assertIdentical(t, primary, reopened)
}

func TestInstallSnapshotRefusesMissingBlobs(t *testing.T) {
	primary := openRepo(t, t.TempDir(), Config{})
	mustPublish(t, primary, buildRequest(t, fixture.MustBuildHoardingPermit()))
	data, _, err := primary.SnapshotManifest()
	if err != nil {
		t.Fatalf("SnapshotManifest: %v", err)
	}
	follower := openRepo(t, t.TempDir(), Config{})
	if err := follower.InstallSnapshot(data); !errors.Is(err, ErrMissingBlob) {
		t.Fatalf("InstallSnapshot without blobs: %v, want ErrMissingBlob", err)
	}
	// Nothing changed: the follower still serves the empty state.
	if n := len(follower.Subjects()); n != 0 {
		t.Fatalf("failed install left %d subjects", n)
	}
}

func TestApplyFrameValidation(t *testing.T) {
	primary := openRepo(t, t.TempDir(), Config{})
	follower := openRepo(t, t.TempDir(), Config{})
	mustPublish(t, primary, buildRequest(t, fixture.MustBuildHoardingPermit()))
	mustPublish(t, primary, buildRequest(t, fixture.MustBuildHoardingPermit()))
	frames, _, err := primary.WALTail(0, 0)
	if err != nil || len(frames) != 2 {
		t.Fatalf("WALTail: %d frames, %v", len(frames), err)
	}

	// Garbage and corrupted frames are rejected as ErrBadFrame.
	if _, err := follower.ApplyFrame([]byte("not a frame\n")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage frame: %v, want ErrBadFrame", err)
	}
	corrupt := bytes.Replace(frames[0], []byte(`"seq":1`), []byte(`"seq":9`), 1)
	if _, err := follower.ApplyFrame(corrupt); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("CRC-mismatched frame: %v, want ErrBadFrame", err)
	}

	// A frame whose blobs are not resident is refused before any write.
	if _, err := follower.ApplyFrame(frames[0]); !errors.Is(err, ErrMissingBlob) {
		t.Fatalf("frame without blobs: %v, want ErrMissingBlob", err)
	}
	fr, err := DecodeFrame(frames[0])
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	for _, sha := range fr.Blobs {
		b, err := primary.Blob(sha)
		if err != nil {
			t.Fatalf("Blob: %v", err)
		}
		if _, err := follower.PutBlob(b); err != nil {
			t.Fatalf("PutBlob: %v", err)
		}
	}

	// Out-of-order delivery is a gap, not a partial apply.
	fr2, err := DecodeFrame(frames[1])
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	for _, sha := range fr2.Blobs {
		b, _ := primary.Blob(sha)
		follower.PutBlob(b)
	}
	if _, err := follower.ApplyFrame(frames[1]); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("skipped frame: %v, want ErrSeqGap", err)
	}

	if seq, err := follower.ApplyFrame(frames[0]); err != nil || seq != 1 {
		t.Fatalf("ApplyFrame(1): %d, %v", seq, err)
	}
	// Re-delivery is acknowledged idempotently.
	if seq, err := follower.ApplyFrame(frames[0]); err != nil || seq != 1 {
		t.Fatalf("re-delivered frame: %d, %v", seq, err)
	}

	// A frame that decodes but conflicts with local state is divergence
	// and must not reach the WAL.
	sizeBefore := follower.WALSeq()
	rec, ok := decodeLine(bytes.TrimSuffix(frames[1], []byte("\n")))
	if !ok {
		t.Fatal("decodeLine on valid frame failed")
	}
	rec.Seq = follower.WALSeq() + 1
	rec.Version.Number = 1 // conflicts with the version already applied
	diverged, err := encodeRecord(rec)
	if err != nil {
		t.Fatalf("encodeRecord: %v", err)
	}
	if _, err := follower.ApplyFrame(diverged); !errors.Is(err, ErrDiverged) {
		t.Fatalf("conflicting frame: %v, want ErrDiverged", err)
	}
	if follower.WALSeq() != sizeBefore {
		t.Fatal("diverged frame advanced the WAL")
	}

	// The stream continues after the follower resynchronizes its view.
	if seq, err := follower.ApplyFrame(frames[1]); err != nil || seq != 2 {
		t.Fatalf("ApplyFrame(2): %d, %v", seq, err)
	}
	assertIdentical(t, primary, follower)
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	r := openRepo(t, t.TempDir(), Config{})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)

	// Long-pollers blocked on the commit channel must be woken by Close.
	_, notify, err := r.WALTail(r.WALSeq(), 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := r.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// Racing Checkpoint and Publish may see ErrClosed; they must
			// never panic or corrupt the handle.
			if err := r.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("Checkpoint: %v", err)
			}
			if _, err := r.Publish(req); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("Publish: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	select {
	case <-notify:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the long-poll channel")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := r.WALTail(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WALTail after Close: %v, want ErrClosed", err)
	}
}

func TestTailRebuiltOnReopen(t *testing.T) {
	dir := t.TempDir()
	r := openRepo(t, dir, Config{})
	req := buildRequest(t, fixture.MustBuildHoardingPermit())
	mustPublish(t, r, req)
	mustPublish(t, r, req)
	frames, _, err := r.WALTail(0, 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}
	seq := r.WALSeq()

	// Simulate a crash: snapshot the directory while the repository is
	// still open (every commit is fsync'd, no checkpoint has run), then
	// reopen the copy. WAL replay must rebuild the replication tail
	// byte-identically to the frames the original served.
	crashDir := copyTree(t, dir)
	reopened := openRepo(t, crashDir, Config{})
	if reopened.WALSeq() != seq {
		t.Fatalf("reopened seq %d, want %d", reopened.WALSeq(), seq)
	}
	rebuilt, _, err := reopened.WALTail(0, 0)
	if err != nil {
		t.Fatalf("WALTail after reopen: %v", err)
	}
	if len(rebuilt) != len(frames) {
		t.Fatalf("rebuilt tail has %d frames, want %d", len(rebuilt), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(frames[i], rebuilt[i]) {
			t.Fatalf("rebuilt frame %d differs from the original", i)
		}
	}
}
