package repo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// On-disk layout under the repository directory:
//
//	manifest.json          compacted snapshot of all subjects (atomic
//	                       temp-file+rename, fsync'd)
//	wal.log                append-only records since the manifest's
//	                       checkpoint, one CRC-framed JSON line each
//	blobs/<p>/<sha256>     content-addressed artifact store (p = first
//	                       two hex digits); schemas, diagnostics and
//	                       canonicalized inputs, shared across versions
//
// Every record and the manifest are fsync'd before the in-memory state
// advances, so a publish that returned success survives a crash. A
// crash mid-append leaves a torn tail in wal.log; recovery stops at the
// first record that is unterminated, fails its CRC, breaks JSON or
// breaks sequence-number continuity, truncates the log there and serves
// exactly the preceding fully committed records.

const (
	manifestName = "manifest.json"
	walName      = "wal.log"
	blobDirName  = "blobs"

	// manifestFormat versions the on-disk encoding.
	manifestFormat = 1
)

// WAL operations.
const (
	opPublish = "publish"
	opDelete  = "delete"
)

// walRecord is one committed mutation.
type walRecord struct {
	// Seq numbers records contiguously across the repository's life;
	// the manifest stores the highest seq it has absorbed.
	Seq     int64  `json:"seq"`
	Op      string `json:"op"`
	Subject string `json:"subject"`
	// Policy is the subject's compatibility policy as of this record
	// (publish records only).
	Policy Policy `json:"policy,omitempty"`
	// Version is the published version (publish records only).
	Version *Version `json:"version,omitempty"`
	// Number is the tombstoned version (delete records only).
	Number int `json:"number,omitempty"`
}

// Fault-injection seams, nil in production: tests interpose
// faultio.Writer to kill a WAL append, a manifest checkpoint or a blob
// write mid-stream and then assert recovery.
var (
	wrapWALWriter      func(io.Writer) io.Writer
	wrapManifestWriter func(io.Writer) io.Writer
	wrapBlobWriter     func(io.Writer) io.Writer
)

// encodeRecord frames rec as "crc32(payload) payload\n".
func encodeRecord(rec *walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("repo: encoding WAL record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// scanWAL decodes the longest valid prefix of a WAL image. It returns
// the decoded records and the byte length of that prefix; everything
// after it is a torn or corrupt tail the caller should truncate away.
// Records must carry contiguous sequence numbers: a gap or repeat ends
// the valid prefix at the previous record.
func scanWAL(data []byte) (recs []*walRecord, goodLen int) {
	off := 0
	var lastSeq int64 = -1
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail
		}
		line := data[off : off+nl]
		rec, ok := decodeLine(line)
		if !ok {
			break
		}
		if lastSeq >= 0 && rec.Seq != lastSeq+1 {
			break
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += nl + 1
		goodLen = off
	}
	return recs, goodLen
}

// decodeLine parses one "crc payload" frame.
func decodeLine(line []byte) (*walRecord, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return nil, false
	}
	rec := &walRecord{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, false
	}
	if rec.Seq <= 0 || rec.Subject == "" {
		return nil, false
	}
	switch rec.Op {
	case opPublish:
		if rec.Version == nil {
			return nil, false
		}
	case opDelete:
		if rec.Number <= 0 {
			return nil, false
		}
	default:
		return nil, false
	}
	return rec, true
}

// manifest is the compacted on-disk snapshot.
type manifest struct {
	Format int `json:"format"`
	// WALSeq is the highest WAL sequence number absorbed into this
	// snapshot; recovery replays only records beyond it.
	WALSeq   int64             `json:"walSeq"`
	Subjects []manifestSubject `json:"subjects"`
}

type manifestSubject struct {
	Name     string    `json:"name"`
	Policy   Policy    `json:"policy"`
	Versions []Version `json:"versions"`
}

// manifestPath locates the manifest file under the repository root.
func manifestPath(dir string) string {
	return filepath.Join(dir, manifestName)
}

// parseManifest decodes and validates a serialized manifest — the local
// file or a replication snapshot shipped over the wire.
func parseManifest(data []byte) (*manifest, error) {
	m := &manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("repo: manifest corrupt: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("repo: manifest format %d not supported (want %d)", m.Format, manifestFormat)
	}
	return m, nil
}

// readManifest loads the manifest; a missing file yields the empty
// snapshot (fresh repository or crash before the first checkpoint).
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return &manifest{Format: manifestFormat}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("repo: reading manifest: %w", err)
	}
	return parseManifest(data)
}

// atomicWrite writes data to path via an fsync'd temp file in the same
// directory renamed into place — the same durability discipline as
// ccts.WriteSchemas. wrap, when non-nil, interposes on the data stream
// (fault injection).
func atomicWrite(dir, path string, data []byte, wrap func(io.Writer) io.Writer) (err error) {
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("repo: creating temp file for %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var out io.Writer = f
	if wrap != nil {
		out = wrap(out)
	}
	if _, err := out.Write(data); err != nil {
		return fmt.Errorf("repo: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("repo: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repo: renaming %s into place: %w", path, err)
	}
	// Make the rename durable; best-effort because not every platform
	// supports fsync on directories.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// blobPath maps a content address to its file, fanned out over the
// first two hex digits so one directory never holds every blob.
func blobPath(dir, sha string) string {
	return filepath.Join(dir, blobDirName, sha[:2], sha)
}

// removeTempFiles deletes abandoned *.tmp* files anywhere under dir — the
// residue of a crash between CreateTemp and rename.
func removeTempFiles(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(d.Name(), ".tmp") {
			return os.Remove(path)
		}
		return nil
	})
}

// scanBlobs counts resident blobs and their bytes.
func scanBlobs(dir string) (count, bytes int64, err error) {
	root := filepath.Join(dir, blobDirName)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		count++
		bytes += info.Size()
		return nil
	})
	if os.IsNotExist(err) {
		err = nil
	}
	return count, bytes, err
}
