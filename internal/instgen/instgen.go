// Package instgen generates sample XML instance documents from the
// schema sets produced by internal/gen. Partners implementing a business
// document exchange need example messages long before real data flows;
// the generator produces minimal (only required content) or full (every
// optional element once) instances that validate against the schema set
// by construction — a property the test suite checks for arbitrary
// models.
package instgen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/xsd"
	"github.com/go-ccts/ccts/internal/xsdval"
)

// Mode selects how much optional content the generated instance carries.
type Mode int

const (
	// Minimal emits only required elements and attributes.
	Minimal Mode = iota
	// Full emits every optional element and attribute exactly once and
	// two occurrences of unbounded elements.
	Full
)

// Options configure generation.
type Options struct {
	Mode Mode
	// MaxDepth bounds recursion for cyclic schemas; elements beyond the
	// bound are emitted only if required, and their required children
	// are cut off with minimal content. Default 16.
	MaxDepth int
}

// Generate produces a sample document for the named global root element
// in the given namespace.
func Generate(set *xsdval.SchemaSet, rootNamespace, rootName string, opts Options) (string, error) {
	schema := set.Schema(rootNamespace)
	if schema == nil {
		return "", fmt.Errorf("instgen: no schema for namespace %q", rootNamespace)
	}
	decl := schema.GlobalElement(rootName)
	if decl == nil {
		return "", fmt.Errorf("instgen: namespace %q declares no global element %q", rootNamespace, rootName)
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 16
	}
	g := &generator{set: set, opts: opts, prefixes: map[string]string{}}
	body, err := g.element(schema, decl, rootName, rootNamespace, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	g.render(&b, body, 0, true)
	return b.String(), nil
}

// GenerateForLibrary produces a sample document for a DOCLibrary root
// ABIE, resolving the target namespace and root element name through
// the resolve-phase model index (the same artifacts the generator
// memoized) instead of requiring the caller to re-derive them. A nil
// index resolves one from the library.
func GenerateForLibrary(set *xsdval.SchemaSet, ix *core.ModelIndex, lib *core.Library, rootABIE *core.ABIE, opts Options) (string, error) {
	if lib == nil {
		return "", fmt.Errorf("instgen: nil library")
	}
	if rootABIE == nil {
		return "", fmt.Errorf("instgen: nil root ABIE")
	}
	if ix == nil {
		if ix = set.Index(); ix == nil {
			ix = core.IndexLibraries(lib)
		}
	}
	return Generate(set, ix.Namespace(lib), ix.ABIEElementName(rootABIE), opts)
}

// node is a generated element tree.
type node struct {
	name  string
	ns    string
	attrs []attrValue
	kids  []*node
	text  string
	leaf  bool
}

type attrValue struct {
	name  string
	value string
}

type generator struct {
	set      *xsdval.SchemaSet
	opts     Options
	prefixes map[string]string // namespace -> prefix
}

func (g *generator) prefixFor(ns string) string {
	if p, ok := g.prefixes[ns]; ok {
		return p
	}
	p := fmt.Sprintf("n%d", len(g.prefixes)+1)
	g.prefixes[ns] = p
	return p
}

// element generates the tree for one element declaration.
func (g *generator) element(schema *xsd.Schema, decl *xsd.Element, name, ns string, depth int) (*node, error) {
	if decl.Ref != "" {
		refURI, local, err := schema.ResolveQName(decl.Ref)
		if err != nil {
			return nil, fmt.Errorf("instgen: %w", err)
		}
		target := g.set.Schema(refURI)
		if target == nil {
			return nil, fmt.Errorf("instgen: no schema for %q", refURI)
		}
		global := target.GlobalElement(local)
		if global == nil {
			return nil, fmt.Errorf("instgen: no global element %q in %q", local, refURI)
		}
		return g.element(target, global, local, refURI, depth)
	}
	n := &node{name: name, ns: ns}
	if decl.Type == "" {
		n.leaf = true
		return n, nil
	}
	typeURI, local, err := schema.ResolveQName(decl.Type)
	if err != nil {
		return nil, fmt.Errorf("instgen: %w", err)
	}
	if typeURI == xsd.XSDNamespace {
		n.text = sampleValue(local, nil)
		n.leaf = true
		return n, nil
	}
	target := g.set.Schema(typeURI)
	if target == nil {
		return nil, fmt.Errorf("instgen: no schema for namespace %q (type %q)", typeURI, decl.Type)
	}
	if ct := target.ComplexType(local); ct != nil {
		return n, g.fillComplex(target, ct, n, depth)
	}
	if st := target.SimpleType(local); st != nil {
		n.text = g.simpleTypeValue(target, st)
		n.leaf = true
		return n, nil
	}
	return nil, fmt.Errorf("instgen: type %q not found in %q", local, typeURI)
}

func (g *generator) fillComplex(schema *xsd.Schema, ct *xsd.ComplexType, n *node, depth int) error {
	if sc := ct.SimpleContent; sc != nil && sc.Extension != nil {
		n.leaf = true
		n.text = g.valueForRef(schema, sc.Extension.Base)
		for _, a := range sc.Extension.Attributes {
			if a.Use != "required" && g.opts.Mode == Minimal {
				continue
			}
			n.attrs = append(n.attrs, attrValue{
				name:  a.Name,
				value: g.valueForRef(schema, a.Type),
			})
		}
		return nil
	}
	if depth >= g.opts.MaxDepth {
		// Depth bound reached: cut off (may produce an invalid document
		// only for pathologically deep mandatory recursion, which the
		// model validator flags as SEM-CYC-1 anyway).
		return nil
	}
	for _, particle := range ct.Sequence {
		min, count := particleCounts(particle.Occurs, g.opts.Mode)
		if count == 0 {
			continue
		}
		_ = min
		for i := 0; i < count; i++ {
			name := particle.Name
			ns := schema.TargetNamespace
			child, err := g.element(schema, particle, name, ns, depth+1)
			if err != nil {
				return err
			}
			n.kids = append(n.kids, child)
		}
	}
	return nil
}

// particleCounts decides how many occurrences to emit.
func particleCounts(o xsd.Occurs, mode Mode) (min, count int) {
	minV := 1
	maxV := 1
	if o != (xsd.Occurs{}) {
		minV, maxV = o.Min, o.Max
	}
	switch mode {
	case Minimal:
		return minV, minV
	default:
		if maxV == xsd.Unbounded {
			if minV > 2 {
				return minV, minV
			}
			return minV, 2
		}
		if maxV < 1 {
			return minV, minV
		}
		n := 1
		if n < minV {
			n = minV
		}
		return minV, n
	}
}

// valueForRef produces a sample value for a type reference.
func (g *generator) valueForRef(schema *xsd.Schema, ref string) string {
	uri, local, err := schema.ResolveQName(ref)
	if err != nil {
		return "sample"
	}
	if uri == xsd.XSDNamespace {
		return sampleValue(local, nil)
	}
	target := g.set.Schema(uri)
	if target == nil {
		return "sample"
	}
	if st := target.SimpleType(local); st != nil {
		return g.simpleTypeValue(target, st)
	}
	if ct := target.ComplexType(local); ct != nil && ct.SimpleContent != nil && ct.SimpleContent.Extension != nil {
		return g.valueForRef(target, ct.SimpleContent.Extension.Base)
	}
	return "sample"
}

// simpleTypeValue produces a value satisfying a simple type's facets.
func (g *generator) simpleTypeValue(schema *xsd.Schema, st *xsd.SimpleType) string {
	r := st.Restriction
	if r == nil {
		return "sample"
	}
	if len(r.Enumerations) > 0 {
		return r.Enumerations[0]
	}
	base := "string"
	if r.Base != "" {
		if uri, local, err := schema.ResolveQName(r.Base); err == nil && uri == xsd.XSDNamespace {
			base = local
		}
	}
	return sampleValue(base, r)
}

// sampleValue produces a lexically valid value for an XSD built-in,
// honouring length facets when provided.
func sampleValue(builtin string, r *xsd.Restriction) string {
	var v string
	switch builtin {
	case "boolean":
		v = "true"
	case "integer", "int", "long", "short", "nonNegativeInteger", "positiveInteger":
		v = "1"
	case "decimal":
		v = "1.0"
	case "double", "float":
		v = "1.5"
	case "date":
		v = "2007-04-15"
	case "time":
		v = "12:00:00"
	case "dateTime":
		v = "2007-04-15T12:00:00"
	case "duration":
		v = "P1D"
	case "base64Binary":
		v = "c2FtcGxl" // "sample"
	default:
		v = "sample"
	}
	if r != nil {
		if r.Pattern != "" {
			// Facet patterns the NDR subset uses are plain enumeration
			// alternates or digit runs; fall back to digits.
			if strings.Contains(r.Pattern, "[0-9]") {
				v = strings.Repeat("1", patternDigits(r.Pattern))
			}
		}
		if r.MinLength != nil && len(v) < *r.MinLength {
			v += strings.Repeat("x", *r.MinLength-len(v))
		}
		if r.MaxLength != nil && len(v) > *r.MaxLength {
			v = v[:*r.MaxLength]
		}
	}
	return v
}

// patternDigits guesses a digit count from patterns like "[0-9]{4}".
func patternDigits(pattern string) int {
	open := strings.Index(pattern, "{")
	close := strings.Index(pattern, "}")
	if open >= 0 && close > open {
		var n int
		if _, err := fmt.Sscanf(pattern[open+1:close], "%d", &n); err == nil && n > 0 && n < 64 {
			return n
		}
	}
	return 1
}

// render serialises the node tree with namespace declarations on the
// root element.
func (g *generator) render(b *strings.Builder, n *node, depth int, root bool) {
	indent := strings.Repeat("  ", depth)
	prefix := g.prefixFor(n.ns)
	b.WriteString(indent + "<" + prefix + ":" + n.name)
	if root {
		// Declare every namespace used anywhere in the tree.
		g.collectNamespaces(n)
		nss := make([]string, 0, len(g.prefixes))
		for ns := range g.prefixes {
			nss = append(nss, ns)
		}
		sort.Strings(nss)
		for _, ns := range nss {
			fmt.Fprintf(b, "\n%s    xmlns:%s=%q", indent, g.prefixes[ns], ns)
		}
	}
	for _, a := range n.attrs {
		fmt.Fprintf(b, " %s=%q", a.name, escape(a.value))
	}
	switch {
	case len(n.kids) == 0 && n.text == "":
		b.WriteString("/>\n")
	case len(n.kids) == 0:
		b.WriteString(">" + escape(n.text) + "</" + prefix + ":" + n.name + ">\n")
	default:
		b.WriteString(">\n")
		for _, k := range n.kids {
			g.render(b, k, depth+1, false)
		}
		b.WriteString(indent + "</" + prefix + ":" + n.name + ">\n")
	}
}

func (g *generator) collectNamespaces(n *node) {
	g.prefixFor(n.ns)
	for _, k := range n.kids {
		g.collectNamespaces(k)
	}
}

func escape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
