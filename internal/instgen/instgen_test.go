package instgen

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/xsd"
	"github.com/go-ccts/ccts/internal/xsdval"
)

// permitSet compiles the HoardingPermit schema set.
func permitSet(t *testing.T) (*xsdval.SchemaSet, string) {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.GenerateDocument(f.DOCLib, "HoardingPermit", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*xsd.Schema
	for _, file := range res.Order {
		schemas = append(schemas, res.Schemas[file])
	}
	set, err := xsdval.NewSchemaSet(schemas...)
	if err != nil {
		t.Fatal(err)
	}
	return set, f.DOCLib.BaseURN
}

// TestGeneratedInstancesValidate is the core property: generated samples
// must validate against the schema set they came from, in both modes.
func TestGeneratedInstancesValidate(t *testing.T) {
	set, ns := permitSet(t)
	for _, mode := range []Mode{Minimal, Full} {
		doc, err := Generate(set, ns, "HoardingPermit", Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		res, err := set.ValidateString(doc)
		if err != nil {
			t.Fatalf("mode %v: %v\n%s", mode, err, doc)
		}
		for _, e := range res.Errors {
			t.Errorf("mode %v: generated instance invalid: %s", mode, e)
		}
	}
}

func TestMinimalOmitsOptional(t *testing.T) {
	set, ns := permitSet(t)
	minimal, err := Generate(set, ns, "HoardingPermit", Options{Mode: Minimal})
	if err != nil {
		t.Fatal(err)
	}
	// ClosureReason is optional: absent in minimal mode.
	if strings.Contains(minimal, "ClosureReason") {
		t.Error("minimal instance contains optional ClosureReason")
	}
	// IncludedRegistration is required: present.
	if !strings.Contains(minimal, "IncludedRegistration") {
		t.Error("minimal instance missing required IncludedRegistration")
	}

	full, err := Generate(set, ns, "HoardingPermit", Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full, "ClosureReason") {
		t.Error("full instance missing optional ClosureReason")
	}
	// Unbounded IncludedAttachment appears twice in full mode.
	if got := strings.Count(full, "<n1:IncludedAttachment>"); got != 2 {
		t.Errorf("IncludedAttachment count = %d, want 2\n%s", got, full)
	}
}

func TestEnumValuesComeFromEnumeration(t *testing.T) {
	set, ns := permitSet(t)
	full, err := Generate(set, ns, "HoardingPermit", Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	// CountryName content is enum-restricted; the first literal is USA.
	if !strings.Contains(full, ">USA<") {
		t.Errorf("enum sample value missing:\n%s", full)
	}
}

func TestRequiredAttributesEmitted(t *testing.T) {
	set, ns := permitSet(t)
	minimal, err := Generate(set, ns, "HoardingPermit", Options{Mode: Minimal})
	if err != nil {
		t.Fatal(err)
	}
	_ = minimal
	full, err := Generate(set, ns, "HoardingPermit", Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	// The Code CDT's required attributes appear on Type elements.
	if !strings.Contains(full, `CodeListAgName="sample"`) {
		t.Errorf("required attribute missing:\n%s", full)
	}
	// Optional LanguageIdentifier appears only in full mode.
	if !strings.Contains(full, `LanguageIdentifier=`) {
		t.Error("full mode should emit optional attributes")
	}
}

func TestGenerateErrors(t *testing.T) {
	set, ns := permitSet(t)
	if _, err := Generate(set, "urn:unknown", "X", Options{}); err == nil {
		t.Error("unknown namespace must fail")
	}
	if _, err := Generate(set, ns, "NoSuchRoot", Options{}); err == nil {
		t.Error("unknown root must fail")
	}
}

// TestSyntheticProperty: for synthetic models of arbitrary (small) size,
// generated instances always validate.
func TestSyntheticProperty(t *testing.T) {
	f := func(nRaw, bRaw uint8, chain bool) bool {
		n := int(nRaw%8) + 1
		bb := int(bRaw%5) + 1
		m, root, err := fixture.BuildSynthetic(fixture.SyntheticSpec{
			ABIEs: n, BBIEsPerABIE: bb, Chain: chain,
		})
		if err != nil {
			return false
		}
		docLib := m.FindLibrary("SynDoc")
		res, err := gen.GenerateDocument(docLib, root.Name, gen.Options{})
		if err != nil {
			return false
		}
		var schemas []*xsd.Schema
		for _, file := range res.Order {
			schemas = append(schemas, res.Schemas[file])
		}
		set, err := xsdval.NewSchemaSet(schemas...)
		if err != nil {
			return false
		}
		for _, mode := range []Mode{Minimal, Full} {
			doc, err := Generate(set, docLib.BaseURN, "Document", Options{Mode: mode})
			if err != nil {
				return false
			}
			vres, err := set.ValidateString(doc)
			if err != nil || !vres.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSampleValues(t *testing.T) {
	cases := map[string]string{
		"boolean":      "true",
		"integer":      "1",
		"decimal":      "1.0",
		"double":       "1.5",
		"date":         "2007-04-15",
		"time":         "12:00:00",
		"dateTime":     "2007-04-15T12:00:00",
		"duration":     "P1D",
		"base64Binary": "c2FtcGxl",
		"string":       "sample",
		"token":        "sample",
	}
	for builtin, want := range cases {
		if got := sampleValue(builtin, nil); got != want {
			t.Errorf("sampleValue(%s) = %q, want %q", builtin, got, want)
		}
	}
	// Length facets are honoured.
	minL := 10
	v := sampleValue("string", &xsd.Restriction{MinLength: &minL})
	if len(v) < 10 {
		t.Errorf("minLength not honoured: %q", v)
	}
	maxL := 3
	v = sampleValue("string", &xsd.Restriction{MaxLength: &maxL})
	if len(v) > 3 {
		t.Errorf("maxLength not honoured: %q", v)
	}
	// Digit patterns.
	v = sampleValue("token", &xsd.Restriction{Pattern: "[0-9]{4}"})
	if v != "1111" {
		t.Errorf("pattern digits = %q", v)
	}
}

// TestHandWrittenSchemaShapes covers element shapes the NDR generator
// never emits: builtin-typed elements, simple-type elements, untyped
// elements, global refs, pattern facets and special characters.
func TestHandWrittenSchemaShapes(t *testing.T) {
	s := xsd.NewSchema("urn:h")
	_ = s.DeclareNamespace("h", "urn:h")
	s.SimpleTypes = append(s.SimpleTypes,
		&xsd.SimpleType{Name: "ColorType", Restriction: &xsd.Restriction{
			Base: "xsd:token", Enumerations: []string{"red", "green"},
		}},
		&xsd.SimpleType{Name: "PlainType", Restriction: &xsd.Restriction{
			Base: "xsd:string",
		}},
		&xsd.SimpleType{Name: "CodeType", Restriction: &xsd.Restriction{
			Base: "xsd:token", Pattern: "[0-9]{6}",
		}},
		&xsd.SimpleType{Name: "BareType"}, // no restriction at all
	)
	s.ComplexTypes = append(s.ComplexTypes, &xsd.ComplexType{
		Name: "BoxType",
		Sequence: []*xsd.Element{
			{Name: "Count", Type: "xsd:integer"},
			{Name: "When", Type: "xsd:dateTime"},
			{Name: "Color", Type: "h:ColorType"},
			{Name: "Plain", Type: "h:PlainType"},
			{Name: "Code", Type: "h:CodeType"},
			{Name: "Bare", Type: "h:BareType"},
			{Name: "Untyped"},
			{Ref: "h:Label"},
		},
	})
	s.Elements = append(s.Elements,
		&xsd.Element{Name: "Box", Type: "h:BoxType"},
		&xsd.Element{Name: "Label", Type: "xsd:string"},
	)
	set, err := xsdval.NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Generate(set, "urn:h", "Box", Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<n1:Count>1</n1:Count>",
		"<n1:When>2007-04-15T12:00:00</n1:When>",
		"<n1:Color>red</n1:Color>",
		"<n1:Code>111111</n1:Code>", // 6-digit pattern honoured
		"<n1:Label>sample</n1:Label>",
		"<n1:Untyped/>",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("instance missing %q:\n%s", want, doc)
		}
	}
	// The instance it produced validates.
	res, err := set.ValidateString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Errorf("hand-written schema instance invalid: %v", res.Errors)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a&b<c>"d`); got != "a&amp;b&lt;c&gt;&quot;d" {
		t.Errorf("escape = %q", got)
	}
}

func TestDepthBound(t *testing.T) {
	// A self-recursive optional schema terminates at the depth bound.
	s := xsd.NewSchema("urn:r")
	_ = s.DeclareNamespace("r", "urn:r")
	s.ComplexTypes = append(s.ComplexTypes, &xsd.ComplexType{
		Name: "NodeType",
		Sequence: []*xsd.Element{
			{Name: "Child", Type: "r:NodeType", Occurs: xsd.Occurs{Min: 1, Max: 1}},
		},
	})
	s.Elements = append(s.Elements, &xsd.Element{Name: "Node", Type: "r:NodeType"})
	set, err := xsdval.NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Generate(set, "urn:r", "Node", Options{Mode: Minimal, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(doc, "<n1:Child>"); got > 4 {
		t.Errorf("depth bound ignored: %d nested children", got)
	}
}

func TestGeneratedInstanceIsWellFormed(t *testing.T) {
	set, ns := permitSet(t)
	doc, err := Generate(set, ns, "HoardingPermit", Options{Mode: Full})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doc, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Error("missing XML declaration")
	}
	// Re-validating implies well-formedness; also ensure namespaces are
	// all declared on the root.
	if !strings.Contains(doc, `xmlns:n1=`) {
		t.Error("namespace declarations missing")
	}
}
