package fixture

import (
	"testing"

	"github.com/go-ccts/ccts/internal/core"
)

func TestBuildFigure1(t *testing.T) {
	f, err := BuildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if f.Person == nil || f.Address == nil || f.USPerson == nil || f.USAddress == nil {
		t.Fatal("fixture handles nil")
	}
	if len(f.Person.BCCs) != 2 || len(f.Person.ASCCs) != 2 {
		t.Errorf("Person = %d BCCs, %d ASCCs", len(f.Person.BCCs), len(f.Person.ASCCs))
	}
	if f.USAddress.FindBBIE("Country") != nil {
		t.Error("US_Address must not keep Country")
	}
}

func TestBuildHoardingPermit(t *testing.T) {
	f, err := BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	if f.Permit.Library() != f.DOCLib {
		t.Error("HoardingPermit not in DOC library")
	}
	// The exact ASBIE order drives the Figure 6 element order.
	roles := make([]string, len(f.Permit.ASBIEs))
	for i, a := range f.Permit.ASBIEs {
		roles[i] = a.Role + ">" + a.Target.Name
	}
	want := []string{
		"Included>Attachment", "Current>Application",
		"Included>Registration", "Billing>Person_Identification",
	}
	for i := range want {
		if roles[i] != want[i] {
			t.Errorf("ASBIE %d = %s, want %s", i, roles[i], want[i])
		}
	}
}

func TestMustHelpers(t *testing.T) {
	if MustBuildFigure1() == nil || MustBuildHoardingPermit() == nil {
		t.Fatal("must helpers returned nil")
	}
}

func TestBuildSynthetic(t *testing.T) {
	m, root, err := BuildSynthetic(SyntheticSpec{ABIEs: 7, BBIEsPerABIE: 3, Chain: true})
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || root.Name != "Document" {
		t.Fatalf("root = %v", root)
	}
	bie := m.FindLibrary("SynBIE")
	if len(bie.ABIEs) != 7 {
		t.Errorf("ABIEs = %d", len(bie.ABIEs))
	}
	if len(bie.ABIEs[0].BBIEs) != 3 {
		t.Errorf("BBIEs = %d", len(bie.ABIEs[0].BBIEs))
	}
	// Chain links each aggregate to the next.
	first := bie.FindABIE("Syn_Agg0000")
	if first == nil || len(first.ASBIEs) != 1 || first.ASBIEs[0].Target.Name != "Syn_Agg0001" {
		t.Errorf("chain broken: %+v", first)
	}
	// Defaults clamp to 1.
	m2, root2, err := BuildSynthetic(SyntheticSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if root2 == nil || m2.FindLibrary("SynBIE") == nil {
		t.Error("minimal synthetic broken")
	}
	// Unchained variant has no ASBIEs.
	m3, _, err := BuildSynthetic(SyntheticSpec{ABIEs: 3, BBIEsPerABIE: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, abie := range m3.FindLibrary("SynBIE").ABIEs {
		if len(abie.ASBIEs) != 0 {
			t.Error("unchained synthetic has ASBIEs")
		}
	}
}

func TestSyntheticValidates(t *testing.T) {
	m, _, err := BuildSynthetic(SyntheticSpec{ABIEs: 10, BBIEsPerABIE: 5, Chain: true})
	if err != nil {
		t.Fatal(err)
	}
	// Structural sanity: every ABIE keeps its underlying ACC.
	for _, lib := range m.Libraries() {
		if lib.Kind != core.KindBIELibrary {
			continue
		}
		for _, abie := range lib.ABIEs {
			if abie.BasedOn == nil {
				t.Errorf("ABIE %s has no basedOn", abie.Name)
			}
		}
	}
}
