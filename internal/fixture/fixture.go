// Package fixture builds the models the paper uses as running examples —
// the Person/Address model of Figure 1 and the complete EB005
// HoardingPermit business library of Figure 4 — plus synthetic models of
// configurable size for scaling benchmarks. The fixtures are shared by
// tests, benchmarks and the example programs.
package fixture

import (
	"fmt"

	"github.com/go-ccts/ccts/internal/catalog"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

var (
	card1  = core.Cardinality{Lower: 1, Upper: 1}
	card01 = core.Cardinality{Lower: 0, Upper: 1}
	card0N = core.Cardinality{Lower: 0, Upper: core.Unbounded}
)

// Figure1 holds the Person/Address example of the paper's Figure 1.
type Figure1 struct {
	Model     *core.Model
	Catalog   *catalog.Catalog
	Person    *core.ACC
	Address   *core.ACC
	USPerson  *core.ABIE
	USAddress *core.ABIE
}

// BuildFigure1 constructs the Figure 1 model: the core components Person
// and Address with two ASCCs Private and Work, and the business
// information entities US_Person and US_Address derived by restriction
// (US_Address drops Country).
func BuildFigure1() (*Figure1, error) {
	m := core.NewModel("Figure1")
	biz := m.AddBusinessLibrary("Example")
	cat, err := catalog.Install(biz)
	if err != nil {
		return nil, err
	}
	ccLib := biz.AddLibrary(core.KindCCLibrary, "CoreComponents", "urn:example:cc")
	ccLib.Version = "1.0"
	bieLib := biz.AddLibrary(core.KindBIELibrary, "USEntities", "urn:example:us")
	bieLib.Version = "1.0"

	person, err := ccLib.AddACC("Person")
	if err != nil {
		return nil, err
	}
	if _, err := person.AddBCC("DateofBirth", cat.CDT(catalog.CDTDate), card1); err != nil {
		return nil, err
	}
	if _, err := person.AddBCC("FirstName", cat.CDT(catalog.CDTText), card1); err != nil {
		return nil, err
	}
	address, err := ccLib.AddACC("Address")
	if err != nil {
		return nil, err
	}
	if _, err := address.AddBCC("Country", cat.CDT(catalog.CDTCode), card1); err != nil {
		return nil, err
	}
	if _, err := address.AddBCC("PostalCode", cat.CDT(catalog.CDTText), card1); err != nil {
		return nil, err
	}
	if _, err := address.AddBCC("Street", cat.CDT(catalog.CDTText), card1); err != nil {
		return nil, err
	}
	if _, err := person.AddASCC("Private", address, card1, uml.AggregationComposite); err != nil {
		return nil, err
	}
	if _, err := person.AddASCC("Work", address, card1, uml.AggregationComposite); err != nil {
		return nil, err
	}

	usAddress, err := core.DeriveABIE(bieLib, address, core.Restriction{
		Qualifier: "US",
		BBIEs:     []core.BBIEPick{{BCC: "PostalCode"}, {BCC: "Street"}},
	})
	if err != nil {
		return nil, err
	}
	usPerson, err := core.DeriveABIE(bieLib, person, core.Restriction{
		Qualifier: "US",
		BBIEs:     []core.BBIEPick{{BCC: "DateofBirth"}, {BCC: "FirstName"}},
		ASBIEs: []core.ASBIEPick{
			{Role: "Private", Target: usAddress, Rename: "US_Private"},
			{Role: "Work", Target: usAddress, Rename: "US_Work"},
		},
	})
	if err != nil {
		return nil, err
	}
	return &Figure1{
		Model: m, Catalog: cat,
		Person: person, Address: address,
		USPerson: usPerson, USAddress: usAddress,
	}, nil
}

// HoardingPermit holds the complete EB005 HoardingPermit model of the
// paper's Figure 4: seven libraries inside the EasyBiz business library.
type HoardingPermit struct {
	Model   *core.Model
	Biz     *core.BusinessLibrary
	Catalog *catalog.Catalog

	DOCLib  *core.Library // EB005-HoardingPermit
	Common  *core.Library // CommonAggregates (BIELibrary)
	Local   *core.Library // LocalLawAggregates (BIELibrary)
	QDTLib  *core.Library // BuildingAndPlanningDataTypes
	EnumLib *core.Library // EnumerationTypes
	CCLib   *core.Library // CandidateCoreComponents

	Permit          *core.ABIE // HoardingPermit ABIE (root)
	PersonIdent     *core.ABIE
	SignatureABIE   *core.ABIE
	AddressABIE     *core.ABIE
	ApplicationBIE  *core.ABIE
	AttachmentBIE   *core.ABIE
	RegistrationBIE *core.ABIE
}

// BuildHoardingPermit constructs the Figure 4 model. The paper does not
// show the ACCs underlying every ABIE (space limits); the missing ones
// (Permit, Person, Signature, Address, Registration) are reconstructed in
// the CandidateCoreComponents library following the visible Application,
// Attachment and Party ACCs.
func BuildHoardingPermit() (*HoardingPermit, error) {
	f := &HoardingPermit{}
	f.Model = core.NewModel("EasyBiz")
	f.Biz = f.Model.AddBusinessLibrary("EasyBiz")

	cat, err := catalog.InstallWith(f.Biz, catalog.Options{
		CDTName:    "coredatatypes",
		CDTBaseURN: "un:unece:uncefact:data:standard:CDTLibrary:1.0",
	})
	if err != nil {
		return nil, err
	}
	f.Catalog = cat

	f.EnumLib = f.Biz.AddLibrary(core.KindENUMLibrary, "EnumerationTypes",
		"urn:au:gov:vic:easybiz:types:draft:EnumerationTypes")
	f.EnumLib.Version = "0.1"
	f.QDTLib = f.Biz.AddLibrary(core.KindQDTLibrary, "BuildingAndPlanningDataTypes",
		"urn:au:gov:vic:easybiz:types:draft:QualifiedDataTypes")
	f.QDTLib.Version = "0.1"
	f.CCLib = f.Biz.AddLibrary(core.KindCCLibrary, "CandidateCoreComponents",
		"urn:au:gov:vic:easybiz:components:draft:CandidateCoreComponents")
	f.CCLib.Version = "0.1"
	f.Common = f.Biz.AddLibrary(core.KindBIELibrary, "CommonAggregates",
		"urn:au:gov:vic:easybiz:data:draft:CommonAggregates")
	f.Common.Version = "0.1"
	f.Common.NamespacePrefix = "commonAggregates"
	f.Local = f.Biz.AddLibrary(core.KindBIELibrary, "LocalLawAggregates",
		"urn:au:gov:vic:easybiz:data:draft:LocalLawAggregates")
	f.Local.Version = "0.1"
	f.DOCLib = f.Biz.AddLibrary(core.KindDOCLibrary, "EB005-HoardingPermit",
		"urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit")
	f.DOCLib.Version = "0.4"
	f.DOCLib.NamespacePrefix = "doc"

	if err := f.buildEnums(); err != nil {
		return nil, err
	}
	if err := f.buildQDTs(); err != nil {
		return nil, err
	}
	if err := f.buildACCs(); err != nil {
		return nil, err
	}
	if err := f.buildBIEs(); err != nil {
		return nil, err
	}
	if err := f.buildDocument(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *HoardingPermit) buildEnums() error {
	council, err := f.EnumLib.AddENUM("CouncilType_Code")
	if err != nil {
		return err
	}
	council.AddLiteral("kingston", "Kingston City Council").
		AddLiteral("morningtonpeninsula", "Mornington Peninsula Shire Council").
		AddLiteral("northerngrampians", "Northern Grampians Shire Council").
		AddLiteral("portphillip", "Port Phillip City Council").
		AddLiteral("pyrenees", "Pyrenees Shire Council")
	country, err := f.EnumLib.AddENUM("CountryType_Code")
	if err != nil {
		return err
	}
	country.AddLiteral("USA", "United States of America").
		AddLiteral("AUT", "Austria").
		AddLiteral("AUS", "Australia")
	return nil
}

func (f *HoardingPermit) buildQDTs() error {
	code := f.Catalog.CDT(catalog.CDTCode)
	opt := card01
	// CountryType and CouncilType (Figure 4 package 3): content
	// restricted by enumeration, only CodeListName kept (as optional).
	if _, err := core.DeriveQDT(f.QDTLib, code, core.QDTRestriction{
		Name:        "CountryType",
		ContentEnum: f.Model.FindENUM("CountryType_Code"),
		Sups:        []core.SupPick{{Sup: "CodeListName", Card: &opt}},
	}); err != nil {
		return err
	}
	if _, err := core.DeriveQDT(f.QDTLib, code, core.QDTRestriction{
		Name:        "CouncilType",
		ContentEnum: f.Model.FindENUM("CouncilType_Code"),
		Sups:        []core.SupPick{{Sup: "CodeListName", Card: &opt}},
	}); err != nil {
		return err
	}
	// Indicator_Code and RegistrationType_Code type the BBIEs of
	// HoardingPermit and Registration.
	if _, err := core.DeriveQDT(f.QDTLib, code, core.QDTRestriction{Name: "Indicator_Code"}); err != nil {
		return err
	}
	if _, err := core.DeriveQDT(f.QDTLib, code, core.QDTRestriction{Name: "RegistrationType_Code"}); err != nil {
		return err
	}
	return nil
}

func (f *HoardingPermit) buildACCs() error {
	cdt := f.Catalog.CDT
	type bccSpec struct {
		name string
		cdt  string
		card core.Cardinality
	}
	addACC := func(name string, bccs []bccSpec) (*core.ACC, error) {
		acc, err := f.CCLib.AddACC(name)
		if err != nil {
			return nil, err
		}
		for _, b := range bccs {
			if _, err := acc.AddBCC(b.name, cdt(b.cdt), b.card); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}

	// Figure 4 package 5: Application with eleven BCCs.
	application, err := addACC("Application", []bccSpec{
		{"CreatedDate", catalog.CDTDate, card1},
		{"Fee", catalog.CDTAmount, card1},
		{"Justification", catalog.CDTText, card1},
		{"LastUpdatedDate", catalog.CDTDate, card1},
		{"LocalReferenceNumber", catalog.CDTText, card1},
		{"NationalReferenceNumber", catalog.CDTIdentifier, card1},
		{"Reference", catalog.CDTText, card1},
		{"RelatedReference", catalog.CDTText, card1},
		{"Result", catalog.CDTCode, card1},
		{"Status", catalog.CDTCode, card1},
		{"Type", catalog.CDTCode, card1},
	})
	if err != nil {
		return err
	}
	attachment, err := addACC("Attachment", []bccSpec{
		{"Description", catalog.CDTText, card01},
		{"File", catalog.CDTBinaryObject, card01},
		{"Location", catalog.CDTText, card01},
		{"Size", catalog.CDTMeasure, card01},
	})
	if err != nil {
		return err
	}
	party, err := addACC("Party", []bccSpec{
		{"Description", catalog.CDTText, card01},
		{"Role", catalog.CDTText, card01},
		{"Type", catalog.CDTCode, card01},
	})
	if err != nil {
		return err
	}
	if _, err := application.AddASCC("Applicant", party, card1, uml.AggregationComposite); err != nil {
		return err
	}

	// Reconstructed ACCs (not shown in the paper's diagram).
	signature, err := addACC("Signature", []bccSpec{
		{"Date", catalog.CDTDateTime, card01},
		{"PersonName", catalog.CDTText, card01},
		{"SignatureData", catalog.CDTBinaryObject, card01},
	})
	if err != nil {
		return err
	}
	address, err := addACC("Address", []bccSpec{
		{"Country", catalog.CDTCode, card01},
		{"PostalCode", catalog.CDTText, card01},
		{"Street", catalog.CDTText, card01},
	})
	if err != nil {
		return err
	}
	person, err := addACC("Person", []bccSpec{
		{"Designation", catalog.CDTIdentifier, card1},
	})
	if err != nil {
		return err
	}
	if _, err := person.AddASCC("Personal", signature, card1, uml.AggregationComposite); err != nil {
		return err
	}
	// Shared aggregation: generated as a global element + ref (Figure 7).
	if _, err := person.AddASCC("Assigned", address, card1, uml.AggregationShared); err != nil {
		return err
	}
	registration, err := addACC("Registration", []bccSpec{
		{"Type", catalog.CDTCode, card01},
	})
	if err != nil {
		return err
	}
	permit, err := addACC("Permit", []bccSpec{
		{"ClosureReason", catalog.CDTText, card01},
		{"IsClosedFootpath", catalog.CDTCode, card01},
		{"IsClosedRoad", catalog.CDTCode, card01},
		{"SafetyPrecaution", catalog.CDTText, card01},
	})
	if err != nil {
		return err
	}
	// ASCC order fixes the ASBIE order of Figure 6.
	if _, err := permit.AddASCC("Included", attachment, card0N, uml.AggregationComposite); err != nil {
		return err
	}
	if _, err := permit.AddASCC("Current", application, card01, uml.AggregationComposite); err != nil {
		return err
	}
	if _, err := permit.AddASCC("Included", registration, card1, uml.AggregationComposite); err != nil {
		return err
	}
	if _, err := permit.AddASCC("Billing", person, card01, uml.AggregationComposite); err != nil {
		return err
	}
	return nil
}

func (f *HoardingPermit) buildBIEs() error {
	find := f.Model.FindACC
	qdt := f.Model.FindQDT

	var err error
	// Figure 4 package 2: CommonAggregates.
	f.SignatureABIE, err = core.DeriveABIE(f.Common, find("Signature"), core.Restriction{
		BBIEs: []core.BBIEPick{{BCC: "Date"}, {BCC: "PersonName"}, {BCC: "SignatureData"}},
	})
	if err != nil {
		return err
	}
	f.AddressABIE, err = core.DeriveABIE(f.Common, find("Address"), core.Restriction{
		BBIEs: []core.BBIEPick{{BCC: "Country", Rename: "CountryName", Type: qdt("CountryType")}},
	})
	if err != nil {
		return err
	}
	f.PersonIdent, err = core.DeriveABIE(f.Common, find("Person"), core.Restriction{
		Name:  "Person_Identification",
		BBIEs: []core.BBIEPick{{BCC: "Designation"}},
		ASBIEs: []core.ASBIEPick{
			{Role: "Personal", Target: f.SignatureABIE},
			{Role: "Assigned", Target: f.AddressABIE},
		},
	})
	if err != nil {
		return err
	}
	f.ApplicationBIE, err = core.DeriveABIE(f.Common, find("Application"), core.Restriction{
		// Only CreatedDate and Type survive the restriction of the eleven
		// BCCs, both made optional.
		BBIEs: []core.BBIEPick{
			{BCC: "CreatedDate", Card: &card01},
			{BCC: "Type", Card: &card01},
		},
	})
	if err != nil {
		return err
	}
	f.AttachmentBIE, err = core.DeriveABIE(f.Common, find("Attachment"), core.Restriction{
		BBIEs: []core.BBIEPick{{BCC: "Description"}},
	})
	if err != nil {
		return err
	}
	// Figure 4: LocalLawAggregates with Registration.
	f.RegistrationBIE, err = core.DeriveABIE(f.Local, find("Registration"), core.Restriction{
		BBIEs: []core.BBIEPick{{BCC: "Type", Type: qdt("RegistrationType_Code")}},
	})
	return err
}

func (f *HoardingPermit) buildDocument() error {
	find := f.Model.FindACC
	qdt := f.Model.FindQDT
	var err error
	f.Permit, err = core.DeriveABIE(f.DOCLib, find("Permit"), core.Restriction{
		Name: "HoardingPermit",
		BBIEs: []core.BBIEPick{
			{BCC: "ClosureReason"},
			{BCC: "IsClosedFootpath", Type: qdt("Indicator_Code")},
			{BCC: "IsClosedRoad", Type: qdt("Indicator_Code")},
			{BCC: "SafetyPrecaution"},
		},
		ASBIEs: []core.ASBIEPick{
			{Role: "Included", TargetACC: "Attachment", Target: f.AttachmentBIE},
			{Role: "Current", Target: f.ApplicationBIE},
			{Role: "Included", TargetACC: "Registration", Target: f.RegistrationBIE},
			{Role: "Billing", Target: f.PersonIdent},
		},
	})
	if err != nil {
		return err
	}
	// HoardingDetails is defined in the DOCLibrary but not referenced by
	// the document; the generator must not emit it (Figure 6 contains no
	// HoardingDetailsType).
	_, err = core.DeriveABIE(f.DOCLib, find("Permit"), core.Restriction{
		Name:  "HoardingDetails",
		BBIEs: []core.BBIEPick{{BCC: "ClosureReason", Rename: "Description"}},
	})
	return err
}

// MustBuildHoardingPermit panics on construction errors; for benchmarks
// and examples where the fixture is known-good.
func MustBuildHoardingPermit() *HoardingPermit {
	f, err := BuildHoardingPermit()
	if err != nil {
		panic(fmt.Sprintf("fixture: %v", err))
	}
	return f
}

// MustBuildFigure1 panics on construction errors.
func MustBuildFigure1() *Figure1 {
	f, err := BuildFigure1()
	if err != nil {
		panic(fmt.Sprintf("fixture: %v", err))
	}
	return f
}

// SyntheticSpec sizes a synthetic model for scaling benchmarks.
type SyntheticSpec struct {
	// ABIEs is the number of aggregate entities in the BIE library.
	ABIEs int
	// BBIEsPerABIE is the number of basic entities per aggregate.
	BBIEsPerABIE int
	// Chain links each ABIE to the next with an ASBIE, forming one long
	// document; otherwise the ABIEs are independent.
	Chain bool
}

// BuildSynthetic constructs a well-formed model of the requested size:
// the standard catalog, one CC library with matching ACCs and one BIE
// library with spec.ABIEs aggregates, plus a DOC library whose root
// references the first ABIE.
func BuildSynthetic(spec SyntheticSpec) (*core.Model, *core.ABIE, error) {
	if spec.ABIEs < 1 {
		spec.ABIEs = 1
	}
	if spec.BBIEsPerABIE < 1 {
		spec.BBIEsPerABIE = 1
	}
	m := core.NewModel("Synthetic")
	biz := m.AddBusinessLibrary("Synthetic")
	cat, err := catalog.Install(biz)
	if err != nil {
		return nil, nil, err
	}
	ccLib := biz.AddLibrary(core.KindCCLibrary, "SynCC", "urn:syn:cc")
	ccLib.Version = "1.0"
	bieLib := biz.AddLibrary(core.KindBIELibrary, "SynBIE", "urn:syn:bie")
	bieLib.Version = "1.0"
	docLib := biz.AddLibrary(core.KindDOCLibrary, "SynDoc", "urn:syn:doc")
	docLib.Version = "1.0"

	text := cat.CDT(catalog.CDTText)
	accs := make([]*core.ACC, spec.ABIEs)
	for i := range accs {
		acc, err := ccLib.AddACC(fmt.Sprintf("Agg%04d", i))
		if err != nil {
			return nil, nil, err
		}
		for j := 0; j < spec.BBIEsPerABIE; j++ {
			if _, err := acc.AddBCC(fmt.Sprintf("Field%03d", j), text, card01); err != nil {
				return nil, nil, err
			}
		}
		accs[i] = acc
	}
	if spec.Chain {
		for i := 0; i+1 < len(accs); i++ {
			if _, err := accs[i].AddASCC("Next", accs[i+1], card01, uml.AggregationComposite); err != nil {
				return nil, nil, err
			}
		}
	}
	abies := make([]*core.ABIE, spec.ABIEs)
	for i := len(accs) - 1; i >= 0; i-- {
		r := core.Restriction{Qualifier: "Syn"}
		for j := 0; j < spec.BBIEsPerABIE; j++ {
			r.BBIEs = append(r.BBIEs, core.BBIEPick{BCC: fmt.Sprintf("Field%03d", j)})
		}
		if spec.Chain && i+1 < len(accs) {
			r.ASBIEs = append(r.ASBIEs, core.ASBIEPick{Role: "Next", Target: abies[i+1]})
		}
		abie, err := core.DeriveABIE(bieLib, accs[i], r)
		if err != nil {
			return nil, nil, err
		}
		abies[i] = abie
	}
	root, err := core.DeriveABIE(docLib, accs[0], core.Restriction{
		Name:  "Document",
		BBIEs: []core.BBIEPick{{BCC: "Field000"}},
		ASBIEs: func() []core.ASBIEPick {
			if spec.Chain && len(abies) > 1 {
				return []core.ASBIEPick{{Role: "Next", Target: abies[1]}}
			}
			return nil
		}(),
	})
	if err != nil {
		return nil, nil, err
	}
	return m, root, nil
}
