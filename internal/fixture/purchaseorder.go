package fixture

import (
	"github.com/go-ccts/ccts/internal/catalog"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

// PurchaseOrder holds the B2B purchase-order model of the examples: one
// shared core-component library (Party, LineItem, Order) and two
// business contexts — an EU seller whose orders carry VAT numbers and a
// currency code restricted to an EU enumeration, and a US buyer whose
// line items carry hazard codes. Both document libraries derive from
// the same ACCs by restriction.
type PurchaseOrder struct {
	Model   *core.Model
	Catalog *catalog.Catalog

	CCLib     *core.Library // TradeComponents (CCLibrary)
	EUEnumLib *core.Library // EUEnumerations
	EUQDTLib  *core.Library // EUDataTypes
	EUBIELib  *core.Library // EUAggregates
	EUDocLib  *core.Library // EUOrder (DOCLibrary, root EU_Order)
	USBIELib  *core.Library // USAggregates
	USDocLib  *core.Library // USOrder (DOCLibrary, root US_Order)
}

// BuildPurchaseOrder constructs the purchase-order model shared by the
// multi-target golden tests and the examples/purchaseorder program.
func BuildPurchaseOrder() (*PurchaseOrder, error) {
	f := &PurchaseOrder{}
	f.Model = core.NewModel("TradeModel")
	biz := f.Model.AddBusinessLibrary("Trade")
	cat, err := catalog.Install(biz)
	if err != nil {
		return nil, err
	}
	f.Catalog = cat

	f.CCLib = biz.AddLibrary(core.KindCCLibrary, "TradeComponents", "urn:trade:cc")
	f.CCLib.Version = "1.0"

	party, err := f.CCLib.AddACC("Party")
	if err != nil {
		return nil, err
	}
	for _, b := range []struct {
		name string
		cdt  string
		card core.Cardinality
	}{
		{"Name", catalog.CDTName, card1},
		{"Identifier", catalog.CDTIdentifier, card01},
		{"TaxRegistration", catalog.CDTIdentifier, card01},
	} {
		if _, err := party.AddBCC(b.name, cat.CDT(b.cdt), b.card); err != nil {
			return nil, err
		}
	}

	lineItem, err := f.CCLib.AddACC("LineItem")
	if err != nil {
		return nil, err
	}
	for _, b := range []struct {
		name string
		cdt  string
		card core.Cardinality
	}{
		{"Description", catalog.CDTText, card1},
		{"Quantity", catalog.CDTQuantity, card1},
		{"Price", catalog.CDTAmount, card1},
		{"HazardCode", catalog.CDTCode, card01},
	} {
		if _, err := lineItem.AddBCC(b.name, cat.CDT(b.cdt), b.card); err != nil {
			return nil, err
		}
	}

	order, err := f.CCLib.AddACC("Order")
	if err != nil {
		return nil, err
	}
	for _, b := range []struct {
		name string
		cdt  string
		card core.Cardinality
	}{
		{"Number", catalog.CDTIdentifier, card1},
		{"IssueDate", catalog.CDTDate, card1},
		{"Currency", catalog.CDTCode, card01},
		{"Total", catalog.CDTAmount, card01},
	} {
		if _, err := order.AddBCC(b.name, cat.CDT(b.cdt), b.card); err != nil {
			return nil, err
		}
	}
	if _, err := order.AddASCC("Buyer", party, card1, uml.AggregationComposite); err != nil {
		return nil, err
	}
	if _, err := order.AddASCC("Seller", party, card1, uml.AggregationComposite); err != nil {
		return nil, err
	}
	if _, err := order.AddASCC("Included", lineItem, uml.OneOrMore, uml.AggregationComposite); err != nil {
		return nil, err
	}

	// EU context: mandatory VAT registration, currency restricted to an
	// EU enumeration through a qualified data type.
	f.EUEnumLib = biz.AddLibrary(core.KindENUMLibrary, "EUEnumerations", "urn:trade:eu:enum")
	f.EUEnumLib.Version = "1.0"
	euCurrency, err := f.EUEnumLib.AddENUM("EUCurrency_Code")
	if err != nil {
		return nil, err
	}
	euCurrency.AddLiteral("EUR", "Euro").
		AddLiteral("SEK", "Swedish krona").
		AddLiteral("DKK", "Danish krone")

	f.EUQDTLib = biz.AddLibrary(core.KindQDTLibrary, "EUDataTypes", "urn:trade:eu:qdt")
	f.EUQDTLib.Version = "1.0"
	euCurrencyType, err := core.DeriveQDT(f.EUQDTLib, cat.CDT(catalog.CDTCode), core.QDTRestriction{
		Name: "EUCurrencyType", ContentEnum: euCurrency,
	})
	if err != nil {
		return nil, err
	}

	f.EUBIELib, f.EUDocLib, err = buildOrderContext(biz, "EU", "urn:trade:eu", order, party, lineItem, orderContextSpec{
		partyPicks: []core.BBIEPick{
			{BCC: "Name"},
			{BCC: "TaxRegistration", Rename: "VATNumber"},
		},
		orderPicks: []core.BBIEPick{
			{BCC: "Number"}, {BCC: "IssueDate"},
			{BCC: "Currency", Type: euCurrencyType},
		},
		linePicks: []core.BBIEPick{{BCC: "Description"}, {BCC: "Quantity"}, {BCC: "Price"}},
	})
	if err != nil {
		return nil, err
	}

	// US context: no VAT, hazard codes on line items.
	f.USBIELib, f.USDocLib, err = buildOrderContext(biz, "US", "urn:trade:us", order, party, lineItem, orderContextSpec{
		partyPicks: []core.BBIEPick{{BCC: "Name"}, {BCC: "Identifier"}},
		orderPicks: []core.BBIEPick{{BCC: "Number"}, {BCC: "IssueDate"}, {BCC: "Total"}},
		linePicks: []core.BBIEPick{
			{BCC: "Description"}, {BCC: "Quantity"}, {BCC: "Price"}, {BCC: "HazardCode"},
		},
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

type orderContextSpec struct {
	partyPicks []core.BBIEPick
	orderPicks []core.BBIEPick
	linePicks  []core.BBIEPick
}

// buildOrderContext derives the BIEs of one business context and
// assembles its order document library.
func buildOrderContext(biz *core.BusinessLibrary, qualifier, urnBase string,
	order, party, lineItem *core.ACC, spec orderContextSpec) (*core.Library, *core.Library, error) {

	bieLib := biz.AddLibrary(core.KindBIELibrary, qualifier+"Aggregates", urnBase+":bie")
	bieLib.Version = "1.0"
	docLib := biz.AddLibrary(core.KindDOCLibrary, qualifier+"Order", urnBase+":order")
	docLib.Version = "1.0"

	partyBIE, err := core.DeriveABIE(bieLib, party, core.Restriction{
		Qualifier: qualifier, BBIEs: spec.partyPicks,
	})
	if err != nil {
		return nil, nil, err
	}
	lineBIE, err := core.DeriveABIE(bieLib, lineItem, core.Restriction{
		Qualifier: qualifier, BBIEs: spec.linePicks,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := core.DeriveABIE(docLib, order, core.Restriction{
		Qualifier: qualifier,
		BBIEs:     spec.orderPicks,
		ASBIEs: []core.ASBIEPick{
			{Role: "Buyer", Target: partyBIE},
			{Role: "Seller", Target: partyBIE},
			{Role: "Included", Target: lineBIE},
		},
	}); err != nil {
		return nil, nil, err
	}
	return bieLib, docLib, nil
}
