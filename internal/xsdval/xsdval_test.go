package xsdval

import (
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/fixture"
	"github.com/go-ccts/ccts/internal/gen"
	"github.com/go-ccts/ccts/internal/xsd"
)

// permitSet generates the HoardingPermit schema set and compiles it.
func permitSet(t *testing.T) *SchemaSet {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.GenerateDocument(f.DOCLib, "HoardingPermit", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*xsd.Schema
	for _, file := range res.Order {
		schemas = append(schemas, res.Schemas[file])
	}
	ss, err := NewSchemaSet(schemas...)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// validPermit is a conforming HoardingPermit message.
const validPermit = `<?xml version="1.0"?>
<doc:HoardingPermit
    xmlns:doc="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"
    xmlns:ca="urn:au:gov:vic:easybiz:data:draft:CommonAggregates"
    xmlns:ll="urn:au:gov:vic:easybiz:data:draft:LocalLawAggregates">
  <doc:ClosureReason>Scaffolding over footpath</doc:ClosureReason>
  <doc:IsClosedFootpath>yes</doc:IsClosedFootpath>
  <doc:IncludedAttachment>
    <ca:Description>Site plan</ca:Description>
  </doc:IncludedAttachment>
  <doc:IncludedAttachment>
    <ca:Description>Traffic plan</ca:Description>
  </doc:IncludedAttachment>
  <doc:CurrentApplication>
    <ca:CreatedDate>2006-11-29</ca:CreatedDate>
    <ca:Type CodeListAgName="easybiz" CodeListName="permits" CodeListSchemeURI="urn:x">HOARD</ca:Type>
  </doc:CurrentApplication>
  <doc:IncludedRegistration>
    <ll:Type>local</ll:Type>
  </doc:IncludedRegistration>
  <doc:BillingPerson_Identification>
    <ca:Designation>AU-552-19</ca:Designation>
    <ca:PersonalSignature>
      <ca:Date>2006-11-29T15:06:48</ca:Date>
    </ca:PersonalSignature>
    <ca:AssignedAddress>
      <ca:CountryName CodeListName="iso3166">AUS</ca:CountryName>
    </ca:AssignedAddress>
  </doc:BillingPerson_Identification>
</doc:HoardingPermit>`

func validate(t *testing.T, ss *SchemaSet, doc string) *Result {
	t.Helper()
	res, err := ss.ValidateString(doc)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return res
}

func TestValidDocument(t *testing.T) {
	ss := permitSet(t)
	res := validate(t, ss, validPermit)
	for _, e := range res.Errors {
		t.Errorf("unexpected: %s", e)
	}
	if !res.Valid() {
		t.Error("document should be valid")
	}
}

// mutate rewrites the valid document and expects a specific error
// fragment.
func expectError(t *testing.T, ss *SchemaSet, doc, wantFragment string) {
	t.Helper()
	res := validate(t, ss, doc)
	if res.Valid() {
		t.Errorf("document should be invalid (want %q)", wantFragment)
		return
	}
	for _, e := range res.Errors {
		if strings.Contains(e.Error(), wantFragment) {
			return
		}
	}
	t.Errorf("no error containing %q; got %v", wantFragment, res.Errors)
}

func TestMissingRequiredChild(t *testing.T) {
	ss := permitSet(t)
	// IncludedRegistration is required (card 1).
	doc := strings.Replace(validPermit,
		"<doc:IncludedRegistration>\n    <ll:Type>local</ll:Type>\n  </doc:IncludedRegistration>", "", 1)
	expectError(t, ss, doc, `element "IncludedRegistration" occurs 0 time(s)`)
}

func TestTooManyOccurrences(t *testing.T) {
	ss := permitSet(t)
	dup := strings.Replace(validPermit,
		"<doc:ClosureReason>Scaffolding over footpath</doc:ClosureReason>",
		"<doc:ClosureReason>a</doc:ClosureReason><doc:ClosureReason>b</doc:ClosureReason>", 1)
	expectError(t, ss, dup, `element "ClosureReason" occurs 2 time(s)`)
}

func TestWrongOrder(t *testing.T) {
	ss := permitSet(t)
	// Move ClosureReason after IsClosedFootpath: sequence order is fixed.
	doc := strings.Replace(validPermit,
		"<doc:ClosureReason>Scaffolding over footpath</doc:ClosureReason>\n  <doc:IsClosedFootpath>yes</doc:IsClosedFootpath>",
		"<doc:IsClosedFootpath>yes</doc:IsClosedFootpath>\n  <doc:ClosureReason>Scaffolding over footpath</doc:ClosureReason>", 1)
	expectError(t, ss, doc, `unexpected element "ClosureReason"`)
}

func TestUnknownElement(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, "</doc:HoardingPermit>",
		"<doc:Invented/></doc:HoardingPermit>", 1)
	expectError(t, ss, doc, `unexpected element "Invented"`)
}

func TestMissingRequiredAttribute(t *testing.T) {
	ss := permitSet(t)
	// ca:Type uses the Code CDT: CodeListAgName is required.
	doc := strings.Replace(validPermit,
		`CodeListAgName="easybiz" `, "", 1)
	expectError(t, ss, doc, `missing required attribute "CodeListAgName"`)
}

func TestUndeclaredAttribute(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit,
		`<ca:Designation>`, `<ca:Designation bogus="1">`, 1)
	expectError(t, ss, doc, `undeclared attribute "bogus"`)
}

func TestEnumerationViolation(t *testing.T) {
	ss := permitSet(t)
	// CountryName content is restricted to the CountryType_Code enum.
	doc := strings.Replace(validPermit, ">AUS<", ">XYZ<", 1)
	expectError(t, ss, doc, `value "XYZ" is not one of the enumerated values`)
}

func TestEnumerationAllValues(t *testing.T) {
	ss := permitSet(t)
	for _, code := range []string{"USA", "AUT", "AUS"} {
		doc := strings.Replace(validPermit, ">AUS<", ">"+code+"<", 1)
		if res := validate(t, ss, doc); !res.Valid() {
			t.Errorf("country %s rejected: %v", code, res.Errors)
		}
	}
}

func TestDateTimeFormat(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, "2006-11-29T15:06:48", "yesterday", 1)
	expectError(t, ss, doc, "is not a valid xsd:dateTime")
}

func TestTextInComplexElement(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, "<doc:IncludedRegistration>",
		"<doc:IncludedRegistration>stray text", 1)
	expectError(t, ss, doc, "unexpected text content")
}

func TestMalformedXML(t *testing.T) {
	ss := permitSet(t)
	if _, err := ss.ValidateString("<open>"); err == nil {
		t.Error("malformed XML should be a hard error")
	}
	if _, err := ss.ValidateString(""); err == nil {
		t.Error("empty document should be a hard error")
	}
}

func TestUnknownRoot(t *testing.T) {
	ss := permitSet(t)
	if _, err := ss.ValidateString(`<x xmlns="urn:unknown"/>`); err == nil {
		t.Error("unknown root namespace should be a hard error")
	}
	if _, err := ss.ValidateString(
		`<x xmlns="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"/>`); err == nil {
		t.Error("undeclared root element should be a hard error")
	}
}

func TestSchemaSetErrors(t *testing.T) {
	s1 := xsd.NewSchema("urn:a")
	s2 := xsd.NewSchema("urn:a")
	if _, err := NewSchemaSet(s1, s2); err == nil {
		t.Error("duplicate namespace should fail")
	}
	s3 := xsd.NewSchema("")
	if _, err := NewSchemaSet(s3); err == nil {
		t.Error("empty namespace should fail")
	}
	ss, err := NewSchemaSet(s1)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Schema("urn:a") != s1 || ss.Schema("urn:b") != nil {
		t.Error("Schema lookup broken")
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		builtin string
		value   string
		ok      bool
	}{
		{"string", "anything at all", true},
		{"boolean", "true", true},
		{"boolean", "1", true},
		{"boolean", "yes", false},
		{"integer", "-42", true},
		{"integer", "4.2", false},
		{"decimal", "3.14", true},
		{"decimal", "pi", false},
		{"double", "6.02e23", true},
		{"double", "INF", true},
		{"double", "1..2", false},
		{"date", "2026-07-05", true},
		{"date", "05/07/2026", false},
		{"time", "12:34:56", true},
		{"time", "noon", false},
		{"dateTime", "2026-07-05T12:00:00Z", true},
		{"dateTime", "2026-07-05", false},
		{"duration", "P1Y2M3DT4H5M6S", true},
		{"duration", "P", false},
		{"base64Binary", "aGVsbG8=", true},
		{"base64Binary", "!!!", false},
		{"madeUpType", "whatever", true}, // unknown builtins accepted
	}
	for _, c := range cases {
		res := &Result{}
		validateBuiltin(res, "/x", c.value, c.builtin)
		if got := res.Valid(); got != c.ok {
			t.Errorf("builtin %s value %q: valid=%v, want %v (%v)", c.builtin, c.value, got, c.ok, res.Errors)
		}
	}
}

func TestCollapse(t *testing.T) {
	if got := collapse("  a \n b\t c  "); got != "a b c" {
		t.Errorf("collapse = %q", got)
	}
}

func TestFacetValidation(t *testing.T) {
	s := xsd.NewSchema("urn:f")
	_ = s.DeclareNamespace("f", "urn:f")
	s.SimpleTypes = append(s.SimpleTypes, &xsd.SimpleType{
		Name: "PostcodeType",
		Restriction: &xsd.Restriction{
			Base:    "xsd:token",
			Pattern: "[0-9]{4}",
		},
	})
	minL, maxL := 2, 4
	s.SimpleTypes = append(s.SimpleTypes, &xsd.SimpleType{
		Name: "ShortType",
		Restriction: &xsd.Restriction{
			Base:      "xsd:string",
			MinLength: &minL,
			MaxLength: &maxL,
		},
	})
	s.Elements = append(s.Elements,
		&xsd.Element{Name: "Postcode", Type: "f:PostcodeType"},
		&xsd.Element{Name: "Short", Type: "f:ShortType"},
	)
	ss, err := NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}
	valid := []string{
		`<Postcode xmlns="urn:f">3000</Postcode>`,
		`<Short xmlns="urn:f">abc</Short>`,
	}
	for _, doc := range valid {
		if res := validate(t, ss, doc); !res.Valid() {
			t.Errorf("%s rejected: %v", doc, res.Errors)
		}
	}
	expectError(t, ss, `<Postcode xmlns="urn:f">30</Postcode>`, "does not match pattern")
	expectError(t, ss, `<Short xmlns="urn:f">x</Short>`, "shorter than minLength")
	expectError(t, ss, `<Short xmlns="urn:f">abcdef</Short>`, "longer than maxLength")
}

// TestHandWrittenSchemaShapes exercises element declaration shapes the
// generator never emits but hand-written schemas use: builtin-typed
// elements, simple-type elements, untyped elements and element refs at
// top level.
func TestHandWrittenSchemaShapes(t *testing.T) {
	s := xsd.NewSchema("urn:h")
	_ = s.DeclareNamespace("h", "urn:h")
	s.SimpleTypes = append(s.SimpleTypes, &xsd.SimpleType{
		Name: "ColorType",
		Restriction: &xsd.Restriction{
			Base:         "xsd:token",
			Enumerations: []string{"red", "green"},
		},
	})
	s.ComplexTypes = append(s.ComplexTypes, &xsd.ComplexType{
		Name: "BoxType",
		Sequence: []*xsd.Element{
			{Name: "Count", Type: "xsd:integer"},
			{Name: "Color", Type: "h:ColorType", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
			{Name: "Anything", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}}, // untyped
			{Ref: "h:Label", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
		},
	})
	s.Elements = append(s.Elements,
		&xsd.Element{Name: "Box", Type: "h:BoxType"},
		&xsd.Element{Name: "Label", Type: "xsd:string"},
		&xsd.Element{Name: "Bare"}, // untyped global
	)
	ss, err := NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}

	valid := []string{
		`<Box xmlns="urn:h"><Count>3</Count><Color>red</Color></Box>`,
		`<Box xmlns="urn:h"><Count>3</Count><Anything><x xmlns=""/></Anything></Box>`,
		`<Box xmlns="urn:h"><Count>3</Count><Label>hello</Label></Box>`,
		`<Label xmlns="urn:h">top level</Label>`,
		`<Bare xmlns="urn:h"><free xmlns=""/></Bare>`,
	}
	for _, doc := range valid {
		if res := validate(t, ss, doc); !res.Valid() {
			t.Errorf("%s rejected: %v", doc, res.Errors)
		}
	}
	expectError(t, ss, `<Box xmlns="urn:h"><Count>three</Count></Box>`, "not a valid xsd:integer")
	expectError(t, ss, `<Box xmlns="urn:h"><Count>1</Count><Color>blue</Color></Box>`, "enumerated values")
	expectError(t, ss, `<Box xmlns="urn:h"><Count>1</Count><Color>red<extra/></Color></Box>`, "child elements")
	expectError(t, ss, `<Label xmlns="urn:h"><nested/></Label>`, "child elements")
	// Simple-type element with attributes.
	expectError(t, ss, `<Box xmlns="urn:h"><Count>1</Count><Color bogus="1">red</Color></Box>`, "unexpected attributes")
}

func TestBrokenSchemaReferences(t *testing.T) {
	s := xsd.NewSchema("urn:b")
	_ = s.DeclareNamespace("b", "urn:b")
	_ = s.DeclareNamespace("m", "urn:missing")
	s.ComplexTypes = append(s.ComplexTypes, &xsd.ComplexType{
		Name: "RootType",
		Sequence: []*xsd.Element{
			{Name: "MissingType", Type: "b:Nope", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
			{Name: "MissingNS", Type: "m:Thing", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
			{Name: "BadPrefix", Type: "zz:Thing", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
			{Ref: "b:NoSuchGlobal", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
			{Ref: "m:NoSchema", Occurs: xsd.Occurs{Min: 0, Max: 1, Explicit: true}},
		},
	})
	s.Elements = append(s.Elements, &xsd.Element{Name: "Root", Type: "b:RootType"})
	ss, err := NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}
	for frag, doc := range map[string]string{
		`type "Nope" not found`:   `<Root xmlns="urn:b"><MissingType>x</MissingType></Root>`,
		`no schema for namespace`: `<Root xmlns="urn:b"><MissingNS>x</MissingNS></Root>`,
		`undeclared prefix "zz"`:  `<Root xmlns="urn:b"><BadPrefix>x</BadPrefix></Root>`,
	} {
		expectError(t, ss, doc, frag)
	}
	// Broken particle refs surface when the sequence is validated.
	res := validate(t, ss, `<Root xmlns="urn:b"/>`)
	joined := ""
	for _, e := range res.Errors {
		joined += e.Error() + "\n"
	}
	if !strings.Contains(joined, "NoSuchGlobal") && !strings.Contains(joined, "no schema for ref namespace") {
		t.Errorf("particle ref errors missing: %s", joined)
	}
}

func TestComplexTypeUsedAsValue(t *testing.T) {
	// An attribute typed by a sequence complex type is a schema bug the
	// validator reports.
	s := xsd.NewSchema("urn:v")
	_ = s.DeclareNamespace("v", "urn:v")
	s.ComplexTypes = append(s.ComplexTypes,
		&xsd.ComplexType{Name: "SeqType", Sequence: nil},
		&xsd.ComplexType{Name: "WrapType", SimpleContent: &xsd.SimpleContent{
			Extension: &xsd.Extension{Base: "v:SeqType"},
		}},
	)
	s.Elements = append(s.Elements, &xsd.Element{Name: "W", Type: "v:WrapType"})
	ss, err := NewSchemaSet(s)
	if err != nil {
		t.Fatal(err)
	}
	expectError(t, ss, `<W xmlns="urn:v">x</W>`, "not a simple type")
}

func TestErrorPathsAreUseful(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, ">AUS<", ">XYZ<", 1)
	res := validate(t, ss, doc)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Path, "/HoardingPermit/BillingPerson_Identification/AssignedAddress/CountryName") {
			found = true
		}
	}
	if !found {
		t.Errorf("error paths not hierarchical: %v", res.Errors)
	}
}

func TestErrorOffsets(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, ">AUS<", ">XYZ<", 1)
	res := validate(t, ss, doc)
	if res.Valid() {
		t.Fatal("expected errors")
	}
	for _, e := range res.Errors {
		if e.Offset <= 0 {
			t.Errorf("error without offset: %+v", e)
			continue
		}
		if !strings.Contains(e.Error(), "byte ") {
			t.Errorf("error string lacks offset: %s", e.Error())
		}
		// The offset points inside the document, near the CountryName
		// element.
		if int(e.Offset) > len(doc) {
			t.Errorf("offset %d beyond document length %d", e.Offset, len(doc))
		}
	}
	// The enum violation's offset lands after the CountryName start tag.
	idx := strings.Index(doc, "<ca:CountryName")
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Message, "XYZ") && int(e.Offset) > idx {
			found = true
		}
	}
	if !found {
		t.Errorf("enum violation offset not near CountryName (tag at %d): %v", idx, res.Errors)
	}
}

func TestXSINamespaceIgnored(t *testing.T) {
	ss := permitSet(t)
	doc := strings.Replace(validPermit, "<doc:HoardingPermit",
		`<doc:HoardingPermit xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:schemaLocation="urn:x x.xsd"`, 1)
	if res := validate(t, ss, doc); !res.Valid() {
		t.Errorf("xsi attributes must be ignored: %v", res.Errors)
	}
}
