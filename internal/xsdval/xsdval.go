// Package xsdval validates XML instance documents against the schema
// sets produced by internal/gen. The paper: "The schemas are then used to
// validate XML messages exchanged during a business process." The
// environment has no external XSD validator, so this package implements
// the subset the NDR generator emits: global root elements, complex types
// with ordered sequences and occurrence ranges, simpleContent extensions
// with required/optional attributes, enumeration/pattern/length facets
// and the XSD built-in simple types.
package xsdval

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"regexp"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/xsd"
)

// xsiNamespace is the XML Schema instance namespace; its attributes
// (xsi:schemaLocation etc.) are ignored during validation.
const xsiNamespace = "http://www.w3.org/2001/XMLSchema-instance"

// SchemaSet indexes a group of schemas by target namespace and resolves
// cross-schema type references.
type SchemaSet struct {
	byNamespace map[string]*xsd.Schema
	// index is the resolve-phase model index the schemas were generated
	// from, when the caller attached one with WithIndex; it lets
	// model-level lookups (SchemaForLibrary, instance generation) reuse
	// resolved names instead of re-deriving them.
	index *core.ModelIndex
}

// NewSchemaSet builds a set from schemas; duplicate target namespaces are
// an error.
func NewSchemaSet(schemas ...*xsd.Schema) (*SchemaSet, error) {
	ss := &SchemaSet{byNamespace: make(map[string]*xsd.Schema, len(schemas))}
	for _, s := range schemas {
		if err := ss.Add(s); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// Add registers one more schema.
func (ss *SchemaSet) Add(s *xsd.Schema) error {
	if s.TargetNamespace == "" {
		return fmt.Errorf("xsdval: schema without target namespace")
	}
	if _, dup := ss.byNamespace[s.TargetNamespace]; dup {
		return fmt.Errorf("xsdval: duplicate schema for namespace %s", s.TargetNamespace)
	}
	ss.byNamespace[s.TargetNamespace] = s
	return nil
}

// Schema returns the schema for a target namespace.
func (ss *SchemaSet) Schema(namespace string) *xsd.Schema {
	return ss.byNamespace[namespace]
}

// WithIndex attaches the resolve-phase model index the schemas came
// from and returns the set for chaining.
func (ss *SchemaSet) WithIndex(ix *core.ModelIndex) *SchemaSet {
	ss.index = ix
	return ss
}

// Index returns the attached resolve-phase model index, or nil.
func (ss *SchemaSet) Index() *core.ModelIndex { return ss.index }

// SchemaForLibrary returns the schema generated for a model library,
// resolving its target namespace through the attached index when one is
// present.
func (ss *SchemaSet) SchemaForLibrary(lib *core.Library) *xsd.Schema {
	if lib == nil {
		return nil
	}
	if ss.index != nil {
		return ss.byNamespace[ss.index.Namespace(lib)]
	}
	return ss.byNamespace[lib.BaseURN]
}

// Error is one validation finding, located by element path and input
// offset.
type Error struct {
	// Path is the slash-separated element path, e.g.
	// "/HoardingPermit/CurrentApplication".
	Path    string
	Message string
	// Offset is the byte position of the offending element's start tag
	// in the input, 0 when unknown.
	Offset int64
}

// Error implements the error interface.
func (e Error) Error() string {
	if e.Offset > 0 {
		return fmt.Sprintf("%s (byte %d): %s", e.Path, e.Offset, e.Message)
	}
	return e.Path + ": " + e.Message
}

// Result collects the findings of one validation run.
type Result struct {
	Errors []Error

	// cur is the byte offset of the element currently being validated;
	// findings inherit it so every error points at its nearest
	// enclosing element in the input.
	cur int64
}

// Valid reports whether the document conformed.
func (r *Result) Valid() bool { return len(r.Errors) == 0 }

func (r *Result) errorf(path, format string, args ...any) {
	r.Errors = append(r.Errors, Error{
		Path:    path,
		Message: fmt.Sprintf(format, args...),
		Offset:  r.cur,
	})
}

// at records the element being validated and returns a restore value
// for use with defer.
func (r *Result) at(n *node) int64 {
	prev := r.cur
	r.cur = n.offset
	return prev
}

// Validate parses and validates one XML document against the set. The
// returned error covers only malformed XML or documents whose root has no
// declaration; schema violations land in the Result.
func (ss *SchemaSet) Validate(r io.Reader) (*Result, error) {
	node, err := parseDoc(r)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	schema := ss.byNamespace[node.name.Space]
	if schema == nil {
		return nil, fmt.Errorf("xsdval: no schema for root namespace %q", node.name.Space)
	}
	decl := schema.GlobalElement(node.name.Local)
	if decl == nil {
		return nil, fmt.Errorf("xsdval: namespace %q declares no global element %q", node.name.Space, node.name.Local)
	}
	ss.validateElement(res, "/"+node.name.Local, node, schema, decl)
	return res, nil
}

// ValidateString validates a document given as a string.
func (ss *SchemaSet) ValidateString(doc string) (*Result, error) {
	return ss.Validate(strings.NewReader(doc))
}

// node is a parsed XML element.
type node struct {
	name     xml.Name
	attrs    []xml.Attr
	children []*node
	text     strings.Builder
	// offset is the byte position right after the start tag.
	offset int64
}

func parseDoc(r io.Reader) (*node, error) {
	dec := xml.NewDecoder(r)
	var root *node
	var stack []*node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xsdval: malformed XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &node{name: t.Name, offset: dec.InputOffset()}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" || a.Name.Space == xsiNamespace {
					continue
				}
				n.attrs = append(n.attrs, a)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xsdval: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xsdval: empty document")
	}
	return root, nil
}

// resolveType finds the named type referenced from within schema.
// Builtins return (nil, nil, local).
func (ss *SchemaSet) resolveType(schema *xsd.Schema, ref string) (*xsd.ComplexType, *xsd.SimpleType, string, error) {
	uri, local, err := schema.ResolveQName(ref)
	if err != nil {
		return nil, nil, "", err
	}
	if uri == xsd.XSDNamespace {
		return nil, nil, local, nil
	}
	target := ss.byNamespace[uri]
	if target == nil {
		return nil, nil, "", fmt.Errorf("no schema for namespace %q (type %q)", uri, ref)
	}
	if ct := target.ComplexType(local); ct != nil {
		// Complex types live in their defining schema: remember it for
		// nested resolution by returning through validateComplex's
		// schema argument.
		return ct, nil, "", nil
	}
	if st := target.SimpleType(local); st != nil {
		return nil, st, "", nil
	}
	return nil, nil, "", fmt.Errorf("type %q not found in namespace %q", local, uri)
}

// schemaOfType returns the schema defining the given type reference, for
// nested element resolution.
func (ss *SchemaSet) schemaOfType(schema *xsd.Schema, ref string) *xsd.Schema {
	uri, _, err := schema.ResolveQName(ref)
	if err != nil {
		return schema
	}
	if s := ss.byNamespace[uri]; s != nil {
		return s
	}
	return schema
}

func (ss *SchemaSet) validateElement(res *Result, path string, n *node, schema *xsd.Schema, decl *xsd.Element) {
	prev := res.at(n)
	defer func() { res.cur = prev }()
	ref := decl.Type
	if decl.Ref != "" {
		// Resolve the global element the ref points at.
		uri, local, err := schema.ResolveQName(decl.Ref)
		if err != nil {
			res.errorf(path, "unresolvable ref %q: %v", decl.Ref, err)
			return
		}
		target := ss.byNamespace[uri]
		if target == nil {
			res.errorf(path, "no schema for ref namespace %q", uri)
			return
		}
		global := target.GlobalElement(local)
		if global == nil {
			res.errorf(path, "no global element %q in %q", local, uri)
			return
		}
		ss.validateElement(res, path, n, target, global)
		return
	}
	if ref == "" {
		// Element without a type validates anything.
		return
	}
	ct, st, builtin, err := ss.resolveType(schema, ref)
	switch {
	case err != nil:
		res.errorf(path, "%v", err)
	case ct != nil:
		ss.validateComplex(res, path, n, ss.schemaOfType(schema, ref), ct)
	case st != nil:
		ss.validateSimpleNode(res, path, n, ss.schemaOfType(schema, ref), st)
	default:
		ss.validateBuiltinNode(res, path, n, builtin)
	}
}

func (ss *SchemaSet) validateComplex(res *Result, path string, n *node, schema *xsd.Schema, ct *xsd.ComplexType) {
	if ct.SimpleContent != nil && ct.SimpleContent.Extension != nil {
		ss.validateSimpleContent(res, path, n, schema, ct.SimpleContent.Extension)
		return
	}
	// Sequence content: no non-whitespace text, no attributes beyond
	// xsi/xmlns.
	if strings.TrimSpace(n.text.String()) != "" {
		res.errorf(path, "unexpected text content in element of type %s", ct.Name)
	}
	for _, a := range n.attrs {
		res.errorf(path, "unexpected attribute %q on element of type %s", a.Name.Local, ct.Name)
	}
	ss.validateSequence(res, path, n, schema, ct)
}

// particleName returns the expected instance name and namespace of a
// sequence particle.
func (ss *SchemaSet) particleName(schema *xsd.Schema, p *xsd.Element) (xml.Name, *xsd.Element, *xsd.Schema, error) {
	if p.Ref == "" {
		return xml.Name{Space: schema.TargetNamespace, Local: p.Name}, p, schema, nil
	}
	uri, local, err := schema.ResolveQName(p.Ref)
	if err != nil {
		return xml.Name{}, nil, nil, err
	}
	target := ss.byNamespace[uri]
	if target == nil {
		return xml.Name{}, nil, nil, fmt.Errorf("no schema for ref namespace %q", uri)
	}
	global := target.GlobalElement(local)
	if global == nil {
		return xml.Name{}, nil, nil, fmt.Errorf("no global element %q in %q", local, uri)
	}
	return xml.Name{Space: uri, Local: local}, global, target, nil
}

func (ss *SchemaSet) validateSequence(res *Result, path string, n *node, schema *xsd.Schema, ct *xsd.ComplexType) {
	childIdx := 0
	for _, particle := range ct.Sequence {
		want, decl, declSchema, err := ss.particleName(schema, particle)
		if err != nil {
			res.errorf(path, "%v", err)
			continue
		}
		count := 0
		for childIdx < len(n.children) && n.children[childIdx].name == want {
			child := n.children[childIdx]
			ss.validateElement(res, path+"/"+child.name.Local, child, declSchema, decl)
			childIdx++
			count++
		}
		if !particle.Occurs.Contains(count) {
			res.errorf(path, "element %q occurs %d time(s), allowed %s", want.Local, count, particle.Occurs)
		}
	}
	for ; childIdx < len(n.children); childIdx++ {
		child := n.children[childIdx]
		res.errorf(path, "unexpected element %q (namespace %q)", child.name.Local, child.name.Space)
	}
}

func (ss *SchemaSet) validateSimpleContent(res *Result, path string, n *node, schema *xsd.Schema, ext *xsd.Extension) {
	if len(n.children) > 0 {
		res.errorf(path, "unexpected child elements in simple-content element")
	}
	// Text against the base type.
	ss.validateSimpleValue(res, path, n.text.String(), schema, ext.Base)

	// Attributes: declared ones validate; required ones must be present;
	// undeclared ones are errors.
	seen := map[string]bool{}
	for _, a := range n.attrs {
		var decl *xsd.Attribute
		for _, d := range ext.Attributes {
			if d.Name == a.Name.Local && a.Name.Space == "" {
				decl = d
				break
			}
		}
		if decl == nil {
			res.errorf(path, "undeclared attribute %q", a.Name.Local)
			continue
		}
		seen[decl.Name] = true
		ss.validateSimpleValue(res, path+"/@"+decl.Name, a.Value, schema, decl.Type)
	}
	for _, d := range ext.Attributes {
		if d.Use == "required" && !seen[d.Name] {
			res.errorf(path, "missing required attribute %q", d.Name)
		}
	}
}

func (ss *SchemaSet) validateSimpleNode(res *Result, path string, n *node, schema *xsd.Schema, st *xsd.SimpleType) {
	if len(n.children) > 0 {
		res.errorf(path, "unexpected child elements in simple-type element")
	}
	if len(n.attrs) > 0 {
		res.errorf(res.attrPath(path, n), "unexpected attributes on simple-type element")
	}
	ss.validateSimpleType(res, path, n.text.String(), schema, st)
}

func (r *Result) attrPath(path string, n *node) string {
	if len(n.attrs) > 0 {
		return path + "/@" + n.attrs[0].Name.Local
	}
	return path
}

func (ss *SchemaSet) validateBuiltinNode(res *Result, path string, n *node, builtin string) {
	if len(n.children) > 0 {
		res.errorf(path, "unexpected child elements in %s element", builtin)
	}
	validateBuiltin(res, path, n.text.String(), builtin)
}

// validateSimpleValue validates a text value against a type reference
// (builtin, simple type or — illegal here — complex type).
func (ss *SchemaSet) validateSimpleValue(res *Result, path, value string, schema *xsd.Schema, ref string) {
	ct, st, builtin, err := ss.resolveType(schema, ref)
	switch {
	case err != nil:
		res.errorf(path, "%v", err)
	case ct != nil:
		// Extension base may itself be a simpleContent complex type; its
		// own base carries the value constraint.
		if ct.SimpleContent != nil && ct.SimpleContent.Extension != nil {
			ss.validateSimpleValue(res, path, value, ss.schemaOfType(schema, ref), ct.SimpleContent.Extension.Base)
			return
		}
		res.errorf(path, "type %q is not a simple type", ref)
	case st != nil:
		ss.validateSimpleType(res, path, value, ss.schemaOfType(schema, ref), st)
	default:
		validateBuiltin(res, path, value, builtin)
	}
}

func (ss *SchemaSet) validateSimpleType(res *Result, path, value string, schema *xsd.Schema, st *xsd.SimpleType) {
	r := st.Restriction
	if r == nil {
		return
	}
	collapsed := collapse(value)
	if len(r.Enumerations) > 0 {
		ok := false
		for _, e := range r.Enumerations {
			if collapsed == e {
				ok = true
				break
			}
		}
		if !ok {
			res.errorf(path, "value %q is not one of the enumerated values %v of %s", collapsed, r.Enumerations, st.Name)
			return
		}
	}
	if r.Pattern != "" {
		re, err := regexp.Compile("^(?:" + r.Pattern + ")$")
		if err != nil {
			res.errorf(path, "invalid pattern facet %q: %v", r.Pattern, err)
		} else if !re.MatchString(collapsed) {
			res.errorf(path, "value %q does not match pattern %q", collapsed, r.Pattern)
		}
	}
	if r.MinLength != nil && len(collapsed) < *r.MinLength {
		res.errorf(path, "value %q shorter than minLength %d", collapsed, *r.MinLength)
	}
	if r.MaxLength != nil && len(collapsed) > *r.MaxLength {
		res.errorf(path, "value %q longer than maxLength %d", collapsed, *r.MaxLength)
	}
	if r.Base != "" {
		ss.validateSimpleValue(res, path, value, schema, r.Base)
	}
}

// collapse applies XSD whitespace collapse.
func collapse(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

var (
	integerRe  = regexp.MustCompile(`^[+-]?[0-9]+$`)
	decimalRe  = regexp.MustCompile(`^[+-]?([0-9]+(\.[0-9]*)?|\.[0-9]+)$`)
	floatRe    = regexp.MustCompile(`^([+-]?([0-9]+(\.[0-9]*)?|\.[0-9]+)([eE][+-]?[0-9]+)?|NaN|INF|-INF)$`)
	dateRe     = regexp.MustCompile(`^-?[0-9]{4,}-[0-9]{2}-[0-9]{2}(Z|[+-][0-9]{2}:[0-9]{2})?$`)
	timeRe     = regexp.MustCompile(`^[0-9]{2}:[0-9]{2}:[0-9]{2}(\.[0-9]+)?(Z|[+-][0-9]{2}:[0-9]{2})?$`)
	dateTimeRe = regexp.MustCompile(`^-?[0-9]{4,}-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:[0-9]{2}(\.[0-9]+)?(Z|[+-][0-9]{2}:[0-9]{2})?$`)
	durationRe = regexp.MustCompile(`^-?P([0-9]+Y)?([0-9]+M)?([0-9]+D)?(T([0-9]+H)?([0-9]+M)?([0-9]+(\.[0-9]+)?S)?)?$`)
)

// validateBuiltin validates a value against an XSD built-in simple type.
// Unknown builtins are accepted (the generator only emits the known set;
// hand-written schemas may use more).
func validateBuiltin(res *Result, path, value, builtin string) {
	v := collapse(value)
	fail := func(kind string) {
		res.errorf(path, "value %q is not a valid xsd:%s", v, kind)
	}
	switch builtin {
	case "string", "token", "normalizedString", "anyURI", "NCName", "":
		// Any text.
	case "boolean":
		if v != "true" && v != "false" && v != "0" && v != "1" {
			fail("boolean")
		}
	case "integer", "int", "long", "short", "nonNegativeInteger", "positiveInteger":
		if !integerRe.MatchString(v) {
			fail(builtin)
		}
	case "decimal":
		if !decimalRe.MatchString(v) {
			fail("decimal")
		}
	case "double", "float":
		if !floatRe.MatchString(v) {
			fail(builtin)
		}
	case "date":
		if !dateRe.MatchString(v) {
			fail("date")
		}
	case "time":
		if !timeRe.MatchString(v) {
			fail("time")
		}
	case "dateTime":
		if !dateTimeRe.MatchString(v) {
			fail("dateTime")
		}
	case "duration":
		if v == "" || v == "P" || !durationRe.MatchString(v) {
			fail("duration")
		}
	case "base64Binary":
		if _, err := base64.StdEncoding.DecodeString(strings.ReplaceAll(v, " ", "")); err != nil {
			fail("base64Binary")
		}
	}
}
