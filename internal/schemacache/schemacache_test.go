package schemacache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func val(name string, n int) *Value {
	return &Value{Files: []File{{Name: name, Data: make([]byte, n)}}}
}

func TestKeyCanonicalization(t *testing.T) {
	base := Key([]byte("<xmi>\n<a/>\n</xmi>\n"), "lib|root")
	cases := []struct {
		name string
		xmi  string
		fp   string
		same bool
	}{
		{"crlf line endings", "<xmi>\r\n<a/>\r\n</xmi>\r\n", "lib|root", true},
		{"bare cr line endings", "<xmi>\r<a/>\r</xmi>\r", "lib|root", true},
		{"trailing blank lines", "<xmi>\n<a/>\n</xmi>\n\n\n", "lib|root", true},
		{"different document", "<xmi>\n<b/>\n</xmi>\n", "lib|root", false},
		{"different fingerprint", "<xmi>\n<a/>\n</xmi>\n", "lib|other", false},
		{"content moved into fingerprint", "<xmi>\n<a/>\n</xmi>\nlib", "|root", false},
	}
	for _, tc := range cases {
		got := Key([]byte(tc.xmi), tc.fp)
		if (got == base) != tc.same {
			t.Errorf("%s: key equality = %v, want %v", tc.name, got == base, tc.same)
		}
	}
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(250)
	ctx := context.Background()
	compute := func(name string) func() (*Value, error) {
		return func() (*Value, error) { return val(name, 100), nil }
	}

	if _, out, _ := c.Do(ctx, "a", compute("a")); out != Miss {
		t.Fatalf("first a: outcome %v, want miss", out)
	}
	if _, out, _ := c.Do(ctx, "a", compute("a")); out != Hit {
		t.Fatalf("second a: outcome %v, want hit", out)
	}
	c.Do(ctx, "b", compute("b"))
	// Touch a so b is the LRU entry, then insert c to force one eviction.
	c.Do(ctx, "a", compute("a"))
	c.Do(ctx, "c", compute("c"))

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want it dropped as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted; want it resident (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 {
		t.Errorf("hits = %d, want 2", st.Hits)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
	if st.Bytes > 250 {
		t.Errorf("bytes = %d, want <= budget 250", st.Bytes)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(50)
	ctx := context.Background()
	c.Do(ctx, "big", func() (*Value, error) { return val("big", 1000), nil })
	if _, ok := c.Get("big"); ok {
		t.Error("value larger than the whole budget was cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want empty cache", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func() (*Value, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, out, err := c.Do(ctx, "k", func() (*Value, error) { return val("ok", 10), nil })
	if err != nil || out != Miss || v == nil {
		t.Fatalf("retry after error: v=%v out=%v err=%v, want fresh miss", v, out, err)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var computations atomic.Int64
	release := make(chan struct{})

	const waiters = 32
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(ctx, "shared", func() (*Value, error) {
				computations.Add(1)
				<-release
				return val("shared", 10), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if v == nil || v.Files[0].Name != "shared" {
				t.Errorf("waiter %d: wrong value %v", i, v)
			}
			outcomes[i] = out
		}(i)
	}
	// Let all goroutines enqueue before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		inflight := len(c.flight) == 1
		coalesced := c.coalesced
		c.mu.Unlock()
		if inflight && coalesced == waiters-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters did not coalesce in time")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly 1", n)
	}
	misses, coalesced := 0, 0
	for _, out := range outcomes {
		switch out {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != waiters-1 {
		t.Errorf("outcomes: %d misses, %d coalesced; want 1 and %d", misses, coalesced, waiters-1)
	}
}

func TestCoalescedWaiterObservesCancellation(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() (*Value, error) {
		close(started)
		<-release
		return val("k", 1), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (*Value, error) { return val("k", 1), nil })
		done <- err
	}()
	// The waiter must be parked on the in-flight call before we cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		parked := c.coalesced == 1
		c.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
}

func TestZeroBudgetStillCollapses(t *testing.T) {
	c := New(0)
	ctx := context.Background()
	c.Do(ctx, "k", func() (*Value, error) { return val("k", 1), nil })
	if _, out, _ := c.Do(ctx, "k", func() (*Value, error) { return val("k", 1), nil }); out != Miss {
		t.Errorf("outcome = %v, want miss with caching disabled", out)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(10_000)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%20)
				v, _, err := c.Do(ctx, key, func() (*Value, error) { return val(key, 100), nil })
				if err != nil || v == nil || v.Files[0].Name != key {
					t.Errorf("key %s: v=%v err=%v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 10_000 {
		t.Errorf("bytes = %d over budget", st.Bytes)
	}
}
