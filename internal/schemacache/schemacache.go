// Package schemacache memoizes generation results behind the serving
// subsystem. The transformation pipeline is deterministic — the same
// XMI bytes and generation options always produce the same schema set —
// so a resident service can answer repeated requests from a
// content-addressed cache instead of re-importing, re-validating and
// re-emitting. The cache is keyed by SHA-256 of the canonicalized XMI
// document plus an options fingerprint, bounds its memory with an LRU
// byte budget, collapses concurrent identical requests into a single
// underlying computation (singleflight), and counts hits, misses,
// coalesced waiters and evictions.
package schemacache

import (
	"container/list"
	"context"
	"sync"

	"github.com/go-ccts/ccts/internal/contentaddr"
	"github.com/go-ccts/ccts/internal/metrics"
)

// File is one cached schema document, already serialized.
type File struct {
	// Name is the schema file name (e.g. "EB005-HoardingPermit_0.4.xsd").
	Name string
	// Data is the serialized document.
	Data []byte
}

// Value is one cached generation result: the serialized schema set in
// generation order plus the serialized diagnostics that accompany it.
// Values are immutable once stored; callers must not modify the byte
// slices.
type Value struct {
	// Files lists the schema documents in generation order; the
	// requested library's schema is first.
	Files []File
	// RootElement is the selected root element for DOCLibrary runs.
	RootElement string
	// Diagnostics is the serialized diagnostics report (JSON) for the
	// run: non-blocking validation findings the cold path produced.
	Diagnostics []byte
	// ContentType is the media type of Files, recorded by the producing
	// backend so multi-target responses label parts correctly. Empty
	// means the historical default, application/xml.
	ContentType string
}

// size is the byte cost the value charges against the cache budget.
func (v *Value) size() int64 {
	n := int64(len(v.Diagnostics)) + int64(len(v.RootElement)) + int64(len(v.ContentType))
	for _, f := range v.Files {
		n += int64(len(f.Name)) + int64(len(f.Data))
	}
	return n
}

// Canonicalize normalizes an XMI document for content addressing. It is
// contentaddr.Canonicalize, re-exported so cache callers keep a single
// import; the cache and the persistent schema repository share the
// definition and therefore can never address the same input differently.
func Canonicalize(xmi []byte) []byte { return contentaddr.Canonicalize(xmi) }

// Key derives the content address of a request: SHA-256 over the
// canonicalized XMI bytes and the caller's options fingerprint (library,
// root, style, annotation flags — everything that changes the output).
// It is contentaddr.Key, shared with the schema repository.
func Key(xmi []byte, fingerprint string) string { return contentaddr.Key(xmi, fingerprint) }

// Outcome classifies how a Do call was answered.
type Outcome int

const (
	// Miss: this call ran the compute function.
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: an identical call was already in flight; this call
	// waited for its result instead of recomputing.
	Coalesced
)

// String names the outcome for headers and logs.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// call is one in-flight computation shared by concurrent identical
// requests.
type call struct {
	done chan struct{}
	val  *Value
	err  error
}

// entry is one resident cache item.
type entry struct {
	key  string
	val  *Value
	cost int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls answered from the cache.
	Hits int64
	// Misses counts Do calls that ran the compute function.
	Misses int64
	// Coalesced counts Do calls that waited on an identical in-flight
	// computation.
	Coalesced int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// Entries is the current number of resident values.
	Entries int
	// Bytes is the current charged size of all resident values.
	Bytes int64
}

// Cache is a content-addressed LRU cache with singleflight collapsing.
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key -> *entry element
	flight map[string]*call

	hits, misses, coalesced, evictions int64

	// Optional instruments; nil until Instrument is called.
	mHits, mMisses, mCoalesced, mEvictions *metrics.Counter
	mBytes, mEntries                       *metrics.Gauge
}

// New returns a cache bounded to budget bytes of cached values. A
// budget <= 0 disables caching entirely (every Do is a miss, but
// singleflight collapsing still applies).
func New(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
		flight: map[string]*call{},
	}
}

// Instrument registers the cache's counters and gauges with a metrics
// registry under the schemacache_* names; subsequent cache activity
// updates them in place.
func (c *Cache) Instrument(r *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = r.Counter("schemacache_hits_total", "Requests answered from the schema cache.")
	c.mMisses = r.Counter("schemacache_misses_total", "Requests that ran a full generation.")
	c.mCoalesced = r.Counter("schemacache_coalesced_total", "Requests collapsed onto an identical in-flight generation.")
	c.mEvictions = r.Counter("schemacache_evictions_total", "Cache entries evicted to respect the byte budget.")
	c.mBytes = r.Gauge("schemacache_bytes", "Bytes of cached schema sets currently resident.")
	c.mEntries = r.Gauge("schemacache_entries", "Cached schema sets currently resident.")
	c.mHits.Add(c.hits)
	c.mMisses.Add(c.misses)
	c.mCoalesced.Add(c.coalesced)
	c.mEvictions.Add(c.evictions)
	c.mBytes.Set(c.used)
	c.mEntries.Set(int64(c.ll.Len()))
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.used,
	}
}

// Get returns the cached value for key, refreshing its recency. It does
// not count as a hit or miss; use Do for instrumented access.
func (c *Cache) Get(key string) (*Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Do returns the value for key, computing it at most once across
// concurrent callers. On a hit the cached value is returned immediately.
// On a miss the compute function runs on the calling goroutine; callers
// that arrive while it runs wait for its result (Coalesced) instead of
// recomputing. Errors are returned to every waiting caller and are not
// cached — the next request retries. A waiting caller whose ctx is
// cancelled stops waiting and returns ctx.Err(); the in-flight
// computation itself is owned by the leader and keeps running for the
// benefit of other waiters.
func (c *Cache) Do(ctx context.Context, key string, compute func() (*Value, error)) (*Value, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		if c.mHits != nil {
			c.mHits.Inc()
		}
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if cl, ok := c.flight[key]; ok {
		c.coalesced++
		if c.mCoalesced != nil {
			c.mCoalesced.Inc()
		}
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, Coalesced, cl.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.misses++
	if c.mMisses != nil {
		c.mMisses.Inc()
	}
	c.mu.Unlock()

	cl.val, cl.err = compute()

	c.mu.Lock()
	delete(c.flight, key)
	if cl.err == nil && cl.val != nil {
		c.store(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, Miss, cl.err
}

// store inserts a computed value and evicts from the LRU tail until the
// budget holds. Called with c.mu held. Values larger than the whole
// budget are not cached at all.
func (c *Cache) store(key string, v *Value) {
	if c.budget <= 0 {
		return
	}
	cost := v.size()
	if cost > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		// A concurrent non-collapsed computation (e.g. after an eviction
		// race) already stored this key; refresh recency and keep the
		// resident value so hit responses stay stable.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: key, val: v, cost: cost})
	c.items[key] = el
	c.used += cost
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		te := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, te.key)
		c.used -= te.cost
		c.evictions++
		if c.mEvictions != nil {
			c.mEvictions.Inc()
		}
	}
	if c.mBytes != nil {
		c.mBytes.Set(c.used)
	}
	if c.mEntries != nil {
		c.mEntries.Set(int64(c.ll.Len()))
	}
}
