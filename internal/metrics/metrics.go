// Package metrics is a minimal counter/gauge registry with a Prometheus
// text exposition writer. The serving subsystem needs operational
// visibility (request counts, cache hit rates, worker activity) without
// pulling an external client library into the module, so this package
// implements the tiny subset the /metrics endpoint requires: named
// monotonic counters, named gauges, and a deterministic text rendering.
// All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered instrument with its exposition metadata.
type metric struct {
	name    string
	help    string
	counter *Counter
	gauge   *Gauge
}

// Registry holds named instruments. Counter and Gauge are idempotent:
// asking for an existing name returns the already-registered instrument,
// so independent subsystems can share instruments by name.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering a name that already names a gauge panics: that
// is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("metrics: %q is already registered as a gauge", name))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, counter: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Registering a name that already names a counter panics.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.gauge == nil {
			panic(fmt.Sprintf("metrics: %q is already registered as a counter", name))
		}
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, help: help, gauge: g}
	return g
}

// Snapshot returns the current value of every instrument, keyed by name.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.metrics))
	for name, m := range r.metrics {
		if m.counter != nil {
			out[name] = m.counter.Value()
		} else {
			out[name] = m.gauge.Value()
		}
	}
	return out
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format (version 0.0.4), sorted by name so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := make([]*metric, len(names))
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.RUnlock()

	for _, m := range ms {
		kind, value := "gauge", int64(0)
		if m.counter != nil {
			kind, value = "counter", m.counter.Value()
		} else {
			value = m.gauge.Value()
		}
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, kind, m.name, value); err != nil {
			return err
		}
	}
	return nil
}
