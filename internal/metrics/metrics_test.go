package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "In-flight requests.")
	g.Set(3)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "")
	b := r.Counter("x", "")
	if a != b {
		t.Error("Counter is not idempotent per name")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "Bs seen.").Add(7)
	r.Gauge("a_current", "Current As.").Set(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_current Current As.\n" +
		"# TYPE a_current gauge\n" +
		"a_current 2\n" +
		"# HELP b_total Bs seen.\n" +
		"# TYPE b_total counter\n" +
		"b_total 7\n"
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(-1)
	snap := r.Snapshot()
	if snap["c"] != 3 || snap["g"] != -1 {
		t.Errorf("snapshot = %v, want c=3 g=-1", snap)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("shared_gauge", "").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
	if got := r.Gauge("shared_gauge", "").Value(); got != 1600 {
		t.Errorf("gauge = %d, want 1600", got)
	}
}
