// Package ocl implements the subset of the Object Constraint Language
// needed to express and evaluate the well-formedness rules of the UML
// profile for core components. The paper names "a set of stereotypes,
// tagged values and OCL constraints" as the profile's substance and a
// full constraint evaluator as the top-priority future work; this package
// provides that evaluator.
//
// Supported constructs: boolean logic (and/or/xor/not, implies),
// comparisons, integer arithmetic, string and integer literals,
// if-then-else-endif, property navigation with implicit collect over
// collections, and the collection operations size, isEmpty, notEmpty,
// includes, excludes, count, sum, first, last, select, reject, collect,
// exists, forAll, one and any.
//
// Expressions are evaluated against application objects exposed through
// the Object interface; internal/profile adapts UML model elements to it.
package ocl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokOp     // punctuation and operators
	tokErrTok // lexing error
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords treated specially by the parser. They are matched
// case-sensitively, as in OCL.
var keywords = map[string]bool{
	"and": true, "or": true, "xor": true, "not": true, "implies": true,
	"if": true, "then": true, "else": true, "endif": true,
	"true": true, "false": true, "self": true, "null": true,
	"let": true, "in": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) token {
	return token{kind: tokErrTok, text: fmt.Sprintf(format, args...), pos: pos}
}

func (l *lexer) next() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) ||
			unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}

	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokInt, text: l.src[start:l.pos], pos: start}

	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return l.errorf(start, "unterminated string literal")
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}

	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "->", "<=", ">=", "<>":
			l.pos += 2
			return token{kind: tokOp, text: two, pos: start}
		}
		switch c {
		case '.', ',', '(', ')', '|', '=', '<', '>', '+', '-', '*', '/', '{', '}':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}
		}
		return l.errorf(start, "unexpected character %q", string(c))
	}
}

// lex tokenizes the whole source, returning an error for the first bad
// token.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t := l.next()
		if t.kind == tokErrTok {
			return nil, fmt.Errorf("ocl: %s at offset %d", t.text, t.pos)
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
