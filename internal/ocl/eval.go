package ocl

import (
	"fmt"
	"strings"
)

// Object adapts an application model element to OCL navigation.
// internal/profile implements it for UML packages, classes, attributes,
// associations and dependencies.
type Object interface {
	// OCLProperty resolves a property by name. The second result is false
	// when the property does not exist on this object.
	OCLProperty(name string) (Value, bool)
	// OCLTypeName names the object's type for error messages.
	OCLTypeName() string
}

type valueKind int

const (
	kindNull valueKind = iota
	kindBool
	kindInt
	kindString
	kindColl
	kindObject
)

// Value is an OCL runtime value: null, boolean, integer, string,
// collection or model object.
type Value struct {
	kind valueKind
	b    bool
	i    int
	s    string
	coll []Value
	obj  Object
}

// Null returns the OCL undefined value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{kind: kindBool, b: b} }

// Int wraps an integer.
func Int(i int) Value { return Value{kind: kindInt, i: i} }

// String wraps a string.
func String(s string) Value { return Value{kind: kindString, s: s} }

// Coll wraps a collection.
func Coll(vs ...Value) Value { return Value{kind: kindColl, coll: vs} }

// Obj wraps a model object; a nil object becomes null.
func Obj(o Object) Value {
	if o == nil {
		return Null()
	}
	return Value{kind: kindObject, obj: o}
}

// IsNull reports whether the value is OCL-undefined.
func (v Value) IsNull() bool { return v.kind == kindNull }

// AsBool returns the boolean payload.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == kindBool }

// AsInt returns the integer payload.
func (v Value) AsInt() (int, bool) { return v.i, v.kind == kindInt }

// AsString returns the string payload.
func (v Value) AsString() (string, bool) { return v.s, v.kind == kindString }

// AsColl returns the collection payload.
func (v Value) AsColl() ([]Value, bool) { return v.coll, v.kind == kindColl }

// AsObject returns the object payload.
func (v Value) AsObject() (Object, bool) { return v.obj, v.kind == kindObject }

// String renders the value for error messages and debugging.
func (v Value) String() string {
	switch v.kind {
	case kindNull:
		return "null"
	case kindBool:
		return fmt.Sprintf("%t", v.b)
	case kindInt:
		return fmt.Sprintf("%d", v.i)
	case kindString:
		return fmt.Sprintf("%q", v.s)
	case kindColl:
		parts := make([]string, len(v.coll))
		for i, e := range v.coll {
			parts[i] = e.String()
		}
		return "Collection{" + strings.Join(parts, ", ") + "}"
	case kindObject:
		return v.obj.OCLTypeName()
	}
	return "?"
}

// Equal implements OCL value equality: structural for collections,
// identity for objects.
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case kindNull:
		return true
	case kindBool:
		return a.b == b.b
	case kindInt:
		return a.i == b.i
	case kindString:
		return a.s == b.s
	case kindColl:
		if len(a.coll) != len(b.coll) {
			return false
		}
		for i := range a.coll {
			if !Equal(a.coll[i], b.coll[i]) {
				return false
			}
		}
		return true
	case kindObject:
		return a.obj == b.obj
	}
	return false
}

// env is the evaluation environment: the context object, iterator
// variables and the implicit-object stack for anonymous iterator bodies.
type env struct {
	self     Value
	vars     map[string]Value
	implicit []Value
}

func (e *env) child() *env {
	vars := make(map[string]Value, len(e.vars)+1)
	for k, v := range e.vars {
		vars[k] = v
	}
	return &env{self: e.self, vars: vars, implicit: e.implicit}
}

// Eval evaluates the expression with self as context object.
func (e *Expression) Eval(self Object) (Value, error) {
	return e.EvalValue(Obj(self))
}

// EvalValue evaluates the expression with an arbitrary value as context.
func (e *Expression) EvalValue(self Value) (Value, error) {
	return eval(e.root, &env{self: self, vars: map[string]Value{}})
}

// EvalBool evaluates a boolean constraint; a non-boolean result is an
// error.
func (e *Expression) EvalBool(self Object) (bool, error) {
	v, err := e.Eval(self)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("ocl: expression %q returned %s, want Boolean", e.src, v)
	}
	return b, nil
}

func eval(e expr, en *env) (Value, error) {
	switch n := e.(type) {
	case *literalExpr:
		return n.value, nil
	case *selfExpr:
		return en.self, nil
	case *identExpr:
		if v, ok := en.vars[n.name]; ok {
			return v, nil
		}
		// Implicit iterator object, then implicit self.
		for i := len(en.implicit) - 1; i >= 0; i-- {
			if v, err := navigate(en.implicit[i], n.name, true); err == nil {
				return v, nil
			}
		}
		return navigate(en.self, n.name, false)
	case *propertyExpr:
		target, err := eval(n.target, en)
		if err != nil {
			return Null(), err
		}
		return navigate(target, n.name, false)
	case *callExpr:
		return evalCall(n, en)
	case *arrowExpr:
		return evalArrow(n, en)
	case *iterateExpr:
		return evalIterate(n, en)
	case *unaryExpr:
		return evalUnary(n, en)
	case *binaryExpr:
		return evalBinary(n, en)
	case *letExpr:
		value, err := eval(n.value, en)
		if err != nil {
			return Null(), err
		}
		child := en.child()
		child.vars[n.varName] = value
		return eval(n.body, child)
	case *collectionExpr:
		var out []Value
		for _, el := range n.elements {
			v, err := eval(el, en)
			if err != nil {
				return Null(), err
			}
			if n.dedupe {
				dup := false
				for _, seen := range out {
					if Equal(v, seen) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			out = append(out, v)
		}
		return Coll(out...), nil
	case *ifExpr:
		cond, err := eval(n.cond, en)
		if err != nil {
			return Null(), err
		}
		b, ok := cond.AsBool()
		if !ok {
			return Null(), fmt.Errorf("ocl: if condition is %s, want Boolean", cond)
		}
		if b {
			return eval(n.thenE, en)
		}
		return eval(n.elseE, en)
	}
	return Null(), fmt.Errorf("ocl: unknown expression node %T", e)
}

// navigate resolves property name on a value. Over collections it
// performs OCL's implicit collect, flattening nested collections.
// strict=true returns an error for unknown properties instead of trying
// fallbacks; it is used for implicit-iterator resolution.
func navigate(target Value, name string, strict bool) (Value, error) {
	switch target.kind {
	case kindNull:
		if strict {
			return Null(), fmt.Errorf("ocl: property %q on null", name)
		}
		return Null(), nil
	case kindObject:
		v, ok := target.obj.OCLProperty(name)
		if !ok {
			return Null(), fmt.Errorf("ocl: %s has no property %q", target.obj.OCLTypeName(), name)
		}
		return v, nil
	case kindColl:
		out := make([]Value, 0, len(target.coll))
		for _, e := range target.coll {
			v, err := navigate(e, name, strict)
			if err != nil {
				return Null(), err
			}
			if inner, ok := v.AsColl(); ok {
				out = append(out, inner...)
			} else if !v.IsNull() {
				out = append(out, v)
			}
		}
		return Coll(out...), nil
	}
	return Null(), fmt.Errorf("ocl: property %q on %s", name, target)
}

func evalCall(n *callExpr, en *env) (Value, error) {
	target, err := eval(n.target, en)
	if err != nil {
		return Null(), err
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		if args[i], err = eval(a, en); err != nil {
			return Null(), err
		}
	}
	switch n.name {
	case "oclIsUndefined":
		return Bool(target.IsNull()), nil
	case "size":
		if s, ok := target.AsString(); ok {
			return Int(len(s)), nil
		}
	case "concat":
		s, ok1 := target.AsString()
		a, ok2 := argString(args, 0)
		if ok1 && ok2 {
			return String(s + a), nil
		}
	case "toUpperCase":
		if s, ok := target.AsString(); ok {
			return String(strings.ToUpper(s)), nil
		}
	case "toLowerCase":
		if s, ok := target.AsString(); ok {
			return String(strings.ToLower(s)), nil
		}
	case "startsWith":
		s, ok1 := target.AsString()
		a, ok2 := argString(args, 0)
		if ok1 && ok2 {
			return Bool(strings.HasPrefix(s, a)), nil
		}
	case "endsWith":
		s, ok1 := target.AsString()
		a, ok2 := argString(args, 0)
		if ok1 && ok2 {
			return Bool(strings.HasSuffix(s, a)), nil
		}
	case "contains":
		s, ok1 := target.AsString()
		a, ok2 := argString(args, 0)
		if ok1 && ok2 {
			return Bool(strings.Contains(s, a)), nil
		}
	case "abs":
		if i, ok := target.AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return Int(i), nil
		}
	}
	return Null(), fmt.Errorf("ocl: unknown operation %s.%s/%d", target, n.name, len(n.args))
}

func argString(args []Value, i int) (string, bool) {
	if i >= len(args) {
		return "", false
	}
	return args[i].AsString()
}

// asCollection applies OCL's single-value-as-set rule for -> operations:
// null becomes the empty collection, a scalar becomes a singleton.
func asCollection(v Value) []Value {
	switch v.kind {
	case kindColl:
		return v.coll
	case kindNull:
		return nil
	default:
		return []Value{v}
	}
}

func evalArrow(n *arrowExpr, en *env) (Value, error) {
	target, err := eval(n.target, en)
	if err != nil {
		return Null(), err
	}
	coll := asCollection(target)
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		if args[i], err = eval(a, en); err != nil {
			return Null(), err
		}
	}
	switch n.name {
	case "size":
		return Int(len(coll)), nil
	case "isEmpty":
		return Bool(len(coll) == 0), nil
	case "notEmpty":
		return Bool(len(coll) > 0), nil
	case "first":
		if len(coll) == 0 {
			return Null(), nil
		}
		return coll[0], nil
	case "last":
		if len(coll) == 0 {
			return Null(), nil
		}
		return coll[len(coll)-1], nil
	case "sum":
		total := 0
		for _, e := range coll {
			i, ok := e.AsInt()
			if !ok {
				return Null(), fmt.Errorf("ocl: sum over non-integer %s", e)
			}
			total += i
		}
		return Int(total), nil
	case "includes":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: includes takes 1 argument")
		}
		for _, e := range coll {
			if Equal(e, args[0]) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case "excludes":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: excludes takes 1 argument")
		}
		for _, e := range coll {
			if Equal(e, args[0]) {
				return Bool(false), nil
			}
		}
		return Bool(true), nil
	case "count":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: count takes 1 argument")
		}
		c := 0
		for _, e := range coll {
			if Equal(e, args[0]) {
				c++
			}
		}
		return Int(c), nil
	case "union":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: union takes 1 argument")
		}
		other := asCollection(args[0])
		return Coll(append(append([]Value{}, coll...), other...)...), nil
	case "intersection":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: intersection takes 1 argument")
		}
		other := asCollection(args[0])
		var out []Value
		for _, e := range coll {
			for _, o := range other {
				if Equal(e, o) {
					out = append(out, e)
					break
				}
			}
		}
		return Coll(out...), nil
	case "including":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: including takes 1 argument")
		}
		return Coll(append(append([]Value{}, coll...), args[0])...), nil
	case "excluding":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: excluding takes 1 argument")
		}
		var out []Value
		for _, e := range coll {
			if !Equal(e, args[0]) {
				out = append(out, e)
			}
		}
		return Coll(out...), nil
	case "at":
		if len(args) != 1 {
			return Null(), fmt.Errorf("ocl: at takes 1 argument")
		}
		i, ok := args[0].AsInt()
		if !ok || i < 1 || i > len(coll) {
			return Null(), fmt.Errorf("ocl: at(%s) out of range for collection of size %d", args[0], len(coll))
		}
		return coll[i-1], nil
	case "asSet":
		var out []Value
		for _, e := range coll {
			dup := false
			for _, seen := range out {
				if Equal(e, seen) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, e)
			}
		}
		return Coll(out...), nil
	}
	return Null(), fmt.Errorf("ocl: unknown collection operation ->%s", n.name)
}

func evalIterate(n *iterateExpr, en *env) (Value, error) {
	target, err := eval(n.target, en)
	if err != nil {
		return Null(), err
	}
	coll := asCollection(target)

	evalBody := func(elem Value) (Value, error) {
		child := en.child()
		if n.varName != "" {
			child.vars[n.varName] = elem
		} else {
			child.implicit = append(append([]Value{}, en.implicit...), elem)
		}
		return eval(n.body, child)
	}
	boolBody := func(elem Value) (bool, error) {
		v, err := evalBody(elem)
		if err != nil {
			return false, err
		}
		b, ok := v.AsBool()
		if !ok {
			return false, fmt.Errorf("ocl: %s body returned %s, want Boolean", n.name, v)
		}
		return b, nil
	}

	switch n.name {
	case "select", "reject":
		keepIf := n.name == "select"
		var out []Value
		for _, e := range coll {
			b, err := boolBody(e)
			if err != nil {
				return Null(), err
			}
			if b == keepIf {
				out = append(out, e)
			}
		}
		return Coll(out...), nil
	case "collect":
		var out []Value
		for _, e := range coll {
			v, err := evalBody(e)
			if err != nil {
				return Null(), err
			}
			if inner, ok := v.AsColl(); ok {
				out = append(out, inner...)
			} else if !v.IsNull() {
				out = append(out, v)
			}
		}
		return Coll(out...), nil
	case "exists":
		for _, e := range coll {
			b, err := boolBody(e)
			if err != nil {
				return Null(), err
			}
			if b {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case "forAll":
		for _, e := range coll {
			b, err := boolBody(e)
			if err != nil {
				return Null(), err
			}
			if !b {
				return Bool(false), nil
			}
		}
		return Bool(true), nil
	case "one":
		count := 0
		for _, e := range coll {
			b, err := boolBody(e)
			if err != nil {
				return Null(), err
			}
			if b {
				count++
			}
		}
		return Bool(count == 1), nil
	case "any":
		for _, e := range coll {
			b, err := boolBody(e)
			if err != nil {
				return Null(), err
			}
			if b {
				return e, nil
			}
		}
		return Null(), nil
	}
	return Null(), fmt.Errorf("ocl: unknown iterator operation ->%s", n.name)
}

func evalUnary(n *unaryExpr, en *env) (Value, error) {
	v, err := eval(n.operand, en)
	if err != nil {
		return Null(), err
	}
	switch n.op {
	case "not":
		b, ok := v.AsBool()
		if !ok {
			return Null(), fmt.Errorf("ocl: not applied to %s", v)
		}
		return Bool(!b), nil
	case "-":
		i, ok := v.AsInt()
		if !ok {
			return Null(), fmt.Errorf("ocl: unary minus applied to %s", v)
		}
		return Int(-i), nil
	}
	return Null(), fmt.Errorf("ocl: unknown unary operator %q", n.op)
}

func evalBinary(n *binaryExpr, en *env) (Value, error) {
	left, err := eval(n.left, en)
	if err != nil {
		return Null(), err
	}
	// Short-circuit boolean operators.
	switch n.op {
	case "and", "or", "implies":
		lb, ok := left.AsBool()
		if !ok {
			return Null(), fmt.Errorf("ocl: %s applied to %s", n.op, left)
		}
		switch {
		case n.op == "and" && !lb:
			return Bool(false), nil
		case n.op == "or" && lb:
			return Bool(true), nil
		case n.op == "implies" && !lb:
			return Bool(true), nil
		}
		right, err := eval(n.right, en)
		if err != nil {
			return Null(), err
		}
		rb, ok := right.AsBool()
		if !ok {
			return Null(), fmt.Errorf("ocl: %s applied to %s", n.op, right)
		}
		return Bool(rb), nil
	}

	right, err := eval(n.right, en)
	if err != nil {
		return Null(), err
	}
	switch n.op {
	case "xor":
		lb, ok1 := left.AsBool()
		rb, ok2 := right.AsBool()
		if !ok1 || !ok2 {
			return Null(), fmt.Errorf("ocl: xor applied to %s, %s", left, right)
		}
		return Bool(lb != rb), nil
	case "=":
		return Bool(Equal(left, right)), nil
	case "<>":
		return Bool(!Equal(left, right)), nil
	case "<", "<=", ">", ">=":
		return compare(n.op, left, right)
	case "+":
		if ls, ok := left.AsString(); ok {
			rs, ok := right.AsString()
			if !ok {
				return Null(), fmt.Errorf("ocl: + applied to %s, %s", left, right)
			}
			return String(ls + rs), nil
		}
		fallthrough
	case "-", "*", "/":
		li, ok1 := left.AsInt()
		ri, ok2 := right.AsInt()
		if !ok1 || !ok2 {
			return Null(), fmt.Errorf("ocl: %s applied to %s, %s", n.op, left, right)
		}
		switch n.op {
		case "+":
			return Int(li + ri), nil
		case "-":
			return Int(li - ri), nil
		case "*":
			return Int(li * ri), nil
		case "/":
			if ri == 0 {
				return Null(), fmt.Errorf("ocl: division by zero")
			}
			return Int(li / ri), nil
		}
	}
	return Null(), fmt.Errorf("ocl: unknown binary operator %q", n.op)
}

func compare(op string, left, right Value) (Value, error) {
	var cmp int
	if li, ok := left.AsInt(); ok {
		ri, ok := right.AsInt()
		if !ok {
			return Null(), fmt.Errorf("ocl: %s applied to %s, %s", op, left, right)
		}
		cmp = li - ri
	} else if ls, ok := left.AsString(); ok {
		rs, ok := right.AsString()
		if !ok {
			return Null(), fmt.Errorf("ocl: %s applied to %s, %s", op, left, right)
		}
		cmp = strings.Compare(ls, rs)
	} else {
		return Null(), fmt.Errorf("ocl: %s applied to %s, %s", op, left, right)
	}
	switch op {
	case "<":
		return Bool(cmp < 0), nil
	case "<=":
		return Bool(cmp <= 0), nil
	case ">":
		return Bool(cmp > 0), nil
	case ">=":
		return Bool(cmp >= 0), nil
	}
	return Null(), fmt.Errorf("ocl: unknown comparison %q", op)
}
