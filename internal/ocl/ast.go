package ocl

import "fmt"

// expr is a parsed OCL expression node.
type expr interface {
	exprNode()
}

type (
	// literalExpr is an int, string, bool or null literal.
	literalExpr struct {
		value Value
	}
	// selfExpr references the context object.
	selfExpr struct{}
	// identExpr references an iterator variable (or, as a fallback, a
	// property of self — OCL's implicit self).
	identExpr struct {
		name string
	}
	// propertyExpr navigates obj.name; over collections it performs
	// OCL's implicit collect.
	propertyExpr struct {
		target expr
		name   string
	}
	// callExpr invokes a dot operation: obj.op(args...), e.g.
	// 'x'.concat('y'), s.size().
	callExpr struct {
		target expr
		name   string
		args   []expr
	}
	// arrowExpr invokes a collection operation: coll->op(args...),
	// e.g. c->size(), c->includes(v).
	arrowExpr struct {
		target expr
		name   string
		args   []expr
	}
	// iterateExpr invokes an iterator operation with a body:
	// coll->select(v | body).
	iterateExpr struct {
		target expr
		name   string
		// varName may be empty for the anonymous form
		// coll->exists(body).
		varName string
		body    expr
	}
	// unaryExpr is 'not' or unary minus.
	unaryExpr struct {
		op      string
		operand expr
	}
	// binaryExpr covers boolean, comparison and arithmetic operators.
	binaryExpr struct {
		op          string
		left, right expr
	}
	// ifExpr is if-then-else-endif.
	ifExpr struct {
		cond, thenE, elseE expr
	}
	// letExpr is let v = value in body.
	letExpr struct {
		varName string
		value   expr
		body    expr
	}
	// collectionExpr is a Set{...}/Sequence{...}/Bag{...} literal. Set
	// deduplicates its elements.
	collectionExpr struct {
		dedupe   bool
		elements []expr
	}
)

func (*literalExpr) exprNode()    {}
func (*selfExpr) exprNode()       {}
func (*identExpr) exprNode()      {}
func (*propertyExpr) exprNode()   {}
func (*callExpr) exprNode()       {}
func (*arrowExpr) exprNode()      {}
func (*iterateExpr) exprNode()    {}
func (*unaryExpr) exprNode()      {}
func (*binaryExpr) exprNode()     {}
func (*ifExpr) exprNode()         {}
func (*letExpr) exprNode()        {}
func (*collectionExpr) exprNode() {}

// Expression is a compiled, reusable OCL expression.
type Expression struct {
	src  string
	root expr
}

// Source returns the original expression text.
func (e *Expression) Source() string { return e.src }

// String implements fmt.Stringer.
func (e *Expression) String() string { return e.src }

// iteratorOps are the collection operations taking a body expression.
var iteratorOps = map[string]bool{
	"select": true, "reject": true, "collect": true,
	"exists": true, "forAll": true, "one": true, "any": true,
}

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse compiles an OCL expression.
func Parse(src string) (*Expression, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errorf(t, "unexpected trailing input %q", t.text)
	}
	return &Expression{src: src, root: root}, nil
}

// MustParse is Parse that panics on error, for static constraint tables.
func MustParse(src string) *Expression {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("ocl: %s at offset %d in %q", fmt.Sprintf(format, args...), t.pos, p.src)
}

func (p *parser) acceptOp(text string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	t := p.peek()
	if t.kind == tokOp && t.text == text {
		p.pos++
		return nil
	}
	return p.errorf(t, "expected %q, found %q", text, t.text)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind == tokIdent && t.text == kw {
		p.pos++
		return nil
	}
	return p.errorf(t, "expected %q, found %q", kw, t.text)
}

// parseExpr := implies (lowest precedence)
func (p *parser) parseExpr() (expr, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("implies") {
		right, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "implies", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptKeyword("or"):
			op = "or"
		case p.acceptKeyword("xor"):
			op = "xor"
		default:
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.acceptKeyword("not") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "not", operand: operand}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &binaryExpr{op: t.text, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: t.text, left: left, right: right}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: t.text, left: left, right: right}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.acceptOp("-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", operand: operand}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("."):
			name, args, hasArgs, err := p.parseMember()
			if err != nil {
				return nil, err
			}
			if hasArgs {
				e = &callExpr{target: e, name: name, args: args}
			} else {
				e = &propertyExpr{target: e, name: name}
			}
		case p.acceptOp("->"):
			next, err := p.parseArrow(e)
			if err != nil {
				return nil, err
			}
			e = next
		default:
			return e, nil
		}
	}
}

// parseMember parses an identifier optionally followed by an argument
// list, after a '.'.
func (p *parser) parseMember() (string, []expr, bool, error) {
	t := p.advance()
	if t.kind != tokIdent || keywords[t.text] {
		return "", nil, false, p.errorf(t, "expected member name, found %q", t.text)
	}
	if !p.acceptOp("(") {
		return t.text, nil, false, nil
	}
	args, err := p.parseArgs()
	if err != nil {
		return "", nil, false, err
	}
	return t.text, args, true, nil
}

// parseArrow parses a collection operation after '->'.
func (p *parser) parseArrow(target expr) (expr, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return nil, p.errorf(t, "expected collection operation, found %q", t.text)
	}
	name := t.text
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if iteratorOps[name] {
		// Optional iterator variable: ident '|' body.
		varName := ""
		if v := p.peek(); v.kind == tokIdent && !keywords[v.text] {
			if bar := p.toks[p.pos+1]; bar.kind == tokOp && bar.text == "|" {
				varName = v.text
				p.pos += 2
			}
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &iterateExpr{target: target, name: name, varName: varName, body: body}, nil
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	return &arrowExpr{target: target, name: name, args: args}, nil
}

// parseArgs parses a possibly empty comma-separated argument list and the
// closing parenthesis.
func (p *parser) parseArgs() ([]expr, error) {
	if p.acceptOp(")") {
		return nil, nil
	}
	var args []expr
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.pos++
		n := 0
		for _, c := range t.text {
			n = n*10 + int(c-'0')
		}
		return &literalExpr{value: Int(n)}, nil
	case tokString:
		p.pos++
		return &literalExpr{value: String(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.pos++
			return &literalExpr{value: Bool(true)}, nil
		case "false":
			p.pos++
			return &literalExpr{value: Bool(false)}, nil
		case "null":
			p.pos++
			return &literalExpr{value: Null()}, nil
		case "self":
			p.pos++
			return &selfExpr{}, nil
		case "let":
			p.pos++
			v := p.advance()
			if v.kind != tokIdent || keywords[v.text] {
				return nil, p.errorf(v, "expected variable name after let, found %q", v.text)
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			value, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("in"); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &letExpr{varName: v.text, value: value, body: body}, nil
		case "if":
			p.pos++
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("then"); err != nil {
				return nil, err
			}
			thenE, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("else"); err != nil {
				return nil, err
			}
			elseE, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("endif"); err != nil {
				return nil, err
			}
			return &ifExpr{cond: cond, thenE: thenE, elseE: elseE}, nil
		case "Set", "Sequence", "Bag":
			if next := p.toks[p.pos+1]; next.kind == tokOp && next.text == "{" {
				p.pos += 2
				lit := &collectionExpr{dedupe: t.text == "Set"}
				if p.acceptOp("}") {
					return lit, nil
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					lit.elements = append(lit.elements, e)
					if p.acceptOp(",") {
						continue
					}
					if err := p.expectOp("}"); err != nil {
						return nil, err
					}
					return lit, nil
				}
			}
			p.pos++
			return &identExpr{name: t.text}, nil
		default:
			if keywords[t.text] {
				return nil, p.errorf(t, "unexpected keyword %q", t.text)
			}
			p.pos++
			return &identExpr{name: t.text}, nil
		}
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf(t, "unexpected token %q", t.text)
}
