package ocl

import (
	"testing"
	"testing/quick"
)

// mapObject is a test Object backed by a map.
type mapObject struct {
	typeName string
	props    map[string]Value
}

func (o *mapObject) OCLProperty(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

func (o *mapObject) OCLTypeName() string { return o.typeName }

// newCDT builds a test object shaped like a stereotyped CDT class: one
// CON attribute and several SUP attributes.
func newCDT() *mapObject {
	attr := func(name, stereotype string) Value {
		return Obj(&mapObject{typeName: "Attribute", props: map[string]Value{
			"name":       String(name),
			"stereotype": String(stereotype),
		}})
	}
	return &mapObject{typeName: "Class", props: map[string]Value{
		"name":       String("Code"),
		"stereotype": String("CDT"),
		"attributes": Coll(
			attr("Content", "CON"),
			attr("CodeListAgName", "SUP"),
			attr("CodeListName", "SUP"),
			attr("CodeListSchemeURI", "SUP"),
			attr("LanguageIdentifier", "SUP"),
		),
	}}
}

func evalOn(t *testing.T, src string, self Object) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(self)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"10 / 3", Int(3)},
		{"10 - 4 - 3", Int(3)},
		{"-5 + 2", Int(-3)},
		{"'a'.concat('b')", String("ab")},
		{"'a' + 'b'", String("ab")},
		{"'Hello'.size()", Int(5)},
		{"'Hello'.toUpperCase()", String("HELLO")},
		{"'Hello'.toLowerCase()", String("hello")},
		{"'Hello'.startsWith('He')", Bool(true)},
		{"'Hello'.endsWith('lo')", Bool(true)},
		{"'Hello'.contains('ell')", Bool(true)},
		{"(-7).abs()", Int(7)},
		{"true and false", Bool(false)},
		{"true or false", Bool(true)},
		{"true xor true", Bool(false)},
		{"not false", Bool(true)},
		{"false implies false", Bool(true)},
		{"true implies false", Bool(false)},
		{"1 < 2", Bool(true)},
		{"2 <= 2", Bool(true)},
		{"3 > 4", Bool(false)},
		{"'a' < 'b'", Bool(true)},
		{"'b' >= 'b'", Bool(true)},
		{"1 = 1", Bool(true)},
		{"1 <> 2", Bool(true)},
		{"'x' = 'x'", Bool(true)},
		{"null.oclIsUndefined()", Bool(true)},
		{"'x'.oclIsUndefined()", Bool(false)},
		{"if 1 < 2 then 'yes' else 'no' endif", String("yes")},
		{"if 1 > 2 then 'yes' else 'no' endif", String("no")},
	}
	for _, c := range cases {
		if got := evalOn(t, c.src, nil); !Equal(got, c.want) {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestNavigationAndIterators(t *testing.T) {
	cdt := newCDT()
	cases := []struct {
		src  string
		want Value
	}{
		{"self.name", String("Code")},
		{"self.stereotype = 'CDT'", Bool(true)},
		{"self.attributes->size()", Int(5)},
		{"self.attributes->isEmpty()", Bool(false)},
		{"self.attributes->notEmpty()", Bool(true)},
		// The profile's canonical CDT constraint: exactly one CON.
		{"self.attributes->select(a | a.stereotype = 'CON')->size() = 1", Bool(true)},
		{"self.attributes->select(a | a.stereotype = 'SUP')->size()", Int(4)},
		{"self.attributes->reject(a | a.stereotype = 'SUP')->size()", Int(1)},
		{"self.attributes->forAll(a | a.stereotype = 'CON' or a.stereotype = 'SUP')", Bool(true)},
		{"self.attributes->exists(a | a.name = 'CodeListName')", Bool(true)},
		{"self.attributes->exists(a | a.name = 'Bogus')", Bool(false)},
		{"self.attributes->one(a | a.stereotype = 'CON')", Bool(true)},
		{"self.attributes->one(a | a.stereotype = 'SUP')", Bool(false)},
		{"self.attributes->any(a | a.stereotype = 'CON').name", String("Content")},
		{"self.attributes->collect(a | a.name)->first()", String("Content")},
		{"self.attributes->collect(a | a.name)->last()", String("LanguageIdentifier")},
		// Implicit collect: .name over the attribute collection.
		{"self.attributes.name->includes('CodeListAgName')", Bool(true)},
		{"self.attributes.name->excludes('Bogus')", Bool(true)},
		{"self.attributes.stereotype->count('SUP')", Int(4)},
		{"self.attributes.stereotype->asSet()->size()", Int(2)},
		// Anonymous iterator bodies resolve against the element.
		{"self.attributes->select(stereotype = 'SUP')->size()", Int(4)},
		{"self.attributes->exists(name = 'Content')", Bool(true)},
		// Implicit self: bare property name.
		{"name", String("Code")},
		{"stereotype = 'CDT'", Bool(true)},
		// Arrow on a scalar treats it as a singleton set.
		{"self.name->size()", Int(1)},
		{"self.bogusNav", Null()}, // wait: unknown property must error
	}
	for _, c := range cases[:len(cases)-1] {
		if got := evalOn(t, c.src, cdt); !Equal(got, c.want) {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
	// Unknown property is an evaluation error.
	e := MustParse("self.bogusNav")
	if _, err := e.Eval(cdt); err == nil {
		t.Error("navigation to unknown property should fail")
	}
}

func TestArrowOnNullIsEmpty(t *testing.T) {
	obj := &mapObject{typeName: "X", props: map[string]Value{"basedOn": Null()}}
	if got := evalOn(t, "self.basedOn->size()", obj); !Equal(got, Int(0)) {
		t.Errorf("null->size() = %s, want 0", got)
	}
	if got := evalOn(t, "self.basedOn->isEmpty()", obj); !Equal(got, Bool(true)) {
		t.Errorf("null->isEmpty() = %s", got)
	}
	// Navigation through null propagates null (no error).
	if got := evalOn(t, "self.basedOn.name", obj); !got.IsNull() {
		t.Errorf("null.name = %s, want null", got)
	}
}

func TestSumAndCollectFlatten(t *testing.T) {
	inner := func(vals ...Value) Value {
		return Obj(&mapObject{typeName: "Row", props: map[string]Value{"items": Coll(vals...)}})
	}
	obj := &mapObject{typeName: "Table", props: map[string]Value{
		"rows": Coll(inner(Int(1), Int(2)), inner(Int(3))),
	}}
	if got := evalOn(t, "self.rows.items->sum()", obj); !Equal(got, Int(6)) {
		t.Errorf("flattened sum = %s, want 6", got)
	}
	if got := evalOn(t, "self.rows->collect(r | r.items)->size()", obj); !Equal(got, Int(3)) {
		t.Errorf("collect flatten size = %s, want 3", got)
	}
}

func TestEvalBool(t *testing.T) {
	cdt := newCDT()
	e := MustParse("self.attributes->size() = 5")
	ok, err := e.EvalBool(cdt)
	if err != nil || !ok {
		t.Errorf("EvalBool = %v, %v", ok, err)
	}
	notBool := MustParse("self.name")
	if _, err := notBool.EvalBool(cdt); err == nil {
		t.Error("EvalBool on string result should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1 + 2",
		"self.",
		"self->",
		"self.attributes->select(a | )",
		"'unterminated",
		"if true then 1 else 2", // missing endif
		"if true 1 else 2 endif",
		"1 ~ 2",
		"self..name",
		"x,",
		"self.attributes->select a",
		"then",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cdt := newCDT()
	bad := []string{
		"1 and true",
		"true and 1",
		"1 or false",
		"1 xor 2",
		"not 1",
		"-'x'",
		"1 < 'a'",
		"'a' <= 1",
		"1 + 'a'",
		"'a' + 1",
		"1 / 0",
		"self.attributes->sum()",
		"self.attributes->bogusOp()",
		"self.attributes->select(a | a.name)", // non-boolean body
		"self.attributes->includes()",         // missing arg
		"self.attributes->excludes()",         // missing arg
		"self.attributes->count()",            // missing arg
		"'x'.bogusCall()",
		"self.name.concat(1)",
		"if 1 then 2 else 3 endif",
		"true implies 1",
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) unexpectedly failed: %v", src, err)
			continue
		}
		if _, err := e.Eval(cdt); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestLetAndCollectionLiterals(t *testing.T) {
	cdt := newCDT()
	cases := []struct {
		src  string
		want Value
	}{
		{"let n = 3 in n * n", Int(9)},
		{"let s = 'ab' in s.concat(s)", String("abab")},
		{"let sups = self.attributes->select(a | a.stereotype = 'SUP') in sups->size()", Int(4)},
		// Nested lets and shadowing.
		{"let x = 1 in let y = x + 1 in x + y", Int(3)},
		{"let x = 1 in let x = 2 in x", Int(2)},
		// Collection literals.
		{"Set{1, 2, 2, 3}->size()", Int(3)},
		{"Sequence{1, 2, 2, 3}->size()", Int(4)},
		{"Bag{1, 2, 2}->size()", Int(3)},
		{"Set{}->isEmpty()", Bool(true)},
		{"Set{'a', 'b'}->includes('a')", Bool(true)},
		{"Sequence{3, 1, 2}->at(2)", Int(1)},
		// Set operations.
		{"Set{1, 2}->union(Set{2, 3})->asSet()->size()", Int(3)},
		{"Sequence{1, 2, 3}->intersection(Sequence{2, 3, 4})->size()", Int(2)},
		{"Sequence{1}->including(2)->size()", Int(2)},
		{"Sequence{1, 2, 1}->excluding(1)->size()", Int(1)},
		// The profile idiom: stereotype membership via a literal set.
		{"Set{'CON', 'SUP'}->includes('CON')", Bool(true)},
		{"self.attributes->forAll(a | Set{'CON', 'SUP'}->includes(a.stereotype))", Bool(true)},
	}
	for _, c := range cases {
		if got := evalOn(t, c.src, cdt); !Equal(got, c.want) {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
	// A plain identifier named Set (no brace) is still an identifier.
	obj := &mapObject{typeName: "X", props: map[string]Value{"Set": Int(7)}}
	if got := evalOn(t, "Set + 1", obj); !Equal(got, Int(8)) {
		t.Errorf("bare Set ident = %s", got)
	}
}

func TestLetAndLiteralErrors(t *testing.T) {
	for _, src := range []string{
		"let = 3 in 1",
		"let x 3 in 1",
		"let x = 3 1",
		"let in = 3 in 1",
		"Set{1,}",
		"Set{1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	for _, src := range []string{
		"Sequence{1}->at(0)",
		"Sequence{1}->at(5)",
		"Sequence{1}->at('x')",
		"Sequence{1}->union()",
		"Sequence{1}->intersection()",
		"Sequence{1}->including()",
		"Sequence{1}->excluding()",
	} {
		e := MustParse(src)
		if _, err := e.Eval(nil); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Int(42), "42"},
		{String("hi"), `"hi"`},
		{Coll(Int(1), Int(2)), "Collection{1, 2}"},
		{Obj(&mapObject{typeName: "Class"}), "Class"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestEqualCollections(t *testing.T) {
	a := Coll(Int(1), String("x"))
	b := Coll(Int(1), String("x"))
	if !Equal(a, b) {
		t.Error("structurally equal collections must be Equal")
	}
	if Equal(a, Coll(Int(1))) {
		t.Error("different lengths must differ")
	}
	if Equal(a, Coll(Int(1), String("y"))) {
		t.Error("different elements must differ")
	}
	if Equal(Int(1), String("1")) {
		t.Error("different kinds must differ")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestIntLiteralRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		e, err := Parse(Int(int(n)).String())
		if err != nil {
			return false
		}
		v, err := e.Eval(nil)
		return err == nil && Equal(v, Int(int(n)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// not (a and b) = (not a) or (not b) for all boolean pairs.
	f := func(a, b bool) bool {
		lit := func(v bool) string {
			if v {
				return "true"
			}
			return "false"
		}
		lhs := evalQuick(t, "not ("+lit(a)+" and "+lit(b)+")")
		rhs := evalQuick(t, "(not "+lit(a)+") or (not "+lit(b)+")")
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func evalQuick(t *testing.T, src string) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestExpressionSource(t *testing.T) {
	src := "self.attributes->size() = 5"
	e := MustParse(src)
	if e.Source() != src || e.String() != src {
		t.Errorf("Source/String = %q, %q", e.Source(), e.String())
	}
}

func TestNestedIterators(t *testing.T) {
	cdt := newCDT()
	// Nested iteration with distinct variables.
	src := "self.attributes->forAll(a | self.attributes->select(b | b.name = a.name)->size() = 1)"
	if got := evalOn(t, src, cdt); !Equal(got, Bool(true)) {
		t.Errorf("unique names check = %s", got)
	}
	if got := evalOn(t, "self.attributes->exists(a | self.attributes->exists(b | a.name < b.name))", cdt); !Equal(got, Bool(true)) {
		t.Errorf("nested exists = %s", got)
	}
}

func TestStringsWithEscapes(t *testing.T) {
	if got := evalOn(t, `'it\'s'`, nil); !Equal(got, String("it's")) {
		t.Errorf("escape = %s", got)
	}
}
