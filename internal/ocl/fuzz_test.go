package ocl

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser, and
// that anything that parses also evaluates (or errors) without panicking
// against an empty context.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"self.attributes->select(a | a.stereotype = 'CON')->size() = 1",
		"let kinds = Set{'A', 'B'} in kinds->includes(self.stereotype)",
		"if 1 < 2 then 'yes' else 'no' endif",
		"not self.baseURN.oclIsUndefined() and self.baseURN <> ''",
		"1 + 2 * (3 - 4) / 5",
		"'str'.concat('ing').toUpperCase()",
		"Sequence{1, 2, 3}->union(Set{})->sum()",
		"self.x->forAll(a | a.y->exists(b | b = a))",
		"((((",
		"-> -> ->",
		"'unterminated",
		"\x00\xff",
		// Limit-edge seeds: pathological nesting and an oversized token.
		strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500),
		"'" + strings.Repeat("x", 1<<16) + "'",
		strings.Repeat("self.", 1000) + "x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parsed must evaluate without panicking.
		_, _ = expr.Eval(nil)
		// And the source accessor reflects the input.
		if expr.Source() != src {
			t.Errorf("Source() = %q, want %q", expr.Source(), src)
		}
	})
}
