package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/go-ccts/ccts/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeCacheHit-8    	   13180	     91999 ns/op	 271.32 MB/s	  186391 B/op	     141 allocs/op
BenchmarkServeCacheMiss     	     424	   2773067 ns/op	    9.00 MB/s
BenchmarkServeValidate      	     685	   1871098 ns/op
PASS
ok  	github.com/go-ccts/ccts/internal/server	3.621s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("header = %s/%s", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/go-ccts/ccts/internal/server" {
		t.Errorf("pkg = %q", doc.Pkg)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	hit := doc.Benchmarks[0]
	if hit.Name != "BenchmarkServeCacheHit" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", hit.Name)
	}
	if hit.Runs != 13180 || hit.NsPerOp != 91999 || hit.MBPerS != 271.32 {
		t.Errorf("hit = %+v", hit)
	}
	if hit.BytesPerOp != 186391 || hit.AllocsPerOp != 141 {
		t.Errorf("memstats = %+v", hit)
	}
	if v := doc.Benchmarks[2]; v.Runs != 685 || v.BytesPerOp != 0 {
		t.Errorf("validate = %+v", v)
	}
}

func TestParseRejectsMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken notanumber ns/op\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestLastDash(t *testing.T) {
	if got := lastDash("BenchmarkX-8"); got != "8" {
		t.Errorf("lastDash = %q", got)
	}
	if got := lastDash("BenchmarkX-extra"); got == "extra" {
		t.Error("non-numeric suffix treated as GOMAXPROCS")
	}
}
