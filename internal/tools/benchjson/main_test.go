package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/go-ccts/ccts/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeCacheHit-8    	   13180	     91999 ns/op	 271.32 MB/s	  186391 B/op	     141 allocs/op
BenchmarkServeCacheMiss     	     424	   2773067 ns/op	    9.00 MB/s
BenchmarkServeValidate      	     685	   1871098 ns/op
PASS
ok  	github.com/go-ccts/ccts/internal/server	3.621s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("header = %s/%s", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/go-ccts/ccts/internal/server" {
		t.Errorf("pkg = %q", doc.Pkg)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	hit := doc.Benchmarks[0]
	if hit.Name != "BenchmarkServeCacheHit" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", hit.Name)
	}
	if hit.Runs != 13180 || hit.NsPerOp != 91999 || hit.MBPerS != 271.32 {
		t.Errorf("hit = %+v", hit)
	}
	if hit.BytesPerOp != 186391 || hit.AllocsPerOp != 141 {
		t.Errorf("memstats = %+v", hit)
	}
	if v := doc.Benchmarks[2]; v.Runs != 685 || v.BytesPerOp != 0 {
		t.Errorf("validate = %+v", v)
	}
}

func TestParseCollapsesRepeatedRunsToBest(t *testing.T) {
	// A -count=3 run emits the same benchmark three times; the document
	// must carry one entry per name holding the fastest observation.
	doc, err := parse(strings.NewReader(`BenchmarkA-8 100 1500 ns/op 200 B/op 10 allocs/op
BenchmarkB-8 100 900 ns/op
BenchmarkA-8 120 1200 ns/op 180 B/op 9 allocs/op
BenchmarkA-8 90 1400 ns/op 210 B/op 11 allocs/op
BenchmarkB-8 100 950 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (deduped): %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	a, b := doc.Benchmarks[0], doc.Benchmarks[1]
	if a.Name != "BenchmarkA" || b.Name != "BenchmarkB" {
		t.Fatalf("first-appearance order lost: %q, %q", a.Name, b.Name)
	}
	if a.NsPerOp != 1200 || a.BytesPerOp != 180 || a.AllocsPerOp != 9 {
		t.Errorf("BenchmarkA best = %+v, want the whole 1200 ns/op observation", a)
	}
	if b.NsPerOp != 900 {
		t.Errorf("BenchmarkB best = %+v, want 900 ns/op", b)
	}
}

func TestParseRejectsMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken notanumber ns/op\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestCompare(t *testing.T) {
	baseline := `{"benchmarks": [
		{"name": "BenchmarkA", "runs": 100, "ns_per_op": 1000, "b_per_op": 4096, "allocs_per_op": 100},
		{"name": "BenchmarkB", "runs": 100, "ns_per_op": 2000},
		{"name": "BenchmarkGone", "runs": 100, "ns_per_op": 500}
	]}`
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, fresh *Doc, maxRegress float64) (bool, string) {
		t.Helper()
		var buf strings.Builder
		regressed, err := compare(&buf, path, fresh, maxRegress, 25, false)
		if err != nil {
			t.Fatal(err)
		}
		return regressed, buf.String()
	}

	t.Run("within threshold", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1050}, // +5%
			{Name: "BenchmarkB", NsPerOp: 1500}, // faster
		}}, 10)
		if regressed {
			t.Errorf("5%% slowdown flagged as regression:\n%s", out)
		}
		if !strings.Contains(out, "GONE  BenchmarkGone") {
			t.Errorf("missing-benchmark note absent:\n%s", out)
		}
	})

	t.Run("regression", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1200}, // +20%
			{Name: "BenchmarkB", NsPerOp: 2000},
		}}, 10)
		if !regressed {
			t.Errorf("20%% slowdown not flagged:\n%s", out)
		}
		if !strings.Contains(out, "SLOW  BenchmarkA") {
			t.Errorf("regressed benchmark not marked SLOW:\n%s", out)
		}
	})

	t.Run("new benchmark never fails", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkNew", NsPerOp: 9999},
		}}, 10)
		if regressed {
			t.Errorf("benchmark absent from the baseline failed the diff:\n%s", out)
		}
		if !strings.Contains(out, "NEW   BenchmarkNew") {
			t.Errorf("new benchmark not reported:\n%s", out)
		}
	})

	t.Run("alloc growth within threshold", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 120}, // +22%/+20%
		}}, 10)
		if regressed {
			t.Errorf("alloc growth inside the allowance flagged:\n%s", out)
		}
	})

	t.Run("allocs_per_op regression", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 130}, // +30%
		}}, 10)
		if !regressed {
			t.Errorf("30%% allocs/op growth not flagged:\n%s", out)
		}
		if !strings.Contains(out, "ALLOC BenchmarkA") || !strings.Contains(out, "allocs/op") {
			t.Errorf("alloc regression not reported:\n%s", out)
		}
	})

	t.Run("b_per_op regression", func(t *testing.T) {
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 8192, AllocsPerOp: 100}, // +100% bytes
		}}, 10)
		if !regressed {
			t.Errorf("doubled B/op not flagged:\n%s", out)
		}
		if !strings.Contains(out, "B/op") {
			t.Errorf("byte regression not reported:\n%s", out)
		}
	})

	t.Run("memory gate skipped without benchmem on either side", func(t *testing.T) {
		// BenchmarkB's baseline has no memory numbers; BenchmarkA's
		// fresh run omits them (no -benchmem). Neither may regress.
		regressed, out := run(t, &Doc{Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1000},
			{Name: "BenchmarkB", NsPerOp: 2000, BytesPerOp: 1 << 20, AllocsPerOp: 10000},
		}}, 10)
		if regressed {
			t.Errorf("unmeasured memory side treated as regression:\n%s", out)
		}
	})

	t.Run("empty run errors", func(t *testing.T) {
		if _, err := compare(io.Discard, path, &Doc{}, 10, 25, false); err == nil {
			t.Error("empty fresh run accepted")
		}
	})

	t.Run("missing baseline errors", func(t *testing.T) {
		if _, err := compare(io.Discard, filepath.Join(t.TempDir(), "nope.json"), &Doc{Benchmarks: []Result{{Name: "x"}}}, 10, 25, false); err == nil {
			t.Error("missing baseline file accepted")
		}
	})
}

func TestLastDash(t *testing.T) {
	if got := lastDash("BenchmarkX-8"); got != "8" {
		t.Errorf("lastDash = %q", got)
	}
	if got := lastDash("BenchmarkX-extra"); got == "extra" {
		t.Error("non-numeric suffix treated as GOMAXPROCS")
	}
}
