// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document, so benchmark runs (e.g. `make
// bench-serve`) leave a machine-readable record next to the repo's
// other BENCH_* artifacts.
//
// With -baseline it instead compares the fresh run against a committed
// BENCH_*.json document and exits non-zero when any benchmark regressed
// beyond the allowance: ns/op by more than -max-regress percent, or
// (when both sides recorded -benchmem numbers) allocs/op or B/op by
// more than -max-regress-alloc percent — `make bench-diff` uses this as
// an advisory perf gate. Allocation counts are far less noisy than
// wall time, so their gate is meaningful even on shared CI hardware.
//
// Usage:
//
//	go test -bench=. -benchmem ./pkg | go run ./internal/tools/benchjson -o BENCH.json
//	go test -bench=. -benchmem ./pkg | go run ./internal/tools/benchjson -baseline BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to compare against; exits non-zero on regression")
	maxRegress := flag.Float64("max-regress", 10, "allowed ns/op regression over the baseline, in percent")
	maxRegressAlloc := flag.Float64("max-regress-alloc", 25, "allowed allocs/op and B/op regression over the baseline, in percent")
	allocAdvisory := flag.Bool("alloc-advisory", false, "report allocs/op and B/op regressions without failing the comparison (ns/op still gates)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		regressed, err := compare(os.Stdout, *baseline, doc, *maxRegress, *maxRegressAlloc, *allocAdvisory)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(2)
		}
		return
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output, keeping benchmark lines and the
// goos/goarch/pkg/cpu header, and ignoring everything else (PASS, ok,
// log lines). Repeated lines for one benchmark (a `-count=N` run) are
// collapsed to the best observation — minimum ns/op — so both recorded
// baselines and gated comparisons measure the code, not the scheduler
// noise of a shared machine.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	doc.Benchmarks = bestOf(doc.Benchmarks)
	return doc, sc.Err()
}

// bestOf collapses repeated observations of one benchmark to the run
// with the lowest ns/op, preserving first-appearance order. The fastest
// run is the one with the least interference, so it is the closest
// measurement of the code itself.
func bestOf(results []Result) []Result {
	best := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		i, seen := best[r.Name]
		if !seen {
			best[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i] = r
		}
	}
	return out
}

// parseLine splits one benchmark result line, e.g.
//
//	BenchmarkServeCacheHit-8  13180  91999 ns/op  271.32 MB/s  186391 B/op  141 allocs/op
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	res := Result{Name: strings.TrimSuffix(fields[0], "-"+lastDash(fields[0]))}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchmark line %q: %w", line, err)
	}
	res.Runs = runs
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "MB/s":
			res.MBPerS, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return Result{}, fmt.Errorf("benchmark line %q: %w", line, err)
		}
	}
	return res, nil
}

// compare diffs a fresh run against a committed baseline document.
// Every benchmark present in both is compared on ns/op (allowance
// maxRegress percent) and, when both sides recorded -benchmem numbers,
// on allocs/op and B/op (allowance maxAlloc percent); growth beyond the
// allowance is a regression. Benchmarks that appear on only one side
// are reported but never fail the comparison — renames and new
// benchmarks should not block, they should prompt a baseline refresh.
// With allocAdvisory, memory regressions are reported but do not fail
// the comparison — the mode `make verify` runs in, where the enforced
// gate is ns/op and allocation drift is a warning. Returns whether any
// benchmark regressed (gating dimensions only).
func compare(w io.Writer, baselinePath string, fresh *Doc, maxRegress, maxAlloc float64, allocAdvisory bool) (bool, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseByName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	if len(fresh.Benchmarks) == 0 {
		return false, fmt.Errorf("no benchmark lines on stdin; pipe `go test -bench` output in")
	}

	regressed := false
	for _, r := range fresh.Benchmarks {
		old, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-40s %12.0f ns/op (not in %s)\n", r.Name, r.NsPerOp, baselinePath)
			continue
		}
		delete(baseByName, r.Name)
		if old.NsPerOp <= 0 {
			continue
		}
		deltaPct := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		status := "ok   "
		if deltaPct > maxRegress {
			status = "SLOW "
			regressed = true
		}
		fmt.Fprintf(w, "%s %-40s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			status, r.Name, old.NsPerOp, r.NsPerOp, deltaPct)
		// Memory gates apply only when both runs carried -benchmem
		// numbers: a zero on either side means "not measured" (or a
		// genuinely allocation-free benchmark, where growth from zero is
		// caught once the baseline is refreshed with the new counts).
		for _, m := range []struct {
			unit     string
			old, new int64
		}{
			{"allocs/op", old.AllocsPerOp, r.AllocsPerOp},
			{"B/op", old.BytesPerOp, r.BytesPerOp},
		} {
			if m.old <= 0 || m.new <= 0 {
				continue
			}
			memPct := float64(m.new-m.old) / float64(m.old) * 100
			if memPct > maxAlloc {
				if !allocAdvisory {
					regressed = true
				}
				fmt.Fprintf(w, "ALLOC %-40s %12d -> %12d %s (%+.1f%%)\n",
					r.Name, m.old, m.new, m.unit, memPct)
			}
		}
	}
	gone := make([]string, 0, len(baseByName))
	for name := range baseByName {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "GONE  %-40s (in %s but not in this run)\n", name, baselinePath)
	}
	if regressed {
		fmt.Fprintf(w, "benchjson: regression beyond the allowance (ns/op %.0f%%, allocs/B %.0f%%) against %s\n", maxRegress, maxAlloc, baselinePath)
	}
	return regressed, nil
}

// lastDash returns the GOMAXPROCS suffix of a benchmark name ("8" in
// "BenchmarkX-8"), or an impossible token when there is none.
func lastDash(name string) string {
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		suffix := name[i+1:]
		if _, err := strconv.Atoi(suffix); err == nil {
			return suffix
		}
	}
	return "\x00"
}
