// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document, so benchmark runs (e.g. `make
// bench-serve`) leave a machine-readable record next to the repo's
// other BENCH_* artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem ./pkg | go run ./internal/tools/benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output, keeping benchmark lines and the
// goos/goarch/pkg/cpu header, and ignoring everything else (PASS, ok,
// log lines).
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	return doc, sc.Err()
}

// parseLine splits one benchmark result line, e.g.
//
//	BenchmarkServeCacheHit-8  13180  91999 ns/op  271.32 MB/s  186391 B/op  141 allocs/op
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	res := Result{Name: strings.TrimSuffix(fields[0], "-"+lastDash(fields[0]))}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchmark line %q: %w", line, err)
	}
	res.Runs = runs
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "MB/s":
			res.MBPerS, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return Result{}, fmt.Errorf("benchmark line %q: %w", line, err)
		}
	}
	return res, nil
}

// lastDash returns the GOMAXPROCS suffix of a benchmark name ("8" in
// "BenchmarkX-8"), or an impossible token when there is none.
func lastDash(name string) string {
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		suffix := name[i+1:]
		if _, err := strconv.Atoi(suffix); err == nil {
			return suffix
		}
	}
	return "\x00"
}
