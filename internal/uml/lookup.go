package uml

import (
	"fmt"
	"strings"
)

// WalkPackages visits every package in the model in depth-first
// declaration order. Returning false from fn stops the walk.
func (m *Model) WalkPackages(fn func(*Package) bool) {
	var walk func(ps []*Package) bool
	walk = func(ps []*Package) bool {
		for _, p := range ps {
			if !fn(p) {
				return false
			}
			if !walk(p.Packages) {
				return false
			}
		}
		return true
	}
	walk(m.Packages)
}

// WalkClasses visits every class in the model in depth-first declaration
// order. Returning false from fn stops the walk.
func (m *Model) WalkClasses(fn func(*Class) bool) {
	m.WalkPackages(func(p *Package) bool {
		for _, c := range p.Classes {
			if !fn(c) {
				return false
			}
		}
		return true
	})
}

// WalkEnumerations visits every enumeration in the model.
func (m *Model) WalkEnumerations(fn func(*Enumeration) bool) {
	m.WalkPackages(func(p *Package) bool {
		for _, e := range p.Enumerations {
			if !fn(e) {
				return false
			}
		}
		return true
	})
}

// WalkAssociations visits every association in the model.
func (m *Model) WalkAssociations(fn func(*Association) bool) {
	m.WalkPackages(func(p *Package) bool {
		for _, a := range p.Associations {
			if !fn(a) {
				return false
			}
		}
		return true
	})
}

// WalkDependencies visits every dependency in the model.
func (m *Model) WalkDependencies(fn func(*Dependency) bool) {
	m.WalkPackages(func(p *Package) bool {
		for _, d := range p.Dependencies {
			if !fn(d) {
				return false
			}
		}
		return true
	})
}

// FindPackage locates a package by qualified (::-separated) or simple
// name. With a simple name, the first match in depth-first order wins.
func (m *Model) FindPackage(name string) *Package {
	var found *Package
	qualified := strings.Contains(name, "::")
	m.WalkPackages(func(p *Package) bool {
		if (qualified && p.QualifiedName() == name) || (!qualified && p.Name == name) {
			found = p
			return false
		}
		return true
	})
	return found
}

// FindClass locates a class by qualified or simple name.
func (m *Model) FindClass(name string) *Class {
	var found *Class
	qualified := strings.Contains(name, "::")
	m.WalkClasses(func(c *Class) bool {
		if (qualified && c.QualifiedName() == name) || (!qualified && c.Name == name) {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindEnumeration locates an enumeration by qualified or simple name.
func (m *Model) FindEnumeration(name string) *Enumeration {
	var found *Enumeration
	qualified := strings.Contains(name, "::")
	m.WalkEnumerations(func(e *Enumeration) bool {
		if (qualified && e.QualifiedName() == name) || (!qualified && e.Name == name) {
			found = e
			return false
		}
		return true
	})
	return found
}

// ResolveType resolves an attribute type name to a classifier (class or
// enumeration). Qualified names are matched against QualifiedName;
// simple names take the first match. Classes win over enumerations on a
// simple-name tie, matching how modeling tools bind attribute types.
func (m *Model) ResolveType(typeName string) (Classifier, error) {
	if typeName == "" {
		return nil, fmt.Errorf("uml: empty type name")
	}
	if c := m.FindClass(typeName); c != nil {
		return c, nil
	}
	if e := m.FindEnumeration(typeName); e != nil {
		return e, nil
	}
	return nil, fmt.Errorf("uml: unresolved type %q", typeName)
}

// DependenciesFrom returns all dependencies whose client is the given
// classifier, across the whole model.
func (m *Model) DependenciesFrom(client Classifier) []*Dependency {
	var out []*Dependency
	m.WalkDependencies(func(d *Dependency) bool {
		if d.Client == client {
			out = append(out, d)
		}
		return true
	})
	return out
}

// AssociationsFrom returns all associations whose source (whole end) is
// the given class, across the whole model, in declaration order.
func (m *Model) AssociationsFrom(src *Class) []*Association {
	var out []*Association
	m.WalkAssociations(func(a *Association) bool {
		if a.Source == src {
			out = append(out, a)
		}
		return true
	})
	return out
}

// Stats summarises the element counts of a model.
type Stats struct {
	Packages     int
	Classes      int
	Attributes   int
	Associations int
	Dependencies int
	Enumerations int
}

// Stats counts the elements in the model.
func (m *Model) Stats() Stats {
	var s Stats
	m.WalkPackages(func(p *Package) bool {
		s.Packages++
		s.Classes += len(p.Classes)
		for _, c := range p.Classes {
			s.Attributes += len(c.Attributes)
		}
		s.Associations += len(p.Associations)
		s.Dependencies += len(p.Dependencies)
		s.Enumerations += len(p.Enumerations)
		return true
	})
	return s
}
