// Package uml implements the subset of the UML2 metamodel needed to host
// the CCTS profile: hierarchical packages, classes with typed attributes,
// binary associations with aggregation kinds, dependencies, enumerations,
// stereotypes and tagged values.
//
// The package is deliberately generic: it knows nothing about CCTS. The
// CCTS semantics (which stereotypes exist, which tagged values are
// required, which OCL constraints apply) live in internal/profile. This
// mirrors the paper's architecture, where a plain UML tool repository is
// decorated by the "UML Profile for Core Components".
package uml

import (
	"fmt"
	"sort"
	"strings"
)

// Unbounded is the upper-bound value representing "*" in a multiplicity.
const Unbounded = -1

// Multiplicity is a UML multiplicity range such as 1, 0..1 or 0..*.
type Multiplicity struct {
	Lower int
	Upper int // Unbounded for "*"
}

// Common multiplicities.
var (
	One        = Multiplicity{1, 1}
	Optional   = Multiplicity{0, 1}
	Many       = Multiplicity{0, Unbounded}
	OneOrMore  = Multiplicity{1, Unbounded}
	ZeroExact  = Multiplicity{0, 0}
	defaultMul = One
)

// String renders the multiplicity in UML surface syntax.
func (m Multiplicity) String() string {
	if m.Upper == Unbounded {
		if m.Lower == 0 {
			return "0..*"
		}
		return fmt.Sprintf("%d..*", m.Lower)
	}
	if m.Lower == m.Upper {
		return fmt.Sprintf("%d", m.Lower)
	}
	return fmt.Sprintf("%d..%d", m.Lower, m.Upper)
}

// Valid reports whether the range is well-formed (lower >= 0 and upper >=
// lower, or unbounded).
func (m Multiplicity) Valid() bool {
	if m.Lower < 0 {
		return false
	}
	return m.Upper == Unbounded || m.Upper >= m.Lower
}

// Within reports whether m is a legal restriction of outer, i.e. every
// cardinality allowed by m is also allowed by outer. CCTS
// derivation-by-restriction requires BIE multiplicities to be within the
// corresponding CC multiplicities.
func (m Multiplicity) Within(outer Multiplicity) bool {
	if m.Lower < outer.Lower {
		return false
	}
	if outer.Upper == Unbounded {
		return true
	}
	return m.Upper != Unbounded && m.Upper <= outer.Upper
}

// ParseMultiplicity parses UML surface syntax: "1", "0..1", "0..*", "*",
// "2..5".
func ParseMultiplicity(s string) (Multiplicity, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return defaultMul, nil
	}
	if s == "*" {
		return Many, nil
	}
	parse := func(tok string) (int, error) {
		if tok == "*" {
			return Unbounded, nil
		}
		var n int
		if _, err := fmt.Sscanf(tok, "%d", &n); err != nil || n < 0 {
			return 0, fmt.Errorf("uml: invalid multiplicity bound %q", tok)
		}
		return n, nil
	}
	lo, hi, found := strings.Cut(s, "..")
	if !found {
		n, err := parse(s)
		if err != nil {
			return Multiplicity{}, err
		}
		if n == Unbounded {
			return Many, nil
		}
		return Multiplicity{n, n}, nil
	}
	lower, err := parse(lo)
	if err != nil || lower == Unbounded {
		return Multiplicity{}, fmt.Errorf("uml: invalid multiplicity %q", s)
	}
	upper, err := parse(hi)
	if err != nil {
		return Multiplicity{}, err
	}
	m := Multiplicity{lower, upper}
	if !m.Valid() {
		return Multiplicity{}, fmt.Errorf("uml: invalid multiplicity %q", s)
	}
	return m, nil
}

// TaggedValues holds the UML tagged values attached to an element. Keys
// are tag names (e.g. "baseURN", "businessTerm"). The zero value is ready
// to use.
type TaggedValues map[string]string

// Get returns the value for tag, or "" if absent.
func (tv TaggedValues) Get(tag string) string { return tv[tag] }

// Set assigns a tagged value, allocating the map if needed, and returns
// the (possibly new) map so callers can write tv = tv.Set(...).
func (tv *TaggedValues) Set(tag, value string) {
	if *tv == nil {
		*tv = make(TaggedValues)
	}
	(*tv)[tag] = value
}

// Has reports whether the tag is present (even if empty).
func (tv TaggedValues) Has(tag string) bool {
	_, ok := tv[tag]
	return ok
}

// Names returns the tag names in sorted order, for deterministic output.
func (tv TaggedValues) Names() []string {
	names := make([]string, 0, len(tv))
	for k := range tv {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the tagged values.
func (tv TaggedValues) Clone() TaggedValues {
	if tv == nil {
		return nil
	}
	out := make(TaggedValues, len(tv))
	for k, v := range tv {
		out[k] = v
	}
	return out
}

// AggregationKind distinguishes plain associations, shared aggregations
// (hollow diamond) and composite aggregations (filled diamond).
type AggregationKind int

const (
	// AggregationNone is a plain association.
	AggregationNone AggregationKind = iota
	// AggregationShared is a shared (hollow-diamond) aggregation. The
	// paper's Figure 7 connects Person_Identification to Address this way.
	AggregationShared
	// AggregationComposite is a composite (filled-diamond) aggregation,
	// the usual ASBIE connector in the paper's DOCLibrary example.
	AggregationComposite
)

// String names the aggregation kind in lower-case UML vocabulary.
func (k AggregationKind) String() string {
	switch k {
	case AggregationNone:
		return "none"
	case AggregationShared:
		return "shared"
	case AggregationComposite:
		return "composite"
	default:
		return fmt.Sprintf("AggregationKind(%d)", int(k))
	}
}

// ParseAggregationKind is the inverse of String.
func ParseAggregationKind(s string) (AggregationKind, error) {
	switch s {
	case "none", "":
		return AggregationNone, nil
	case "shared":
		return AggregationShared, nil
	case "composite":
		return AggregationComposite, nil
	}
	return AggregationNone, fmt.Errorf("uml: unknown aggregation kind %q", s)
}

// Classifier is implemented by the named, stereotyped, package-owned
// model elements that can participate in dependencies and be referenced
// as attribute types: Class and Enumeration.
type Classifier interface {
	ClassifierName() string
	ClassifierStereotype() string
	Owner() *Package
	QualifiedName() string
}

// Model is the root of a UML repository.
type Model struct {
	Name     string
	Packages []*Package
	Tags     TaggedValues
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{Name: name}
}

// AddPackage appends a new top-level package and returns it.
func (m *Model) AddPackage(name, stereotype string) *Package {
	p := &Package{Name: name, Stereotype: stereotype, model: m}
	m.Packages = append(m.Packages, p)
	return p
}

// Package is a UML package. In the CCTS profile, packages carry library
// stereotypes (CCLibrary, BIELibrary, DOCLibrary, ...) or the
// BusinessLibrary stereotype for grouping packages.
type Package struct {
	Name       string
	Stereotype string
	Tags       TaggedValues

	Packages     []*Package
	Classes      []*Class
	Enumerations []*Enumeration
	Associations []*Association
	Dependencies []*Dependency

	parent *Package
	model  *Model
}

// Parent returns the owning package, or nil for a top-level package.
func (p *Package) Parent() *Package { return p.parent }

// Model returns the repository root this package belongs to.
func (p *Package) Model() *Model {
	if p.model != nil {
		return p.model
	}
	if p.parent != nil {
		return p.parent.Model()
	}
	return nil
}

// QualifiedName returns the ::-separated path from the model root, e.g.
// "EasyBiz::CommonAggregates".
func (p *Package) QualifiedName() string {
	if p.parent == nil {
		return p.Name
	}
	return p.parent.QualifiedName() + "::" + p.Name
}

// AddPackage appends a nested package and returns it.
func (p *Package) AddPackage(name, stereotype string) *Package {
	child := &Package{Name: name, Stereotype: stereotype, parent: p}
	p.Packages = append(p.Packages, child)
	return child
}

// AddClass appends a class with the given stereotype and returns it.
func (p *Package) AddClass(name, stereotype string) *Class {
	c := &Class{Name: name, Stereotype: stereotype, owner: p}
	p.Classes = append(p.Classes, c)
	return c
}

// AddEnumeration appends an enumeration and returns it.
func (p *Package) AddEnumeration(name, stereotype string) *Enumeration {
	e := &Enumeration{Name: name, Stereotype: stereotype, owner: p}
	p.Enumerations = append(p.Enumerations, e)
	return e
}

// AddAssociation records a binary association owned by this package.
func (p *Package) AddAssociation(a *Association) *Association {
	a.owner = p
	p.Associations = append(p.Associations, a)
	return a
}

// AddDependency records a stereotyped dependency (client depends on
// supplier), e.g. a basedOn dependency from an ABIE to its ACC.
func (p *Package) AddDependency(stereotype string, client, supplier Classifier) *Dependency {
	d := &Dependency{Stereotype: stereotype, Client: client, Supplier: supplier, owner: p}
	p.Dependencies = append(p.Dependencies, d)
	return d
}

// Class is a UML class. In the profile it carries one of the classifier
// stereotypes: ACC, ABIE, CDT, QDT, PRIM (primitives are modelled as
// stereotyped classes without attributes).
type Class struct {
	Name       string
	Stereotype string
	Tags       TaggedValues
	Attributes []*Attribute

	owner *Package
}

// ClassifierName implements Classifier.
func (c *Class) ClassifierName() string { return c.Name }

// ClassifierStereotype implements Classifier.
func (c *Class) ClassifierStereotype() string { return c.Stereotype }

// Owner implements Classifier.
func (c *Class) Owner() *Package { return c.owner }

// QualifiedName returns the ::-separated path including the owning
// packages, e.g. "EasyBiz::CommonAggregates::Address".
func (c *Class) QualifiedName() string {
	if c.owner == nil {
		return c.Name
	}
	return c.owner.QualifiedName() + "::" + c.Name
}

// AddAttribute appends an attribute and returns it. typeName references a
// classifier by simple or qualified name; resolution happens via
// Model.ResolveType.
func (c *Class) AddAttribute(name, stereotype, typeName string, mult Multiplicity) *Attribute {
	a := &Attribute{Name: name, Stereotype: stereotype, TypeName: typeName, Mult: mult, owner: c}
	c.Attributes = append(c.Attributes, a)
	return a
}

// AttributesByStereotype returns the attributes carrying the given
// stereotype, in declaration order.
func (c *Class) AttributesByStereotype(st string) []*Attribute {
	var out []*Attribute
	for _, a := range c.Attributes {
		if a.Stereotype == st {
			out = append(out, a)
		}
	}
	return out
}

// Attribute is a UML property owned by a class. In the profile it carries
// BCC, BBIE, CON or SUP stereotypes.
type Attribute struct {
	Name       string
	Stereotype string
	TypeName   string
	Mult       Multiplicity
	Tags       TaggedValues

	owner *Class
}

// Owner returns the class owning this attribute.
func (a *Attribute) Owner() *Class { return a.owner }

// Association is a binary association between two classes. Source is the
// whole (diamond) end; Target is the part end that becomes an element in
// the generated schema. In the profile, associations carry ASCC or ASBIE
// stereotypes.
type Association struct {
	Stereotype string
	Source     *Class
	Target     *Class
	// TargetRole is the role name at the target end; the paper composes
	// ASBIE element names as role name + target ABIE name.
	TargetRole string
	// TargetMult is the multiplicity at the target end.
	TargetMult Multiplicity
	Kind       AggregationKind
	Tags       TaggedValues

	owner *Package
}

// Owner returns the package that owns the association.
func (a *Association) Owner() *Package { return a.owner }

// Dependency is a stereotyped UML dependency. The profile uses the
// basedOn stereotype to link BIEs to the core components they restrict
// and QDTs to their CDTs.
type Dependency struct {
	Stereotype string
	Client     Classifier
	Supplier   Classifier

	owner *Package
}

// Owner returns the package that owns the dependency.
func (d *Dependency) Owner() *Package { return d.owner }

// EnumLiteral is one value of an enumeration, e.g. AUT = "Austria".
type EnumLiteral struct {
	Name  string
	Value string
}

// Enumeration is a UML enumeration; in the profile it carries the ENUM
// stereotype and restricts QDT content components.
type Enumeration struct {
	Name       string
	Stereotype string
	Tags       TaggedValues
	Literals   []EnumLiteral

	owner *Package
}

// ClassifierName implements Classifier.
func (e *Enumeration) ClassifierName() string { return e.Name }

// ClassifierStereotype implements Classifier.
func (e *Enumeration) ClassifierStereotype() string { return e.Stereotype }

// Owner implements Classifier.
func (e *Enumeration) Owner() *Package { return e.owner }

// QualifiedName returns the ::-separated path including owning packages.
func (e *Enumeration) QualifiedName() string {
	if e.owner == nil {
		return e.Name
	}
	return e.owner.QualifiedName() + "::" + e.Name
}

// AddLiteral appends an enumeration literal and returns the enumeration
// for chaining.
func (e *Enumeration) AddLiteral(name, value string) *Enumeration {
	e.Literals = append(e.Literals, EnumLiteral{Name: name, Value: value})
	return e
}
