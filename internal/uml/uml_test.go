package uml

import (
	"testing"
	"testing/quick"
)

func TestMultiplicityString(t *testing.T) {
	cases := []struct {
		m    Multiplicity
		want string
	}{
		{One, "1"},
		{Optional, "0..1"},
		{Many, "0..*"},
		{OneOrMore, "1..*"},
		{Multiplicity{2, 5}, "2..5"},
		{Multiplicity{3, 3}, "3"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestParseMultiplicity(t *testing.T) {
	cases := []struct {
		in   string
		want Multiplicity
	}{
		{"1", One},
		{"0..1", Optional},
		{"0..*", Many},
		{"*", Many},
		{"1..*", OneOrMore},
		{"2..5", Multiplicity{2, 5}},
		{"", One},
		{" 0..1 ", Optional},
	}
	for _, c := range cases {
		got, err := ParseMultiplicity(c.in)
		if err != nil {
			t.Errorf("ParseMultiplicity(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMultiplicity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseMultiplicityErrors(t *testing.T) {
	for _, in := range []string{"x", "-1", "5..2", "*..1", "1..x", "1..-3"} {
		if _, err := ParseMultiplicity(in); err == nil {
			t.Errorf("ParseMultiplicity(%q): expected error", in)
		}
	}
}

func TestMultiplicityRoundTrip(t *testing.T) {
	f := func(lo uint8, hiRaw int8) bool {
		m := Multiplicity{Lower: int(lo), Upper: int(lo) + int(uint8(hiRaw))%7}
		if hiRaw%3 == 0 {
			m.Upper = Unbounded
		}
		if !m.Valid() {
			return true
		}
		back, err := ParseMultiplicity(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplicityWithin(t *testing.T) {
	cases := []struct {
		inner, outer Multiplicity
		want         bool
	}{
		{One, One, true},
		{One, Optional, true},
		{Optional, One, false},  // lowering the floor is not a restriction
		{Optional, Many, true},  // 0..1 within 0..*
		{Many, Optional, false}, // unbounded cannot fit a bounded outer
		{Multiplicity{2, 3}, Multiplicity{1, 5}, true},
		{Multiplicity{0, 3}, Multiplicity{1, 5}, false},
		{Multiplicity{2, 6}, Multiplicity{1, 5}, false},
		{OneOrMore, Many, true},
	}
	for _, c := range cases {
		if got := c.inner.Within(c.outer); got != c.want {
			t.Errorf("(%v).Within(%v) = %v, want %v", c.inner, c.outer, got, c.want)
		}
	}
}

func TestMultiplicityWithinReflexive(t *testing.T) {
	f := func(lo uint8, span uint8, unbounded bool) bool {
		m := Multiplicity{Lower: int(lo), Upper: int(lo) + int(span)}
		if unbounded {
			m.Upper = Unbounded
		}
		return m.Within(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaggedValues(t *testing.T) {
	var tv TaggedValues
	if tv.Has("x") {
		t.Error("zero TaggedValues should not have any tag")
	}
	tv.Set("baseURN", "urn:example")
	tv.Set("alpha", "1")
	if got := tv.Get("baseURN"); got != "urn:example" {
		t.Errorf("Get = %q", got)
	}
	if !tv.Has("alpha") {
		t.Error("expected alpha")
	}
	names := tv.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "baseURN" {
		t.Errorf("Names = %v, want sorted [alpha baseURN]", names)
	}
	clone := tv.Clone()
	clone.Set("alpha", "2")
	if tv.Get("alpha") != "1" {
		t.Error("Clone must be independent")
	}
	var nilTV TaggedValues
	if nilTV.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func buildSampleModel() *Model {
	m := NewModel("Test")
	biz := m.AddPackage("EasyBiz", "BusinessLibrary")
	cc := biz.AddPackage("CandidateCoreComponents", "CCLibrary")
	bie := biz.AddPackage("CommonAggregates", "BIELibrary")

	person := cc.AddClass("Person", "ACC")
	person.AddAttribute("DateofBirth", "BCC", "Date", One)
	person.AddAttribute("FirstName", "BCC", "Text", One)
	address := cc.AddClass("Address", "ACC")
	address.AddAttribute("Country", "BCC", "Country_Code", One)
	address.AddAttribute("PostalCode", "BCC", "Text", One)
	address.AddAttribute("Street", "BCC", "Text", One)
	cc.AddAssociation(&Association{
		Stereotype: "ASCC", Source: person, Target: address,
		TargetRole: "Private", TargetMult: One, Kind: AggregationComposite,
	})
	cc.AddAssociation(&Association{
		Stereotype: "ASCC", Source: person, Target: address,
		TargetRole: "Work", TargetMult: One, Kind: AggregationComposite,
	})

	usPerson := bie.AddClass("US_Person", "ABIE")
	usPerson.AddAttribute("DateofBirth", "BBIE", "Date", One)
	bie.AddDependency("basedOn", usPerson, person)
	return m
}

func TestModelBuildAndLookup(t *testing.T) {
	m := buildSampleModel()

	if p := m.FindPackage("CommonAggregates"); p == nil || p.Stereotype != "BIELibrary" {
		t.Fatalf("FindPackage simple name failed: %v", p)
	}
	if p := m.FindPackage("EasyBiz::CandidateCoreComponents"); p == nil {
		t.Fatal("FindPackage qualified name failed")
	}
	if p := m.FindPackage("Nope"); p != nil {
		t.Error("FindPackage should return nil for missing package")
	}

	person := m.FindClass("Person")
	if person == nil {
		t.Fatal("FindClass Person failed")
	}
	if got := person.QualifiedName(); got != "EasyBiz::CandidateCoreComponents::Person" {
		t.Errorf("QualifiedName = %q", got)
	}
	if c := m.FindClass("EasyBiz::CandidateCoreComponents::Address"); c == nil {
		t.Error("FindClass qualified failed")
	}
	if c := m.FindClass("Missing"); c != nil {
		t.Error("FindClass should return nil for missing class")
	}

	bccs := person.AttributesByStereotype("BCC")
	if len(bccs) != 2 {
		t.Errorf("Person BCCs = %d, want 2", len(bccs))
	}
	if person.AttributesByStereotype("SUP") != nil {
		t.Error("expected no SUP attributes")
	}

	asccs := m.AssociationsFrom(person)
	if len(asccs) != 2 {
		t.Fatalf("AssociationsFrom(Person) = %d, want 2", len(asccs))
	}
	if asccs[0].TargetRole != "Private" || asccs[1].TargetRole != "Work" {
		t.Errorf("association order not preserved: %q, %q", asccs[0].TargetRole, asccs[1].TargetRole)
	}

	usPerson := m.FindClass("US_Person")
	deps := m.DependenciesFrom(usPerson)
	if len(deps) != 1 || deps[0].Supplier != person {
		t.Errorf("DependenciesFrom(US_Person) = %v", deps)
	}
	if m.DependenciesFrom(person) != nil {
		t.Error("Person should have no outgoing dependencies")
	}
}

func TestModelStats(t *testing.T) {
	m := buildSampleModel()
	s := m.Stats()
	want := Stats{Packages: 3, Classes: 3, Attributes: 6, Associations: 2, Dependencies: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestWalkStops(t *testing.T) {
	m := buildSampleModel()
	count := 0
	m.WalkClasses(func(*Class) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("walk visited %d classes after stop, want 2", count)
	}
	pcount := 0
	m.WalkPackages(func(*Package) bool {
		pcount++
		return false
	})
	if pcount != 1 {
		t.Errorf("package walk visited %d, want 1", pcount)
	}
}

func TestResolveType(t *testing.T) {
	m := buildSampleModel()
	enumPkg := m.FindPackage("EasyBiz").AddPackage("EnumerationTypes", "ENUMLibrary")
	enumPkg.AddEnumeration("Country_Code", "ENUM").
		AddLiteral("AUT", "Austria").
		AddLiteral("USA", "United States of America")

	cl, err := m.ResolveType("Person")
	if err != nil || cl.ClassifierName() != "Person" {
		t.Errorf("ResolveType(Person) = %v, %v", cl, err)
	}
	en, err := m.ResolveType("Country_Code")
	if err != nil {
		t.Fatalf("ResolveType(Country_Code): %v", err)
	}
	if en.ClassifierStereotype() != "ENUM" {
		t.Errorf("stereotype = %q", en.ClassifierStereotype())
	}
	if en.QualifiedName() != "EasyBiz::EnumerationTypes::Country_Code" {
		t.Errorf("QualifiedName = %q", en.QualifiedName())
	}
	if _, err := m.ResolveType("Bogus"); err == nil {
		t.Error("expected error for unresolved type")
	}
	if _, err := m.ResolveType(""); err == nil {
		t.Error("expected error for empty type")
	}
}

func TestFindEnumeration(t *testing.T) {
	m := buildSampleModel()
	enumPkg := m.FindPackage("EasyBiz").AddPackage("EnumerationTypes", "ENUMLibrary")
	e := enumPkg.AddEnumeration("CouncilType_Code", "ENUM")
	e.AddLiteral("portphillip", "Port Phillip City Council")

	if got := m.FindEnumeration("CouncilType_Code"); got != e {
		t.Error("FindEnumeration by simple name failed")
	}
	if got := m.FindEnumeration("EasyBiz::EnumerationTypes::CouncilType_Code"); got != e {
		t.Error("FindEnumeration by qualified name failed")
	}
	if m.FindEnumeration("Missing") != nil {
		t.Error("expected nil for missing enumeration")
	}
	if len(e.Literals) != 1 || e.Literals[0].Name != "portphillip" {
		t.Errorf("Literals = %v", e.Literals)
	}
}

func TestAggregationKind(t *testing.T) {
	for _, k := range []AggregationKind{AggregationNone, AggregationShared, AggregationComposite} {
		back, err := ParseAggregationKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v failed: %v, %v", k, back, err)
		}
	}
	if _, err := ParseAggregationKind("diamond"); err == nil {
		t.Error("expected error for unknown kind")
	}
	if k, err := ParseAggregationKind(""); err != nil || k != AggregationNone {
		t.Errorf("empty kind = %v, %v", k, err)
	}
	if got := AggregationKind(42).String(); got != "AggregationKind(42)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestPackageParentAndModel(t *testing.T) {
	m := buildSampleModel()
	biz := m.FindPackage("EasyBiz")
	cc := m.FindPackage("CandidateCoreComponents")
	if cc.Parent() != biz {
		t.Error("Parent link broken")
	}
	if biz.Parent() != nil {
		t.Error("top-level parent should be nil")
	}
	if cc.Model() != m || biz.Model() != m {
		t.Error("Model link broken")
	}
}
