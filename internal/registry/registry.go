// Package registry implements a core component registry. The paper
// laments that "there is no format defined to register and exchange core
// components. Accordingly, the standardization and harmonization process
// of core component instances is based on spread sheets." This registry
// indexes models by dictionary entry name, persists as JSON, and imports/
// exports the spreadsheet (CSV) format used by harmonisation workflows.
package registry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/go-ccts/ccts/internal/core"
)

// Entry is one registered dictionary item.
type Entry struct {
	// Kind is the CCTS element kind: ACC, ABIE, CDT, QDT, ENUM or PRIM.
	Kind string `json:"kind"`
	// Name is the model-level name (US_Person).
	Name string `json:"name"`
	// DEN is the dictionary entry name used for search and harmonisation.
	DEN string `json:"den"`
	// Library and BusinessLibrary locate the entry.
	Library         string `json:"library"`
	BusinessLibrary string `json:"businessLibrary"`
	// Version is the owning library's version.
	Version string `json:"version,omitempty"`
	// Definition is the element's definition text.
	Definition string `json:"definition,omitempty"`
	// BasedOn is the DEN of the underlying element for derived entries.
	BasedOn string `json:"basedOn,omitempty"`
	// Context is the business context declaration of ABIE entries
	// (core.Context.String form), empty for the default context.
	Context string `json:"context,omitempty"`
	// Members flattens the entry's parts: the entity set for aggregates,
	// CON/SUP names for data types, literals for enumerations.
	Members []string `json:"members,omitempty"`
}

// key identifies an entry for deduplication.
func (e Entry) key() string {
	return e.Kind + "|" + e.DEN + "|" + e.Library + "|" + e.Version
}

// Registry is an in-memory dictionary of registered entries.
//
// A Registry is NOT safe for concurrent use: Add, RegisterModel,
// LoadJSON and ImportCSV mutate the entry slice and index that Search,
// Find and the exporters read, so a concurrent reader may observe a
// half-built index. Batch tools (cmd/ccregistry) use it single-threaded;
// concurrent callers — the HTTP serving layer answering
// /v1/registry/search while reloads happen — must wrap it in a Guarded.
type Registry struct {
	entries []Entry
	index   map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: map[string]int{}}
}

// Len reports the number of registered entries.
func (r *Registry) Len() int { return len(r.entries) }

// Entries returns a copy of all entries in registration order.
func (r *Registry) Entries() []Entry {
	return append([]Entry(nil), r.entries...)
}

// Add registers one entry; a re-registration of the same (kind, DEN,
// library, version) replaces the previous entry and reports false.
func (r *Registry) Add(e Entry) bool {
	if i, dup := r.index[e.key()]; dup {
		r.entries[i] = e
		return false
	}
	r.index[e.key()] = len(r.entries)
	r.entries = append(r.entries, e)
	return true
}

// RegisterModel walks a CCTS model and registers every dictionary item;
// it returns the number of newly added entries.
func (r *Registry) RegisterModel(m *core.Model) int {
	added := 0
	reg := func(e Entry) {
		if r.Add(e) {
			added++
		}
	}
	for _, biz := range m.BusinessLibraries {
		for _, lib := range biz.Libraries {
			base := Entry{
				Library:         lib.Name,
				BusinessLibrary: biz.Name,
				Version:         lib.Version,
			}
			for _, acc := range lib.ACCs {
				e := base
				e.Kind, e.Name, e.DEN = "ACC", acc.Name, acc.DEN()
				e.Definition = acc.Definition
				e.Members = acc.EntitySet()[1:]
				reg(e)
			}
			for _, abie := range lib.ABIEs {
				e := base
				e.Kind, e.Name, e.DEN = "ABIE", abie.Name, abie.DEN()
				e.Definition = abie.Definition
				if abie.BasedOn != nil {
					e.BasedOn = abie.BasedOn.DEN()
				}
				if ctx := abie.Context(); !ctx.IsDefault() {
					e.Context = ctx.String()
				}
				e.Members = abie.EntitySet()[1:]
				reg(e)
			}
			for _, cdt := range lib.CDTs {
				e := base
				e.Kind, e.Name, e.DEN = "CDT", cdt.Name, cdt.DEN()
				e.Definition = cdt.Definition
				e.Members = append(e.Members, "CON "+cdt.Content.Name)
				for _, s := range cdt.Sups {
					e.Members = append(e.Members, "SUP "+s.Name)
				}
				reg(e)
			}
			for _, qdt := range lib.QDTs {
				e := base
				e.Kind, e.Name, e.DEN = "QDT", qdt.Name, qdt.DEN()
				e.Definition = qdt.Definition
				if qdt.BasedOn != nil {
					e.BasedOn = qdt.BasedOn.DEN()
				}
				e.Members = append(e.Members, "CON "+qdt.Content.Name)
				for _, s := range qdt.Sups {
					e.Members = append(e.Members, "SUP "+s.Name)
				}
				reg(e)
			}
			for _, en := range lib.ENUMs {
				e := base
				e.Kind, e.Name, e.DEN = "ENUM", en.Name, en.Name
				e.Definition = en.Definition
				e.Members = en.LiteralNames()
				reg(e)
			}
			for _, p := range lib.PRIMs {
				e := base
				e.Kind, e.Name, e.DEN = "PRIM", p.Name, p.Name
				e.Definition = p.Definition
				reg(e)
			}
		}
	}
	return added
}

// Search finds entries whose DEN, name or definition contains the query,
// case-insensitively, sorted by DEN.
func (r *Registry) Search(query string) []Entry {
	q := strings.ToLower(query)
	var out []Entry
	for _, e := range r.entries {
		if strings.Contains(strings.ToLower(e.DEN), q) ||
			strings.Contains(strings.ToLower(e.Name), q) ||
			strings.Contains(strings.ToLower(e.Definition), q) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DEN != out[j].DEN {
			return out[i].DEN < out[j].DEN
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// SearchInContext filters Search results to entries whose declared
// business context matches the given situation. Entries without a
// context declaration (the default context) always match; entries with
// an unparseable context are skipped.
func (r *Registry) SearchInContext(query string, situation core.Context) []Entry {
	var out []Entry
	for _, e := range r.Search(query) {
		if e.Context == "" {
			out = append(out, e)
			continue
		}
		ctx, err := core.ParseContext(e.Context)
		if err != nil {
			continue
		}
		if ctx.Matches(situation) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns all entries of the given kind, in registration order.
func (r *Registry) ByKind(kind string) []Entry {
	var out []Entry
	for _, e := range r.entries {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Find returns the entry with the exact DEN, preferring the highest
// version (lexicographic compare of dotted numbers).
func (r *Registry) Find(den string) (Entry, bool) {
	var best Entry
	found := false
	for _, e := range r.entries {
		if e.DEN != den {
			continue
		}
		if !found || versionLess(best.Version, e.Version) {
			best = e
			found = true
		}
	}
	return best, found
}

// versionLess compares dotted version strings numerically where
// possible.
func versionLess(a, b string) bool {
	as, bs := strings.Split(a, "."), strings.Split(b, ".")
	for i := 0; i < len(as) || i < len(bs); i++ {
		var ai, bi int
		var aOK, bOK bool
		if i < len(as) {
			_, err := fmt.Sscanf(as[i], "%d", &ai)
			aOK = err == nil
		}
		if i < len(bs) {
			_, err := fmt.Sscanf(bs[i], "%d", &bi)
			bOK = err == nil
		}
		switch {
		case aOK && bOK && ai != bi:
			return ai < bi
		case !aOK || !bOK:
			// Fall back to string comparison for non-numeric parts.
			var aStr, bStr string
			if i < len(as) {
				aStr = as[i]
			}
			if i < len(bs) {
				bStr = bs[i]
			}
			if aStr != bStr {
				return aStr < bStr
			}
		}
	}
	return false
}

// SaveJSON persists the registry.
func (r *Registry) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.entries)
}

// LoadJSON restores a registry saved with SaveJSON, merging into the
// current contents.
func (r *Registry) LoadJSON(rd io.Reader) error {
	var entries []Entry
	if err := json.NewDecoder(rd).Decode(&entries); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		r.Add(e)
	}
	return nil
}

// csvHeader is the spreadsheet layout of the harmonisation workflow.
var csvHeader = []string{
	"Kind", "DictionaryEntryName", "Name", "BusinessLibrary", "Library",
	"Version", "BasedOn", "Context", "Definition", "Members",
}

// ExportCSV writes the registry as the harmonisation spreadsheet.
func (r *Registry) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range r.entries {
		rec := []string{
			e.Kind, e.DEN, e.Name, e.BusinessLibrary, e.Library,
			e.Version, e.BasedOn, e.Context, e.Definition, strings.Join(e.Members, "; "),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV merges a harmonisation spreadsheet into the registry.
func (r *Registry) ImportCSV(rd io.Reader) error {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("registry: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("registry: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return fmt.Errorf("registry: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		e := Entry{
			Kind: rec[0], DEN: rec[1], Name: rec[2],
			BusinessLibrary: rec[3], Library: rec[4],
			Version: rec[5], BasedOn: rec[6], Context: rec[7],
			Definition: rec[8],
		}
		if rec[9] != "" {
			e.Members = strings.Split(rec[9], "; ")
		}
		r.Add(e)
	}
}
