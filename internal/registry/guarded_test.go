package registry

import (
	"fmt"
	"sync"
	"testing"
)

// TestGuardedConcurrentUse hammers a Guarded registry with concurrent
// readers and writers; run under -race (make verify does) this proves
// the guard covers every path /v1/registry/search depends on.
func TestGuardedConcurrentUse(t *testing.T) {
	g := NewGuarded(nil)
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Add(Entry{
					Kind: "ACC",
					Name: fmt.Sprintf("Item%d_%d", w, i),
					DEN:  fmt.Sprintf("Item%d_%d. Details", w, i),
				})
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, e := range g.Search("Item") {
					if e.DEN == "" {
						t.Error("search returned an entry without a DEN")
						return
					}
				}
				g.Find("Item0_0. Details")
				g.Len()
			}
		}()
	}
	wg.Wait()

	if got := g.Len(); got != 4*200 {
		t.Errorf("Len = %d, want %d", got, 4*200)
	}
	if got := len(g.Search("Item3_")); got != 200 {
		t.Errorf("Search(Item3_) = %d entries, want 200", got)
	}
}
