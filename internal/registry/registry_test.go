package registry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/fixture"
)

func populated(t *testing.T) *Registry {
	t.Helper()
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.RegisterModel(f.Model)
	return r
}

func TestRegisterModel(t *testing.T) {
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	added := r.RegisterModel(f.Model)
	if added == 0 || added != r.Len() {
		t.Fatalf("added = %d, len = %d", added, r.Len())
	}
	// Re-registration adds nothing.
	if again := r.RegisterModel(f.Model); again != 0 {
		t.Errorf("re-registration added %d entries", again)
	}

	// Every kind is represented.
	for kind, atLeast := range map[string]int{
		"ACC": 8, "ABIE": 8, "CDT": 13, "QDT": 4, "ENUM": 2, "PRIM": 9,
	} {
		if got := len(r.ByKind(kind)); got < atLeast {
			t.Errorf("%s entries = %d, want >= %d", kind, got, atLeast)
		}
	}
}

func TestSearch(t *testing.T) {
	r := populated(t)
	hits := r.Search("hoarding permit")
	if len(hits) == 0 {
		t.Fatal("search by DEN failed")
	}
	if hits[0].Kind != "ABIE" || hits[0].Name != "HoardingPermit" {
		t.Errorf("first hit = %+v", hits[0])
	}
	// Case-insensitive, matches definitions too.
	if len(r.Search("SHORTHAND FOR A FIXED MEANING")) == 0 {
		t.Error("search by definition failed")
	}
	if len(r.Search("nonexistentxyz")) != 0 {
		t.Error("phantom hits")
	}
	// Sorted by DEN.
	all := r.Search("")
	for i := 1; i < len(all); i++ {
		if all[i-1].DEN > all[i].DEN {
			t.Fatalf("not sorted: %q > %q", all[i-1].DEN, all[i].DEN)
		}
	}
}

func TestFindPrefersHighestVersion(t *testing.T) {
	r := New()
	r.Add(Entry{Kind: "ABIE", DEN: "X. Details", Library: "L", Version: "0.9"})
	r.Add(Entry{Kind: "ABIE", DEN: "X. Details", Library: "L", Version: "0.10"})
	r.Add(Entry{Kind: "ABIE", DEN: "X. Details", Library: "L", Version: "0.2"})
	e, ok := r.Find("X. Details")
	if !ok || e.Version != "0.10" {
		t.Errorf("Find = %+v, %v (want version 0.10: numeric compare)", e, ok)
	}
	if _, ok := r.Find("Missing"); ok {
		t.Error("Find should miss")
	}
}

func TestVersionLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"0.9", "0.10", true},
		{"0.10", "0.9", false},
		{"1.0", "1.0", false},
		{"1.0", "2.0", true},
		{"1.0.1", "1.0", false},
		{"1.0", "1.0.1", true},
		{"1.a", "1.b", true},
	}
	for _, c := range cases {
		if got := versionLess(c.a, c.b); got != c.want {
			t.Errorf("versionLess(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddReplaces(t *testing.T) {
	r := New()
	first := Entry{Kind: "ACC", DEN: "A. Details", Library: "L", Version: "1", Definition: "old"}
	if !r.Add(first) {
		t.Error("first add should report true")
	}
	second := first
	second.Definition = "new"
	if r.Add(second) {
		t.Error("duplicate add should report false")
	}
	if r.Len() != 1 || r.Entries()[0].Definition != "new" {
		t.Errorf("replacement failed: %+v", r.Entries())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := populated(t)
	var buf bytes.Buffer
	if err := r.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	if err := r2.LoadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Errorf("loaded %d entries, want %d", r2.Len(), r.Len())
	}
	a, b := r.Entries(), r2.Entries()
	for i := range a {
		if a[i].key() != b[i].key() {
			t.Fatalf("entry %d differs: %q vs %q", i, a[i].key(), b[i].key())
		}
	}
	if err := New().LoadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := populated(t)
	var buf bytes.Buffer
	if err := r.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kind,DictionaryEntryName,") {
		t.Errorf("CSV header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "Hoarding Permit. Details") {
		t.Error("CSV missing HoardingPermit row")
	}
	r2 := New()
	if err := r2.ImportCSV(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Errorf("imported %d entries, want %d", r2.Len(), r.Len())
	}
	// Members survive.
	e, ok := r2.Find("Hoarding Permit. Details")
	if !ok || len(e.Members) == 0 {
		t.Errorf("members lost: %+v", e)
	}
}

func TestImportCSVErrors(t *testing.T) {
	r := New()
	if err := r.ImportCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
	if err := r.ImportCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("wrong column count should fail")
	}
	wrong := strings.Replace(
		"Kind,DictionaryEntryName,Name,BusinessLibrary,Library,Version,BasedOn,Context,Definition,Members\n",
		"Kind", "Sort", 1)
	if err := r.ImportCSV(strings.NewReader(wrong)); err == nil {
		t.Error("wrong header name should fail")
	}
}

func TestBasedOnLinks(t *testing.T) {
	r := populated(t)
	e, ok := r.Find("US Address. Details")
	_ = e
	_ = ok
	// HoardingPermit fixture has no US_Address; check CountryType QDT
	// instead.
	q, ok := r.Find("Country Type. Type")
	if !ok {
		t.Fatal("CountryType not registered")
	}
	if q.BasedOn != "Code. Type" {
		t.Errorf("BasedOn = %q", q.BasedOn)
	}
	a, ok := r.Find("Hoarding Permit. Details")
	if !ok || a.BasedOn != "Permit. Details" {
		t.Errorf("ABIE BasedOn = %+v", a)
	}
}

func TestContextInEntries(t *testing.T) {
	f, err := fixture.BuildHoardingPermit()
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewContext().With(core.CtxGeopolitical, "AU")
	f.RegistrationBIE.SetContext(ctx)
	r := New()
	r.RegisterModel(f.Model)
	// The ACC Registration shares the DEN; select the ABIE entry.
	findABIE := func(reg *Registry) (Entry, bool) {
		for _, e := range reg.ByKind("ABIE") {
			if e.Name == "Registration" {
				return e, true
			}
		}
		return Entry{}, false
	}
	e, ok := findABIE(r)
	if !ok {
		t.Fatal("Registration ABIE not registered")
	}
	if e.Context != "Geopolitical=AU" {
		t.Errorf("context = %q", e.Context)
	}
	// Context survives the CSV round trip.
	var buf bytes.Buffer
	if err := r.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	if err := r2.ImportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	e2, ok := findABIE(r2)
	if !ok || e2.Context != "Geopolitical=AU" {
		t.Errorf("context lost in CSV: %+v", e2)
	}
}

func TestSearchInContext(t *testing.T) {
	r := New()
	r.Add(Entry{Kind: "ABIE", DEN: "Address. Details", Name: "Address", Library: "L"})
	r.Add(Entry{Kind: "ABIE", DEN: "US Address. Details", Name: "US_Address", Library: "L",
		Context: "Geopolitical=US"})
	r.Add(Entry{Kind: "ABIE", DEN: "AT Address. Details", Name: "AT_Address", Library: "L",
		Context: "Geopolitical=AT"})
	r.Add(Entry{Kind: "ABIE", DEN: "Broken Address. Details", Name: "B_Address", Library: "L",
		Context: "Weather=sunny"}) // unparseable: skipped

	us := core.NewContext().With(core.CtxGeopolitical, "US")
	hits := r.SearchInContext("address", us)
	names := map[string]bool{}
	for _, h := range hits {
		names[h.Name] = true
	}
	if !names["Address"] || !names["US_Address"] {
		t.Errorf("default and US entries should match: %v", names)
	}
	if names["AT_Address"] || names["B_Address"] {
		t.Errorf("AT and broken entries must not match: %v", names)
	}
	// Default situation: only the context-free entry.
	hits = r.SearchInContext("address", core.NewContext())
	if len(hits) != 1 || hits[0].Name != "Address" {
		t.Errorf("default situation hits = %v", hits)
	}
}

func TestEntriesIsCopy(t *testing.T) {
	r := populated(t)
	es := r.Entries()
	es[0].Name = "MUTATED"
	if r.Entries()[0].Name == "MUTATED" {
		t.Error("Entries must return a copy")
	}
}
