package registry

import (
	"io"
	"sync"

	"github.com/go-ccts/ccts/internal/core"
)

// Guarded wraps a Registry behind a sync.RWMutex so concurrent HTTP
// handlers can search while registrations or reloads are in progress.
// Search traffic takes the read lock and proceeds in parallel; mutations
// take the write lock. This is the guard internal/server puts in front
// of /v1/registry/search — the underlying Registry itself stays
// single-threaded (see the Registry doc comment).
type Guarded struct {
	mu  sync.RWMutex
	reg *Registry
}

// NewGuarded returns a Guarded wrapping reg; a nil reg starts empty.
// The caller must not keep using reg directly afterwards — every access
// has to go through the guard.
func NewGuarded(reg *Registry) *Guarded {
	if reg == nil {
		reg = New()
	}
	return &Guarded{reg: reg}
}

// Len reports the number of registered entries.
func (g *Guarded) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.reg.Len()
}

// Search finds entries matching the query; see Registry.Search.
func (g *Guarded) Search(query string) []Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.reg.Search(query)
}

// SearchInContext filters Search results by business context; see
// Registry.SearchInContext.
func (g *Guarded) SearchInContext(query string, situation core.Context) []Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.reg.SearchInContext(query, situation)
}

// Find returns the entry with the exact DEN; see Registry.Find.
func (g *Guarded) Find(den string) (Entry, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.reg.Find(den)
}

// Add registers one entry; see Registry.Add.
func (g *Guarded) Add(e Entry) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reg.Add(e)
}

// RegisterModel registers every dictionary item of a model; see
// Registry.RegisterModel.
func (g *Guarded) RegisterModel(m *core.Model) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reg.RegisterModel(m)
}

// LoadJSON merges a saved registry into the store; see
// Registry.LoadJSON.
func (g *Guarded) LoadJSON(rd io.Reader) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reg.LoadJSON(rd)
}

// SaveJSON persists the store; see Registry.SaveJSON.
func (g *Guarded) SaveJSON(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.reg.SaveJSON(w)
}
