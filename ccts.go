// Package ccts is a Go implementation of the UN/CEFACT Core Components
// Technical Specification (CCTS 2.01) modeling stack described in
// C. Huemer and P. Liegl, "A UML Profile for Core Components and their
// Transformation to XSD" (ICDE Workshops 2007): a typed core component
// model, the UML profile with its OCL constraints, the transformation to
// XML Schema following the UN/CEFACT naming and design rules, a model
// validation engine, an XML instance validator, XMI interchange and a
// component registry.
//
// The typical flow mirrors the paper:
//
//	model := ccts.NewModel("EasyBiz")
//	biz := model.AddBusinessLibrary("EasyBiz")
//	cat, _ := ccts.InstallCatalog(biz)            // standard CDTs/PRIMs
//	// ... build ACCs in a CCLibrary, derive ABIEs by restriction ...
//	report := ccts.ValidateModel(model)           // OCL + semantic rules
//	res, _ := ccts.GenerateDocument(docLib, "HoardingPermit", ccts.GenerateOptions{})
//	set, _ := ccts.CompileSchemas(res)            // instance validation
package ccts

import (
	"github.com/go-ccts/ccts/internal/catalog"
	"github.com/go-ccts/ccts/internal/core"
	"github.com/go-ccts/ccts/internal/uml"
)

// Core model types.
type (
	// Model is the root of a core components repository.
	Model = core.Model
	// BusinessLibrary groups the typed libraries of one business domain.
	BusinessLibrary = core.BusinessLibrary
	// Library is one typed container of CCTS elements.
	Library = core.Library
	// LibraryKind identifies the library stereotype.
	LibraryKind = core.LibraryKind

	// ACC is an aggregate core component.
	ACC = core.ACC
	// BCC is a basic core component.
	BCC = core.BCC
	// ASCC is an association core component.
	ASCC = core.ASCC
	// ABIE is an aggregate business information entity.
	ABIE = core.ABIE
	// BBIE is a basic business information entity.
	BBIE = core.BBIE
	// ASBIE is an association business information entity.
	ASBIE = core.ASBIE
	// CDT is a core data type.
	CDT = core.CDT
	// QDT is a qualified data type.
	QDT = core.QDT
	// ENUM is an enumeration type.
	ENUM = core.ENUM
	// PRIM is a primitive type.
	PRIM = core.PRIM
	// DataType is a CDT or QDT.
	DataType = core.DataType
	// ComponentType is a PRIM or ENUM.
	ComponentType = core.ComponentType
	// ContentComponent is the CON part of a data type.
	ContentComponent = core.ContentComponent
	// SupplementaryComponent is a SUP part of a data type.
	SupplementaryComponent = core.SupplementaryComponent

	// Cardinality is an occurrence range.
	Cardinality = core.Cardinality

	// ModelIndex is the resolve-phase index of a model: per-library
	// symbol tables plus memoized naming-and-design-rule artifacts,
	// shared by generation, validation and instance generation.
	// Immutable once built and safe for concurrent readers.
	ModelIndex = core.ModelIndex
	// LibraryIndex is the symbol table of one resolved library.
	LibraryIndex = core.LibraryIndex

	// Context is a CCTS business context declaration (category → values).
	Context = core.Context
	// ContextCategory is one of the eight CCTS context categories.
	ContextCategory = core.ContextCategory

	// Restriction describes how an ABIE restricts its ACC.
	Restriction = core.Restriction
	// BBIEPick selects a BCC during derivation.
	BBIEPick = core.BBIEPick
	// ASBIEPick selects an ASCC during derivation.
	ASBIEPick = core.ASBIEPick
	// QDTRestriction describes how a QDT restricts its CDT.
	QDTRestriction = core.QDTRestriction
	// SupPick selects a SUP during QDT derivation.
	SupPick = core.SupPick
)

// Library kinds.
const (
	KindCCLibrary   = core.KindCCLibrary
	KindBIELibrary  = core.KindBIELibrary
	KindCDTLibrary  = core.KindCDTLibrary
	KindQDTLibrary  = core.KindQDTLibrary
	KindENUMLibrary = core.KindENUMLibrary
	KindPRIMLibrary = core.KindPRIMLibrary
	KindDOCLibrary  = core.KindDOCLibrary
)

// Aggregation kinds for ASCC/ASBIE connectors.
const (
	AggregationNone      = uml.AggregationNone
	AggregationShared    = uml.AggregationShared
	AggregationComposite = uml.AggregationComposite
)

// Common cardinalities.
var (
	// One is the mandatory single occurrence [1..1].
	One = Cardinality{Lower: 1, Upper: 1}
	// Optional is [0..1].
	Optional = Cardinality{Lower: 0, Upper: 1}
	// Many is [0..*].
	Many = Cardinality{Lower: 0, Upper: Unbounded}
	// OneOrMore is [1..*].
	OneOrMore = Cardinality{Lower: 1, Upper: Unbounded}
)

// Unbounded is the unlimited upper bound.
const Unbounded = core.Unbounded

// The eight business context categories of CCTS 2.01.
const (
	CtxBusinessProcess        = core.CtxBusinessProcess
	CtxProductClassification  = core.CtxProductClassification
	CtxIndustryClassification = core.CtxIndustryClassification
	CtxGeopolitical           = core.CtxGeopolitical
	CtxOfficialConstraints    = core.CtxOfficialConstraints
	CtxBusinessProcessRole    = core.CtxBusinessProcessRole
	CtxSupportingRole         = core.CtxSupportingRole
	CtxSystemCapabilities     = core.CtxSystemCapabilities
)

// NewModel returns an empty core components model.
func NewModel(name string) *Model { return core.NewModel(name) }

// ResolveModel builds the resolve-phase index of a model. Build it once
// and pass it to ValidateModelIndexed and GenerateOptions.Index when
// running several pipeline stages (or repeated generations) over an
// unchanged model.
func ResolveModel(m *Model) *ModelIndex { return core.NewModelIndex(m) }

// ResolveLibraries builds a resolve-phase index covering the given
// libraries and everything they transitively reference; it serves
// detached libraries without an owning model.
func ResolveLibraries(libs ...*Library) *ModelIndex { return core.IndexLibraries(libs...) }

// NewContext returns the default (unconstrained) business context; add
// constraints with Context.With.
func NewContext() Context { return core.NewContext() }

// ParseContext parses the Context.String form
// ("Geopolitical=AT,DE; IndustryClassification=Travel").
func ParseContext(s string) (Context, error) { return core.ParseContext(s) }

// DeriveABIE creates an ABIE in lib by restricting acc; every CCTS
// restriction rule is checked.
func DeriveABIE(lib *Library, acc *ACC, r Restriction) (*ABIE, error) {
	return core.DeriveABIE(lib, acc, r)
}

// DeriveQDT creates a QDT in lib by restricting cdt.
func DeriveQDT(lib *Library, cdt *CDT, r QDTRestriction) (*QDT, error) {
	return core.DeriveQDT(lib, cdt, r)
}

// Content builds the conventional content component named "Content".
func Content(t ComponentType) ContentComponent { return core.Content(t) }

// Catalog bundles the installed standard data type libraries.
type Catalog = catalog.Catalog

// CatalogOptions configures the standard library installation.
type CatalogOptions = catalog.Options

// InstallCatalog adds the CCTS 2.01 primitive types and approved core
// data types (Amount, BinaryObject, Code, DateTime, Identifier,
// Indicator, Measure, Numeric, Quantity, Text plus the Date/Time/Name
// secondary representation terms) to the business library.
func InstallCatalog(b *BusinessLibrary) (*Catalog, error) {
	return catalog.Install(b)
}

// InstallCatalogWith is InstallCatalog with explicit names and URNs.
func InstallCatalogWith(b *BusinessLibrary, opts CatalogOptions) (*Catalog, error) {
	return catalog.InstallWith(b, opts)
}

// Catalog content names, re-exported for convenience.
const (
	CDTAmount       = catalog.CDTAmount
	CDTBinaryObject = catalog.CDTBinaryObject
	CDTCode         = catalog.CDTCode
	CDTDate         = catalog.CDTDate
	CDTDateTime     = catalog.CDTDateTime
	CDTIdentifier   = catalog.CDTIdentifier
	CDTIndicator    = catalog.CDTIndicator
	CDTMeasure      = catalog.CDTMeasure
	CDTName         = catalog.CDTName
	CDTNumeric      = catalog.CDTNumeric
	CDTQuantity     = catalog.CDTQuantity
	CDTText         = catalog.CDTText
	CDTTime         = catalog.CDTTime

	PrimBinary       = catalog.PrimBinary
	PrimBoolean      = catalog.PrimBoolean
	PrimDecimal      = catalog.PrimDecimal
	PrimDouble       = catalog.PrimDouble
	PrimFloat        = catalog.PrimFloat
	PrimInteger      = catalog.PrimInteger
	PrimString       = catalog.PrimString
	PrimTimeDuration = catalog.PrimTimeDuration
	PrimTimePoint    = catalog.PrimTimePoint
)
