module github.com/go-ccts/ccts

go 1.22
